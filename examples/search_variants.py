"""The Section 5 search variants on one realistic scenario.

A dispatcher must reach field staff whose location profiles are hotspot-
shaped.  Depending on the task, the system needs:

* everyone on a call      -> Conference Call (find all m),
* any one responder       -> Yellow Pages (find 1 of m),
* a signing quorum of k   -> Signature problem (find k of m),

and may be bandwidth-capped or allowed to adapt between rounds.  This example
plans all of them on the same instance and prints the cost ladder.

Run:  python examples/search_variants.py
"""

import numpy as np

from repro.core import (
    adaptive_expected_paging,
    bandwidth_limited_heuristic,
    conference_call_heuristic,
    signature_heuristic,
    yellow_pages_greedy,
    yellow_pages_m_approximation,
)
from repro.distributions import hotspot_instance


def main() -> None:
    rng = np.random.default_rng(55)
    m, c, d = 4, 12, 3
    instance = hotspot_instance(m, c, d, rng=rng, home_mass=0.5)
    print(f"scenario: {m} field staff, {c} cells, delay budget {d} rounds\n")

    conference = conference_call_heuristic(instance)
    print(f"conference call (all {m}):     EP = "
          f"{float(conference.expected_paging):6.3f}  groups {conference.group_sizes}")

    adaptive = adaptive_expected_paging(instance)
    print(f"  adaptive replanning:         EP = {float(adaptive):6.3f}")

    for cap in (6, 4):
        capped = bandwidth_limited_heuristic(instance, cap)
        print(f"  bandwidth cap b={cap}:          EP = "
              f"{float(capped.expected_paging):6.3f}  groups {capped.group_sizes}")

    print()
    for quorum in range(m, 0, -1):
        plan = signature_heuristic(instance, quorum)
        label = {m: "= conference", 1: "= yellow pages"}.get(quorum, "")
        print(f"signature quorum k={quorum}:         EP = "
              f"{float(plan.expected_paging):6.3f}  {label}")

    print()
    greedy = yellow_pages_greedy(instance)
    single = yellow_pages_m_approximation(instance)
    print(f"yellow pages, hit-prob order:  EP = {float(greedy.expected_paging):6.3f}")
    print(f"yellow pages, m-approx order:  EP = {float(single.expected_paging):6.3f}")
    print("\nLower quorums stop earlier and page fewer cells; adaptivity and")
    print("looser bandwidth caps buy further savings within the same delay.")


if __name__ == "__main__":
    main()
