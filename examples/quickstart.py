"""Quickstart: plan a delay-constrained conference-call search.

Builds a three-device, sixteen-cell location area with skewed location
profiles, runs the paper's e/(e-1) heuristic (Fig. 1) under a four-round
delay budget, and sanity-checks the plan against blanket paging, Monte-Carlo
simulation, and (because the instance is small) the exact optimum.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PagingInstance, conference_call_heuristic, optimal_strategy
from repro.core import (
    expected_paging_float,
    expected_paging_monte_carlo,
    stopping_round_distribution,
)


def main() -> None:
    rng = np.random.default_rng(2002)

    # Three conference participants, sixteen cells, skewed location profiles.
    matrix = rng.dirichlet(np.full(16, 0.4), size=3)
    instance = PagingInstance.from_array(matrix, max_rounds=4)
    print(f"instance: m={instance.num_devices}, c={instance.num_cells}, "
          f"d={instance.max_rounds}")

    plan = conference_call_heuristic(instance)
    print(f"\nheuristic group sizes : {plan.group_sizes}")
    print(f"heuristic expected EP : {float(plan.expected_paging):.4f} cells")
    print(f"blanket paging cost   : {instance.num_cells} cells")
    saving = 1 - float(plan.expected_paging) / instance.num_cells
    print(f"saving vs blanket     : {saving:.1%}")

    rounds = stopping_round_distribution(instance, plan.strategy)
    print("\nP[search ends in round r]:")
    for r, probability in enumerate(rounds, start=1):
        print(f"  round {r}: {float(probability):.4f}")

    simulated = expected_paging_monte_carlo(
        instance, plan.strategy, trials=20_000, rng=rng
    )
    print(f"\nMonte-Carlo estimate  : {simulated:.4f} cells "
          f"(closed form {expected_paging_float(instance, plan.strategy):.4f})")

    exact = optimal_strategy(instance)
    ratio = float(plan.expected_paging) / float(exact.expected_paging)
    print(f"exact optimum         : {float(exact.expected_paging):.4f} cells")
    print(f"heuristic/optimal     : {ratio:.5f}  (guarantee e/(e-1) = 1.58198)")


if __name__ == "__main__":
    main()
