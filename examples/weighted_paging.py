"""Heterogeneous paging costs: when cells are not created equal.

A macro cell with six sectors broadcasts on more channels than a small cell,
so paging it costs more airtime.  This example gives the busiest cells the
highest paging costs (the realistic worst case: people cluster where
capacity is scarce) and compares:

* the paper's weight ordering (probability mass only),
* the density ordering (mass per unit of cost), and
* the exact weighted optimum,

all with optimal cut points.  The density ordering is the Fig. 1 recipe with
one substitution in the sort key — and it tracks the optimum.

Run:  python examples/weighted_paging.py
"""

import numpy as np

from repro.core import (
    by_expected_devices,
    optimal_weighted_strategy,
    weighted_heuristic,
)
from repro.core.weighted import optimize_cuts_weighted
from repro.distributions import zipf_instance


def weight_order_cost(instance, costs, rounds):
    """The pure weight ordering, priced under the true costs."""
    order = by_expected_devices(instance)
    finds = instance.prefix_find_probabilities(order)
    prefix_costs = [0.0]
    for cell in order:
        prefix_costs.append(prefix_costs[-1] + costs[cell])
    _sizes, value = optimize_cuts_weighted(finds, prefix_costs, rounds)
    return float(value)


def main() -> None:
    rng = np.random.default_rng(3)
    m, c, d = 3, 10, 3
    instance = zipf_instance(m, c, d, rng=rng, exponent=1.2)

    # Sector counts / channel loads vary by a factor of ~8 across sites.
    costs = [float(v) for v in rng.uniform(1.0, 8.0, size=c)]

    print(f"{m} participants, {c} cells, {d} rounds")
    print("cell costs (airtime units):",
          " ".join(f"{cost:.1f}" for cost in costs), "\n")

    weight_value = weight_order_cost(instance, costs, d)
    density = weighted_heuristic(instance, costs)
    exact = optimal_weighted_strategy(instance, costs)

    print(f"weight ordering (paper's key):  {weight_value:8.3f} airtime")
    print(f"density ordering (mass/cost):   {float(density.expected_cost):8.3f} airtime")
    print(f"exact weighted optimum:         {float(exact.expected_cost):8.3f} airtime")

    penalty = weight_value / float(exact.expected_cost) - 1.0
    recovered = weight_value - float(density.expected_cost)
    print(f"\nignoring costs leaves {penalty:.1%} on the table;")
    print(f"one sort-key change recovers {recovered:.3f} airtime per call.")
    print("\nfirst round under each ordering:")
    print(f"  density : cells {sorted(density.strategy.group(0))}")
    print(f"  optimum : cells {sorted(exact.strategy.group(0))}")


if __name__ == "__main__":
    main()
