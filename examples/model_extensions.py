"""Probing the model's edges: adaptivity, collisions, and movement.

Three questions the paper raises but leaves open (Section 5), answered
empirically on one instance:

1. *How much does adaptivity buy?*  Exact optimal adaptive vs exact optimal
   oblivious expected paging (the adaptivity gap).
2. *What do response collisions cost?*  Cyclic paging under the imperfect-
   detection model, blanket vs staged strategies.
3. *What if devices move mid-search?*  Cost inflation and miss rate as the
   per-round movement probability grows.

Run:  python examples/model_extensions.py
"""

import numpy as np

from repro.analysis import measure_movement_sensitivity
from repro.core import (
    CollisionDetection,
    Strategy,
    adaptive_expected_paging,
    conference_call_heuristic,
    expected_paging_imperfect_monte_carlo,
    optimal_adaptive_expected_paging,
    optimal_strategy,
)
from repro.distributions import hotspot_instance


def adaptivity_section(instance) -> None:
    print("1. The adaptivity gap")
    oblivious = float(optimal_strategy(instance).expected_paging)
    adaptive = float(optimal_adaptive_expected_paging(instance).expected_paging)
    replanner = float(adaptive_expected_paging(instance))
    heuristic = float(conference_call_heuristic(instance).expected_paging)
    print(f"   optimal oblivious EP : {oblivious:.4f}")
    print(f"   optimal adaptive EP  : {adaptive:.4f}  "
          f"(gap {oblivious / adaptive:.4f}x)")
    print(f"   replanning heuristic : {replanner:.4f}")
    print(f"   oblivious heuristic  : {heuristic:.4f}")
    print("   -> adaptivity helps, and cheap replanning captures most of it\n")


def collision_section(instance, rng) -> None:
    print("2. Response collisions (imperfect detection)")
    plan = conference_call_heuristic(instance)
    blanket = Strategy.single_round(instance.num_cells)
    for q in (1.0, 0.9, 0.7):
        model = CollisionDetection(q, collision_factor=0.6)
        staged = expected_paging_imperfect_monte_carlo(
            instance, plan.strategy, model, trials=3_000, rng=rng
        )
        flat = expected_paging_imperfect_monte_carlo(
            instance, blanket, model, trials=3_000, rng=rng
        )
        print(f"   q={q:.1f}: staged {staged:6.2f} cells   blanket {flat:6.2f} cells")
    print("   -> collisions punish blanket paging hardest\n")


def movement_section(instance, rng) -> None:
    print("3. Movement during the search")
    plan = conference_call_heuristic(instance)
    for mobility in (0.0, 0.1, 0.3):
        result = measure_movement_sensitivity(
            instance, plan.strategy, mobility, trials=4_000, rng=rng
        )
        print(f"   mobility={mobility:.1f}: {result.mean_cells_paged:6.2f} cells "
              f"(x{result.cost_inflation:.3f} of promise), "
              f"miss rate {result.miss_rate:.1%}")
    print("   -> the stationarity assumption is the price of multi-round savings")


def main() -> None:
    rng = np.random.default_rng(2002)
    instance = hotspot_instance(3, 9, 3, rng=rng, home_mass=0.55)
    print(f"instance: m={instance.num_devices}, c={instance.num_cells}, "
          f"d={instance.max_rounds}\n")
    adaptivity_section(instance)
    collision_section(instance, rng)
    movement_section(instance, rng)


if __name__ == "__main__":
    main()
