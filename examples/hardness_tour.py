"""A guided tour of the NP-hardness machinery (Section 3 of the paper).

Walks the full reduction chain on concrete numbers:

1. a Partition instance is reduced to Quasipartition2 (Lemma 3.7),
2. a Quasipartition1 instance is embedded into a Conference Call instance
   whose optimal expected paging hits the Lemma 3.2 lower bound exactly when
   a quasipartition exists, and
3. the Section 4.3 gadget shows the heuristic's 320/317 performance gap.

Run:  python examples/hardness_tour.py
"""

from fractions import Fraction

from repro.core import (
    conference_call_heuristic,
    lower_bound_instance,
    optimal_strategy,
)
from repro.hardness import (
    PartitionInstance,
    extract_partition_witness,
    has_quasipartition1,
    reduce_partition_to_quasipartition2,
    reduce_quasipartition1_to_conference_call,
    solve_partition,
    solve_quasipartition1,
    solve_quasipartition2,
    verify_partition,
)


def partition_to_quasipartition() -> None:
    print("=" * 70)
    print("Step 1 — Partition -> Quasipartition2 (Lemma 3.7)")
    instance = PartitionInstance((3, 1, 2, 2))
    witness = solve_partition(instance)
    print(f"Partition sizes {instance.sizes}: witness {witness} "
          f"(sum {sum(instance.sizes[i] for i in witness)} of {instance.total})")

    reduction = reduce_partition_to_quasipartition2(instance)
    print(f"constructed {len(reduction.sizes)} Quasipartition2 sizes "
          f"(h={reduction.h}, padding 2^{reduction.padding_exponent})")
    quasi_witness = solve_quasipartition2(reduction.sizes, reduction.parameters)
    recovered = extract_partition_witness(reduction, quasi_witness)
    print(f"quasipartition witness maps back to Partition witness {recovered}: "
          f"valid={verify_partition(instance, recovered)}")


def quasipartition_to_conference_call() -> None:
    print("=" * 70)
    print("Step 2 — Quasipartition1 -> Conference Call (Lemma 3.2)")
    sizes = [Fraction(v) for v in (3, 1, 2, 2, 1, 3)]
    print(f"sizes {tuple(int(s) for s in sizes)}: "
          f"quasipartition exists = {has_quasipartition1(sizes)} "
          f"(witness {solve_quasipartition1(sizes)})")

    reduction = reduce_quasipartition1_to_conference_call(sizes)
    optimum = optimal_strategy(reduction.instance)
    print(f"gadget: m=2, d=2, c={reduction.instance.num_cells}")
    print(f"lower bound  LB = {reduction.lower_bound} = "
          f"{float(reduction.lower_bound):.6f}")
    print(f"optimal EP      = {optimum.expected_paging} = "
          f"{float(optimum.expected_paging):.6f}")
    print(f"EP == LB (iff a quasipartition exists): "
          f"{optimum.expected_paging == reduction.lower_bound}")
    print(f"first paged group encodes the witness: "
          f"{reduction.witness_from_strategy(optimum.strategy)}")

    # And a no-instance for contrast.
    no_sizes = [Fraction(v) for v in (1, 1, 9)]
    no_reduction = reduce_quasipartition1_to_conference_call(no_sizes)
    no_optimum = optimal_strategy(no_reduction.instance)
    print(f"\nno-instance {tuple(int(s) for s in no_sizes)}: optimal EP "
          f"{no_optimum.expected_paging} > LB {no_reduction.lower_bound} -> "
          f"{no_optimum.expected_paging > no_reduction.lower_bound}")


def heuristic_gap() -> None:
    print("=" * 70)
    print("Step 3 — the Section 4.3 heuristic gap (320/317)")
    instance = lower_bound_instance()
    optimum = optimal_strategy(instance)
    heuristic = conference_call_heuristic(instance)
    print(f"optimal strategy pages {sorted(optimum.strategy.group(0))} first: "
          f"EP = {optimum.expected_paging}")
    print(f"heuristic pages        {sorted(heuristic.strategy.group(0))} first: "
          f"EP = {heuristic.expected_paging}")
    ratio = Fraction(heuristic.expected_paging) / Fraction(optimum.expected_paging)
    print(f"ratio = {ratio} (~{float(ratio):.5f}), the paper's lower bound on "
          f"the heuristic's performance")


def main() -> None:
    partition_to_quasipartition()
    quasipartition_to_conference_call()
    heuristic_gap()


if __name__ == "__main__":
    main()
