"""End-to-end demo: conference calls inside a simulated GSM-style network.

Builds a hexagonal coverage area with four location areas, lets six devices
roam under a gravity (hotspot) mobility model, and handles a stream of
conference-call requests under three paging policies — the GSM blanket page,
the paper's delay-constrained heuristic, and the adaptive replanner — with
identical mobility and call streams so the link-usage numbers are directly
comparable (the Section 1.1 motivation, measured).

Run:  python examples/cellular_system.py
"""

import numpy as np

from repro.cellnet import (
    CellTopology,
    CellularSimulator,
    GravityMobility,
    LocationAreaPlan,
    SimulationConfig,
)

RADIUS = 3
DEVICES = 6
AREAS = 4
HORIZON = 800
CALL_RATE = 0.08
MAX_ROUNDS = 3
SEED = 2002


def run_policy(pager: str) -> dict:
    rng = np.random.default_rng(SEED)
    topology = CellTopology.hexagonal_disk(RADIUS)
    plan = LocationAreaPlan.by_bfs(topology, AREAS)
    attraction = np.random.default_rng(SEED + 1).uniform(
        0.5, 3.0, size=topology.num_cells
    )
    models = [GravityMobility(topology, attraction) for _ in range(DEVICES)]
    config = SimulationConfig(
        horizon=HORIZON,
        call_rate=CALL_RATE,
        max_paging_rounds=MAX_ROUNDS,
        reporting="la",
        pager=pager,
    )
    simulator = CellularSimulator(topology, plan, models, config, rng=rng)
    return simulator.run().summary()


def main() -> None:
    topology = CellTopology.hexagonal_disk(RADIUS)
    print(f"network: {topology.num_cells} hexagonal cells, {AREAS} location areas, "
          f"{DEVICES} devices, horizon {HORIZON} steps")
    print(f"paging delay budget: {MAX_ROUNDS} rounds per search\n")

    results = {pager: run_policy(pager) for pager in ("blanket", "heuristic", "adaptive")}
    blanket = results["blanket"]["mean_cells_per_call"]

    header = f"{'policy':<10} {'calls':>6} {'cells/call':>11} {'rounds/call':>12} {'saving':>8}"
    print(header)
    print("-" * len(header))
    for pager, summary in results.items():
        saving = 1.0 - summary["mean_cells_per_call"] / blanket if blanket else 0.0
        print(
            f"{pager:<10} {summary['calls']:>6.0f} "
            f"{summary['mean_cells_per_call']:>11.2f} "
            f"{summary['mean_rounds_per_call']:>12.2f} {saving:>8.1%}"
        )

    print("\nThe heuristic trades one extra round of delay for fewer cells paged —")
    print("exactly the delay/bandwidth trade-off the paper optimizes.")


if __name__ == "__main__":
    main()
