"""Dimensioning location areas: how multi-round paging moves the optimum.

An operator partitions a coverage area into location areas (LAs).  Small
areas mean frequent boundary-crossing reports; large areas mean expensive
searches.  This example sweeps the granularity at a low and a high call
rate, under both the GSM blanket pager and the paper's multi-round
heuristic, and prints the total wireless usage per operating point.

Run:  python examples/area_dimensioning.py
"""

from repro.cellnet import best_operating_point, sweep_location_area_sizes

AREA_COUNTS = (1, 2, 4, 8, 16)


def sweep(call_rate: float) -> None:
    print(f"call rate {call_rate}/step")
    header = f"  {'areas':>5} {'reports':>8} {'blanket total':>14} {'heuristic total':>16}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    blanket = sweep_location_area_sizes(
        radius=3, area_counts=AREA_COUNTS, horizon=400, call_rate=call_rate,
        pager="blanket", seed=23,
    )
    heuristic = sweep_location_area_sizes(
        radius=3, area_counts=AREA_COUNTS, horizon=400, call_rate=call_rate,
        pager="heuristic", seed=23,
    )
    for flat, staged in zip(blanket, heuristic):
        print(
            f"  {flat.num_areas:>5} {flat.reports:>8} "
            f"{flat.total_wireless:>14} {staged.total_wireless:>16}"
        )
    best_flat = best_operating_point(blanket)
    best_staged = best_operating_point(heuristic)
    print(
        f"  best: blanket {best_flat.num_areas} areas "
        f"({best_flat.total_wireless} msgs), heuristic "
        f"{best_staged.num_areas} areas ({best_staged.total_wireless} msgs)\n"
    )


def main() -> None:
    print("37-cell hexagonal network, 5 devices, LA-crossing reports\n")
    sweep(0.05)
    sweep(0.4)
    print("Low rates reward coarse areas (reports dominate); high rates reward")
    print("fine areas (paging dominates).  The delay-constrained heuristic")
    print("lowers the total at every point by making each search cheaper.")


if __name__ == "__main__":
    main()
