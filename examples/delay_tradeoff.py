"""The delay/paging trade-off curve, as an ASCII chart.

The core tension of the paper: more paging rounds (delay) buy fewer expected
cells paged (wireless bandwidth).  This example sweeps the round budget d
from 1 (blanket) to c (fully sequential) for a two-party call and charts the
optimal and heuristic expected paging side by side.

Run:  python examples/delay_tradeoff.py
"""

import numpy as np

from repro.core import conference_call_heuristic, optimal_strategy
from repro.distributions import zipf_instance


def bar(value: float, scale: float, width: int = 40) -> str:
    filled = int(round(value / scale * width))
    return "#" * filled


def main() -> None:
    rng = np.random.default_rng(7)
    m, c = 2, 12
    base = zipf_instance(m, c, c, rng=rng, exponent=1.2)
    print(f"two-party conference call, {c} cells, Zipf location profiles\n")
    print(f"{'d':>2}  {'optimal':>8}  {'heuristic':>9}  chart (expected cells paged)")
    print("-" * 72)
    for d in range(1, c + 1):
        instance = base.with_max_rounds(d)
        optimal = float(optimal_strategy(instance).expected_paging)
        heuristic = float(conference_call_heuristic(instance).expected_paging)
        print(f"{d:>2}  {optimal:>8.3f}  {heuristic:>9.3f}  {bar(optimal, c)}")
    print("\nEP falls monotonically with the delay budget (paper Section 2):")
    print("each extra round lets the search stop before paging unlikely cells.")


if __name__ == "__main__":
    main()
