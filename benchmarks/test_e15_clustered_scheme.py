"""E15 — the clustered-probability exhaustive scheme (Section 5)."""

import numpy as np

from repro.core import clustered_exhaustive
from repro.distributions import clustered_instance
from repro.experiments import run_e15_clustered


def test_e15_clustered_scheme(benchmark, record_table):
    instance = clustered_instance(2, 10, 3, rng=np.random.default_rng(15), num_levels=2)
    result = benchmark(clustered_exhaustive, instance)
    assert len(result.clusters) <= 2

    table = record_table(
        run_e15_clustered(trials=5, rng=np.random.default_rng(150))
    )
    assert all(value == "True" for value in table.column("scheme_optimal"))
