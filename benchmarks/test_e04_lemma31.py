"""E4 — Lemma 3.1's unique maximum at (1/2, 2c/3)."""

import pytest

from repro.analysis import grid_check_lemma31
from repro.experiments import run_e04_lemma31


def test_e04_lemma31(benchmark, record_table):
    check = benchmark(grid_check_lemma31, 9, grid=150)
    assert check.claim_holds
    assert check.best_found_point[0] == pytest.approx(0.5, abs=0.02)

    table = record_table(run_e04_lemma31())
    assert all(value == "True" for value in table.column("grid_holds"))
    for gradient in table.column("grad_norm"):
        assert gradient < 1e-3
