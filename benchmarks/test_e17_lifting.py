"""E17 — the Section 5 lifting (c, 2, d) -> (c+1, m, d+1)."""

import numpy as np

from repro.experiments import run_e17_lifting


def test_e17_lifting(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e17_lifting,
            kwargs={"trials": 4, "num_cells": 4, "rng": np.random.default_rng(17)},
            rounds=1,
            iterations=1,
        )
    )
    assert all(value == "True" for value in table.column("first_group_is_extra"))
    for gap in table.column("gap"):
        assert -1e-9 <= gap < 0.5  # near-optimal continuation
