"""E26 — what the learned location profiles are worth end to end."""

import numpy as np

from repro.experiments import run_e26_learning_curve


def test_e26_learning_curve(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e26_learning_curve,
            kwargs={"horizon": 800, "buckets": 4},
            rounds=1,
            iterations=1,
        )
    )
    rows = table.as_dicts()
    online = [row["online_prior"] for row in rows if not np.isnan(row["online_prior"])]
    uniform = [
        row["uniform_prior"] for row in rows if not np.isnan(row["uniform_prior"])
    ]
    # Learned profiles beat the uniform ablation overall.
    assert float(np.mean(online)) < float(np.mean(uniform))
    assert all(row["calls"] >= 0 for row in rows)
