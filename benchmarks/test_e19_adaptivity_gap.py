"""E19 — the adaptivity gap: optimal oblivious vs optimal adaptive."""

import numpy as np

from repro.core import optimal_adaptive_expected_paging
from repro.distributions import instance_family
from repro.experiments import run_e19_adaptivity_gap


def test_e19_adaptivity_gap(benchmark, record_table):
    instance = instance_family("dirichlet", 2, 7, 3, rng=np.random.default_rng(19))
    result = benchmark(optimal_adaptive_expected_paging, instance)
    assert 1.0 <= float(result.expected_paging) <= 7.0

    table = record_table(
        run_e19_adaptivity_gap(trials=5, rng=np.random.default_rng(190))
    )
    for row in table.as_dicts():
        assert row["mean_gap"] >= 1.0 - 1e-9
        assert row["mean_adaptive_opt"] <= row["mean_oblivious_opt"] + 1e-9
