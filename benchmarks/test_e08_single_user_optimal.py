"""E8 — m = 1: the probability-sorted DP is exactly optimal."""

import numpy as np
import pytest

from repro.core import optimal_single_user
from repro.distributions import zipf_instance
from repro.experiments import run_e08_single_user_optimal


def test_e08_single_user_optimal(benchmark, record_table):
    instance = zipf_instance(1, 100, 5, rng=np.random.default_rng(8))
    result = benchmark(optimal_single_user, instance)
    assert float(result.expected_paging) < 100

    table = record_table(
        run_e08_single_user_optimal(trials=15, rng=np.random.default_rng(88))
    )
    for gap in table.column("max_abs_gap"):
        assert gap == pytest.approx(0.0, abs=1e-9)
