"""E10 — adaptive replanning vs the oblivious heuristic (Section 5)."""

import numpy as np

from repro.core import adaptive_expected_paging
from repro.distributions import instance_family
from repro.experiments import run_e10_adaptive


def test_e10_adaptive(benchmark, record_table):
    instance = instance_family("hotspot", 2, 8, 3, rng=np.random.default_rng(10))
    value = benchmark(adaptive_expected_paging, instance)
    assert 1.0 <= float(value) <= 8.0

    table = record_table(
        run_e10_adaptive(trials=6, rng=np.random.default_rng(100))
    )
    for row in table.as_dicts():
        assert row["mean_adaptive"] <= row["mean_oblivious"] + 1e-9
