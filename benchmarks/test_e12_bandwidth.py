"""E12 — bandwidth-limited paging: at most b cells per round (Section 5)."""

import numpy as np

from repro.core import bandwidth_limited_heuristic
from repro.distributions import instance_family
from repro.experiments import run_e12_bandwidth


def test_e12_bandwidth(benchmark, record_table):
    instance = instance_family("zipf", 2, 20, 5, rng=np.random.default_rng(12))
    result = benchmark(bandwidth_limited_heuristic, instance, 6)
    assert max(result.group_sizes) <= 6

    table = record_table(run_e12_bandwidth(rng=np.random.default_rng(120)))
    for row in table.as_dicts():
        assert row["heuristic_ep"] >= row["optimal_ep"] - 1e-9
        assert row["heuristic_ep"] >= row["uncapped_heuristic_ep"] - 1e-9
