"""E9 — the delay/paging trade-off: EP falls monotonically with d."""

import numpy as np
import pytest

from repro.experiments import run_e09_delay_tradeoff


def test_e09_delay_tradeoff(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e09_delay_tradeoff,
            kwargs={"num_cells": 10, "rng": np.random.default_rng(9)},
            rounds=1,
            iterations=1,
        )
    )
    optimal = table.column("optimal_ep")
    heuristic = table.column("heuristic_ep")
    assert optimal[0] == pytest.approx(10.0)  # d = 1 means blanket paging
    for i in range(len(optimal) - 1):
        assert optimal[i + 1] <= optimal[i] + 1e-9
    for opt, heur in zip(optimal, heuristic):
        assert opt <= heur + 1e-9
