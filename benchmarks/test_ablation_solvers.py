"""Ablation A2 — the subset DP vs naive enumeration (DESIGN.md choice).

The exact solver uses an O(d 3^c) prefix-chain DP instead of enumerating all
d^c surjections.  This benchmark times both on the same instance and asserts
they agree, justifying the DP as the exact-baseline workhorse.
"""

import numpy as np
import pytest

from repro.core import optimal_strategy, optimal_strategy_bruteforce
from repro.distributions import instance_family


@pytest.fixture
def instance():
    return instance_family("dirichlet", 2, 9, 3, rng=np.random.default_rng(102))


def test_ablation_subset_dp(benchmark, instance):
    result = benchmark(optimal_strategy, instance)
    assert result.strategy.length == 3


def test_ablation_bruteforce(benchmark, instance):
    result = benchmark.pedantic(
        optimal_strategy_bruteforce, args=(instance,), rounds=1, iterations=2
    )
    dp = optimal_strategy(instance)
    assert float(result.expected_paging) == pytest.approx(float(dp.expected_paging))
