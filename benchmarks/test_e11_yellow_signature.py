"""E11 — Yellow Pages orderings and the Signature quorum sweep."""

import numpy as np

from repro.core import signature_heuristic, yellow_pages_greedy
from repro.distributions import instance_family
from repro.experiments import run_e11_signature_sweep, run_e11_yellow_pages


def test_e11_yellow_pages(benchmark, record_table):
    instance = instance_family("hotspot", 3, 10, 3, rng=np.random.default_rng(11))
    result = benchmark(yellow_pages_greedy, instance)
    assert 1.0 <= float(result.expected_paging) <= 10.0

    table = record_table(
        run_e11_yellow_pages(trials=8, rng=np.random.default_rng(111))
    )
    for row in table.as_dicts():
        assert row["greedy_hit"] <= row["random"] + 1e-9


def test_e11_signature_sweep(benchmark, record_table):
    instance = instance_family("hotspot", 4, 10, 3, rng=np.random.default_rng(12))
    result = benchmark(signature_heuristic, instance, 2)
    assert 1.0 <= float(result.expected_paging) <= 10.0

    table = record_table(
        run_e11_signature_sweep(rng=np.random.default_rng(112))
    )
    values = table.column("weight_order_ep")
    for i in range(len(values) - 1):
        assert values[i] <= values[i + 1] + 1e-9
