"""E25 — heterogeneous paging costs (the §5.1 Search Theory direction)."""

import numpy as np
import pytest

from repro.core import weighted_heuristic
from repro.distributions import instance_family
from repro.experiments import run_e25_weighted_costs


def test_e25_weighted_costs(benchmark, record_table):
    rng = np.random.default_rng(25)
    instance = instance_family("hotspot", 3, 12, 3, rng=rng)
    costs = [float(v) for v in rng.uniform(1.0, 5.0, size=12)]
    result = benchmark(weighted_heuristic, instance, costs)
    assert float(result.expected_cost) <= sum(costs)

    table = record_table(
        run_e25_weighted_costs(trials=6, rng=np.random.default_rng(250))
    )
    rows = table.as_dicts()
    assert rows[0]["density_ep"] == pytest.approx(rows[0]["weight_order_ep"])
    for row in rows:
        # Density ordering dominates the naive weight ordering on average
        # and stays anchored to the exact optimum.
        assert row["density_ep"] <= row["weight_order_ep"] + 1e-9
        assert row["density_ep"] >= row["optimal_ep"] - 1e-9
        assert row["density_ep"] <= row["optimal_ep"] * 1.10
