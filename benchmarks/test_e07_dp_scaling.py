"""E7 — Theorem 4.8: the heuristic runs in O(c(m + dc)) time.

pytest-benchmark times the Fig. 1 algorithm at several cell counts; the
normalized cost per work unit must stay roughly flat as c quadruples.
"""

import pytest

from repro.experiments import heuristic_workload, run_e07_dp_scaling
from repro.core import conference_call_heuristic


@pytest.mark.parametrize("num_cells", [40, 80, 160])
def test_e07_heuristic_scaling(benchmark, num_cells):
    instance = heuristic_workload(3, num_cells, 5)
    result = benchmark(conference_call_heuristic, instance)
    assert sum(result.group_sizes) == num_cells


def test_e07_scaling_table(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e07_dp_scaling,
            kwargs={"cell_counts": (20, 40, 80, 160)},
            rounds=1,
            iterations=1,
        )
    )
    costs = table.column("ns_per_unit")
    # Normalized cost must not grow with c: allow generous slack for noise.
    assert costs[-1] <= costs[0] * 3.0
