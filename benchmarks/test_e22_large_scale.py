"""E22 — large-scale planning: the vectorized Fig. 1 heuristic.

Production location areas have hundreds of cells; this benchmark shows the
numpy planner handles c = 800 with a 5-round budget comfortably and agrees
with the pure-Python reference where both run.
"""

import numpy as np
import pytest

from repro.core import (
    PagingInstance,
    conference_call_heuristic,
    conference_call_heuristic_fast,
)
from repro.experiments.tables import ExperimentTable


def _instance(num_cells, num_devices=4, max_rounds=5, seed=22):
    rng = np.random.default_rng(seed)
    matrix = rng.dirichlet(np.ones(num_cells), size=num_devices)
    return PagingInstance.from_array(matrix, max_rounds=max_rounds)


@pytest.mark.parametrize("num_cells", [200, 800])
def test_e22_fast_planner(benchmark, num_cells):
    instance = _instance(num_cells)
    result = benchmark(conference_call_heuristic_fast, instance)
    assert sum(result.group_sizes) == num_cells


def test_e22_agreement_table(benchmark, record_table):
    def build():
        table = ExperimentTable(
            "E22",
            "Large-scale planning: fast vs reference heuristic",
            ["c", "reference_ep", "fast_ep", "agree"],
        )
        for c in (50, 120, 250):
            instance = _instance(c)
            reference = conference_call_heuristic(instance)
            fast = conference_call_heuristic_fast(instance)
            table.add_row(
                c,
                float(reference.expected_paging),
                float(fast.expected_paging),
                str(
                    abs(float(reference.expected_paging) - float(fast.expected_paging))
                    < 1e-9
                ),
            )
        return table

    table = record_table(benchmark.pedantic(build, rounds=1, iterations=1))
    assert all(value == "True" for value in table.column("agree"))
