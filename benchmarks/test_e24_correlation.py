"""E24 — the independence assumption under correlated participants."""

import numpy as np
import pytest

from repro.experiments import run_e24_correlation_sensitivity


def test_e24_correlation_sensitivity(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e24_correlation_sensitivity,
            kwargs={"trials": 8, "rng": np.random.default_rng(24)},
            rounds=1,
            iterations=1,
        )
    )
    rows = table.as_dicts()
    assert rows[0]["cohesion"] == 0.0
    assert rows[0]["true_over_believed"] == pytest.approx(1.0, abs=1e-9)
    ratios = [row["true_over_believed"] for row in rows]
    # Stronger cohesion means the independent model over-estimates more.
    assert ratios[-1] < ratios[0]
    for ratio in ratios:
        assert ratio <= 1.0 + 1e-9
