"""E1 — the Section 1.1 uniform example: EP = 3c/4 at d = 2 (m = 1)."""

import pytest

from repro.core import PagingInstance, optimal_single_user
from repro.experiments import run_e01_uniform_single_user


def test_e01_uniform_single_user(benchmark, record_table):
    instance = PagingInstance.uniform(1, 64, 2, exact=True)
    result = benchmark(optimal_single_user, instance)
    assert float(result.expected_paging) == pytest.approx(48.0)  # 3c/4

    table = record_table(run_e01_uniform_single_user())
    for row in table.as_dicts():
        assert row["optimal_ep"] == pytest.approx(row["closed_form"])
        if row["d"] == 2:
            assert row["saving"] == pytest.approx(row["c"] / 4)
