"""Micro-benchmarks for the core primitives (performance tracking).

Not tied to a paper claim; these pin the cost of the operations everything
else is built from, so regressions surface in the benchmark report.
"""

import numpy as np
import pytest

from repro.core import (
    PagingInstance,
    Strategy,
    by_expected_devices,
    expected_paging_float,
    optimal_strategy,
)


def _instance(num_devices, num_cells, max_rounds, seed=7):
    rng = np.random.default_rng(seed)
    matrix = rng.dirichlet(np.ones(num_cells), size=num_devices)
    return PagingInstance.from_array(matrix, max_rounds=max_rounds)


@pytest.mark.parametrize("num_cells", [16, 64, 256])
def test_expected_paging_cost(benchmark, num_cells):
    instance = _instance(3, num_cells, 4)
    strategy = Strategy.from_order_and_sizes(
        tuple(range(num_cells)), (num_cells // 4,) * 4
    )
    value = benchmark(expected_paging_float, instance, strategy)
    assert 0 < value <= num_cells


@pytest.mark.parametrize("num_cells", [64, 512])
def test_weight_ordering_cost(benchmark, num_cells):
    instance = _instance(4, num_cells, 4)
    order = benchmark(by_expected_devices, instance)
    assert len(order) == num_cells


@pytest.mark.parametrize("num_cells", [8, 11])
def test_exact_solver_cost(benchmark, num_cells):
    instance = _instance(2, num_cells, 3)
    result = benchmark.pedantic(
        optimal_strategy, args=(instance,), rounds=2, iterations=1
    )
    assert result.strategy.num_cells == num_cells


def test_prefix_probabilities_cost(benchmark):
    instance = _instance(4, 256, 4)
    order = by_expected_devices(instance)
    finds = benchmark(instance.prefix_find_probabilities, order)
    assert finds[-1] == pytest.approx(1.0)
