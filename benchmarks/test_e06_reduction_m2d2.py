"""E6 — Lemma 3.2/3.5: partition questions <-> optimal expected paging."""

from fractions import Fraction

import numpy as np

from repro.core import optimal_strategy
from repro.experiments import run_e06_reduction_general, run_e06_reduction_m2d2
from repro.hardness import reduce_quasipartition1_to_conference_call


def test_e06_reduction_m2d2(benchmark, record_table):
    sizes = [Fraction(v) for v in (3, 1, 2, 2, 1, 3)]

    def reduce_and_solve():
        reduction = reduce_quasipartition1_to_conference_call(sizes)
        return optimal_strategy(reduction.instance), reduction

    result, reduction = benchmark(reduce_and_solve)
    assert result.expected_paging == reduction.lower_bound  # yes-instance

    table = record_table(run_e06_reduction_m2d2(trials=12, rng=np.random.default_rng(6)))
    row = table.as_dicts()[0]
    assert row["equivalences_hold"] == row["trials"]


def test_e06b_reduction_general(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e06_reduction_general,
            kwargs={
                "configurations": ((2, 2, 6), (3, 2, 4)),
                "trials": 5,
                "rng": np.random.default_rng(66),
            },
            rounds=1,
            iterations=1,
        )
    )
    for row in table.as_dicts():
        assert row["equivalences_hold"] == row["trials"]
