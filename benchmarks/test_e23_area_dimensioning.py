"""E23 — location-area dimensioning (the intro's LA-design trade-off)."""

import math

from repro.experiments import run_e23_area_dimensioning


def test_e23_area_dimensioning(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e23_area_dimensioning,
            kwargs={
                "area_counts": (1, 2, 4, 8, 16),
                "call_rates": (0.05, 0.4),
                "horizon": 300,
            },
            rounds=1,
            iterations=1,
        )
    )
    rows = table.as_dicts()
    low = [row for row in rows if math.isclose(row["call_rate"], 0.05)]
    high = [row for row in rows if math.isclose(row["call_rate"], 0.4)]
    # Reports grow with area count; blanket paging-per-call shrinks.
    assert low[0]["reports"] == 0  # one area: never crosses a boundary
    assert low[-1]["reports"] > low[1]["reports"]
    assert high[-1]["blanket_paged"] < high[0]["blanket_paged"]
    # Low rate: coarse best for blanket.  High rate: fine best.
    assert min(low, key=lambda r: r["blanket_total"])["areas"] <= 2
    assert min(high, key=lambda r: r["blanket_total"])["areas"] >= 8
    # The heuristic improves (or matches) every operating point.
    for row in rows:
        assert row["heuristic_total"] <= row["blanket_total"] + 1e-9
