"""E3 — empirical approximation ratios vs the e/(e-1) guarantee."""

import math

import numpy as np

from repro.analysis import measure_ratio
from repro.distributions import instance_family
from repro.experiments import run_e03_ratio_sweep

E_FACTOR = math.e / (math.e - 1.0)


def test_e03_ratio_sweep(benchmark, record_table):
    rng = np.random.default_rng(33)
    instance = instance_family("adversarial", 2, 8, 2, rng=rng)
    sample = benchmark(measure_ratio, instance)
    assert 1.0 - 1e-9 <= sample.ratio <= E_FACTOR + 1e-9

    table = record_table(
        run_e03_ratio_sweep(trials=20, rng=np.random.default_rng(3))
    )
    for row in table.as_dicts():
        assert row["max_ratio"] <= E_FACTOR + 1e-9
        assert row["mean_ratio"] >= 1.0 - 1e-9
