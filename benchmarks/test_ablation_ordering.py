"""Ablation A1 — how much the weight ordering matters (DESIGN.md choice).

The Fig. 1 heuristic has two pieces: the cell *ordering* and the cut-point
DP.  This ablation fixes the DP and swaps the ordering, confirming that the
paper's weight order is the load-bearing choice (random or index orders
optimized by the same DP pay substantially more).
"""

import numpy as np

from repro.core import (
    by_expected_devices,
    by_max_probability,
    by_miss_probability,
    identity,
    optimize_over_order,
    random_order,
)
from repro.distributions import instance_family
from repro.experiments.tables import ExperimentTable


def run_ordering_ablation(trials=12, rng=None):
    if rng is None:
        rng = np.random.default_rng(101)
    table = ExperimentTable(
        "A1",
        "Ordering ablation: mean EP of the cut DP over different cell orders",
        ["family", "weight", "max_prob", "miss_prob", "index", "random"],
    )
    orders = {
        "weight": by_expected_devices,
        "max_prob": by_max_probability,
        "miss_prob": by_miss_probability,
        "index": identity,
    }
    for family in ("zipf", "hotspot", "skewed-dirichlet"):
        sums = {name: 0.0 for name in orders}
        sums["random"] = 0.0
        for _ in range(trials):
            instance = instance_family(family, 3, 10, 3, rng=rng)
            for name, order_fn in orders.items():
                result = optimize_over_order(instance, order_fn(instance))
                sums[name] += float(result.expected_paging)
            shuffled = optimize_over_order(instance, random_order(instance, rng))
            sums["random"] += float(shuffled.expected_paging)
        table.add_row(
            family,
            *(sums[name] / trials for name in ("weight", "max_prob", "miss_prob", "index", "random")),
        )
    table.add_note("the weight order should be best or tied in every family")
    return table


def test_ablation_ordering(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(run_ordering_ablation, rounds=1, iterations=1)
    )
    for row in table.as_dicts():
        competitors = (row["max_prob"], row["miss_prob"], row["index"], row["random"])
        assert row["weight"] <= min(competitors) + 0.35, row
        assert row["weight"] <= row["random"]  # uninformed order always worse
