"""E2 — the Section 4.3 instance: optimal 317/49, heuristic 320/49."""

from fractions import Fraction

import pytest

from repro.core import (
    conference_call_heuristic,
    lower_bound_instance,
    optimal_strategy,
)
from repro.experiments import run_e02_lower_bound


def test_e02_lower_bound_instance(benchmark, record_table):
    instance = lower_bound_instance()

    def solve_both():
        return (
            optimal_strategy(instance).expected_paging,
            conference_call_heuristic(instance).expected_paging,
        )

    optimal_value, heuristic_value = benchmark(solve_both)
    assert optimal_value == Fraction(317, 49)
    assert heuristic_value == Fraction(320, 49)

    table = record_table(run_e02_lower_bound())
    for row in table.as_dicts():
        assert row["ratio"] == pytest.approx(320 / 317, abs=2e-4)
