"""E14 — the Lemma 3.7 Partition <-> Quasipartition2 round trip."""

import numpy as np

from repro.experiments import run_e14_quasipartition2
from repro.hardness import (
    PartitionInstance,
    reduce_partition_to_quasipartition2,
    solve_quasipartition2,
)


def test_e14_quasipartition2(benchmark, record_table):
    instance = PartitionInstance((3, 1, 2, 2, 5, 3))

    def reduce_and_solve():
        reduction = reduce_partition_to_quasipartition2(instance)
        return solve_quasipartition2(reduction.sizes, reduction.parameters)

    witness = benchmark(reduce_and_solve)
    assert witness is not None  # (3,1,2,2,5,3) has a balanced half

    table = record_table(
        run_e14_quasipartition2(trials=10, rng=np.random.default_rng(14))
    )
    row = table.as_dicts()[0]
    assert row["equivalences_hold"] == row["trials"]
