"""E18 — the Section 5.1 QAP formulation cross-check."""

import numpy as np

from repro.distributions import instance_family
from repro.experiments import run_e18_qap
from repro.hardness import formulate_qap, solve_qap_bruteforce


def test_e18_qap(benchmark, record_table):
    instance = instance_family("dirichlet", 2, 6, 6, rng=np.random.default_rng(18))
    formulation = formulate_qap(instance)
    _pi, objective = benchmark(solve_qap_bruteforce, formulation)
    assert 0 < float(objective) < 6

    table = record_table(run_e18_qap(trials=4, rng=np.random.default_rng(180)))
    assert all(value == "True" for value in table.column("agree"))
