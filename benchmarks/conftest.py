"""Shared helpers for the benchmark suite.

Each benchmark regenerates one experiment table (DESIGN.md's E-index), times
its core computation via pytest-benchmark, asserts the paper-facing claim,
and writes the rendered table to ``benchmarks/results/<id>.txt`` so the full
report survives output capturing.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Persist an ExperimentTable under benchmarks/results/."""

    def _record(table):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{table.experiment_id.lower()}.txt"
        path.write_text(table.render() + "\n")
        return table

    return _record
