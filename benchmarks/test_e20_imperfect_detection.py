"""E20 — imperfect detection: cyclic paging under the collision model."""

import numpy as np

from repro.core import ConstantDetection, expected_paging_imperfect_monte_carlo, optimal_single_user
from repro.distributions import zipf_instance
from repro.experiments import run_e20_imperfect_detection


def test_e20_imperfect_detection(benchmark, record_table):
    rng = np.random.default_rng(20)
    instance = zipf_instance(1, 8, 3, rng=rng)
    plan = optimal_single_user(instance)
    estimate = benchmark.pedantic(
        expected_paging_imperfect_monte_carlo,
        args=(instance, plan.strategy, ConstantDetection(0.7)),
        kwargs={"trials": 2_000, "rng": np.random.default_rng(7)},
        rounds=1,
        iterations=1,
    )
    assert estimate > float(plan.expected_paging)  # misses cost extra sweeps

    table = record_table(
        run_e20_imperfect_detection(trials=2_000, rng=np.random.default_rng(200))
    )
    rows = table.as_dicts()
    assert rows[0]["q"] == 1.0
    for row in rows:
        assert row["multi_heuristic_mc"] <= row["multi_blanket_mc"] + 1e-9
