"""E5 — Lemma 3.4's alpha/b chain maximizes the gadget sum."""

import numpy as np

from repro.analysis import grid_check_lemma34
from repro.experiments import run_e05_lemma34


def test_e05_lemma34(benchmark, record_table):
    check = benchmark(
        grid_check_lemma34, 2, 3, 12.0, samples=30_000,
        rng=np.random.default_rng(5),
    )
    assert check.claim_holds

    table = record_table(run_e05_lemma34(samples=50_000))
    assert all(value == "True" for value in table.column("holds"))
