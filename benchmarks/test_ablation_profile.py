"""Ablation A3 — the DP cut optimization vs the closed-form b-profile.

The Fig. 1 algorithm's second component is the cut DP.  Lemma 3.4's
``b``-recursion gives a closed-form group-size profile (the worst-case
optimum), so: how much does per-instance cut optimization actually buy over
just cutting at ``round(b_r)``?
"""

import numpy as np

from repro.core import conference_call_heuristic, profile_heuristic
from repro.distributions import instance_family
from repro.experiments.tables import ExperimentTable


def run_profile_ablation(trials=12, rng=None):
    if rng is None:
        rng = np.random.default_rng(103)
    table = ExperimentTable(
        "A3",
        "Cut ablation: DP cuts vs the Lemma 3.4 closed-form profile",
        ["family", "dp_ep", "profile_ep", "profile_penalty"],
    )
    for family in ("uniform", "zipf", "hotspot", "skewed-dirichlet"):
        dp_total = profile_total = 0.0
        for _ in range(trials):
            instance = instance_family(family, 3, 12, 3, rng=rng)
            dp_total += float(conference_call_heuristic(instance).expected_paging)
            profile_total += float(profile_heuristic(instance).expected_paging)
        table.add_row(
            family,
            dp_total / trials,
            profile_total / trials,
            profile_total / dp_total - 1.0,
        )
    table.add_note(
        "the closed-form profile is near-optimal on uniform-like inputs (it "
        "IS the gadget optimum) but pays on skewed ones — the DP earns its keep"
    )
    return table


def test_ablation_profile(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(run_profile_ablation, rounds=1, iterations=1)
    )
    for row in table.as_dicts():
        assert row["profile_ep"] >= row["dp_ep"] - 1e-9  # DP is optimal-per-order
    uniform_row = next(r for r in table.as_dicts() if r["family"] == "uniform")
    assert uniform_row["profile_penalty"] < 0.05  # near-optimal where designed
