"""E13 — the end-to-end cellular simulation (the Section 1.1 motivation)."""

import pytest

from repro.experiments import run_e13_cellnet, run_e13_reporting_tradeoff


def test_e13_cellnet_end_to_end(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e13_cellnet,
            kwargs={"radius": 3, "num_devices": 6, "horizon": 500, "seed": 13},
            rounds=1,
            iterations=1,
        )
    )
    rows = {row["pager"]: row for row in table.as_dicts()}
    assert rows["blanket"]["rounds_per_call"] == pytest.approx(1.0)
    assert rows["heuristic"]["saving_vs_blanket"] > 0.1
    assert rows["adaptive"]["cells_per_call"] <= rows["blanket"]["cells_per_call"]
    # Identical call streams across policies.
    calls = {row["calls"] for row in table.as_dicts()}
    assert len(calls) == 1


def test_e13b_reporting_tradeoff(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e13_reporting_tradeoff,
            kwargs={"radius": 3, "num_devices": 5, "horizon": 400},
            rounds=1,
            iterations=1,
        )
    )
    rows = {row["reporting"]: row for row in table.as_dicts()}
    assert rows["never"]["reports"] == 0
    assert rows["always"]["cells_paged"] <= rows["never"]["cells_paged"]
    assert rows["la"]["cells_paged"] <= rows["never"]["cells_paged"]
