"""E16 — the Section 4.1 O(c) scan stays within 4/3 of optimal."""

import numpy as np

from repro.core import two_device_two_round_heuristic
from repro.distributions import instance_family
from repro.experiments import run_e16_four_thirds


def test_e16_four_thirds(benchmark, record_table):
    instance = instance_family("hotspot", 2, 50, 2, rng=np.random.default_rng(16))
    result = benchmark(two_device_two_round_heuristic, instance)
    assert 1 <= result.first_round_size < 50

    table = record_table(
        run_e16_four_thirds(trials=20, rng=np.random.default_rng(160))
    )
    for row in table.as_dicts():
        assert row["max_ratio"] <= row["bound"] + 1e-9
