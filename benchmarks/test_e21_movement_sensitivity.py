"""E21 — sensitivity to the "no movement during search" assumption."""

import numpy as np
import pytest

from repro.experiments import run_e21_movement_sensitivity


def test_e21_movement_sensitivity(benchmark, record_table):
    table = record_table(
        benchmark.pedantic(
            run_e21_movement_sensitivity,
            kwargs={"trials": 2_500, "rng": np.random.default_rng(21)},
            rounds=1,
            iterations=1,
        )
    )
    rows = table.as_dicts()
    # mobility 0 must reproduce the stationary model (Lemma 2.1).
    assert rows[0]["d2_inflation"] == pytest.approx(1.0, abs=0.05)
    assert rows[0]["d5_inflation"] == pytest.approx(1.0, abs=0.05)
    assert rows[0]["d2_miss_rate"] == 0.0
    # Miss rates grow with mobility, and the longer strategy misses more.
    assert rows[-1]["d2_miss_rate"] <= rows[-1]["d5_miss_rate"] + 0.02
    assert rows[-1]["d5_miss_rate"] > 0.0
