"""Deterministic area -> shard assignment for the paging controller.

A long-running controller serves many location areas concurrently; the
shard map decides which per-shard cache and batch queue owns each area.
The assignment must be a *pure function of the area id* — never of
arrival order, process start time, or ``PYTHONHASHSEED`` — so that a
restarted controller, a replica, or a test reproduces the same layout.
Python's built-in ``hash`` on strings is salted per process and is
therefore exactly the wrong tool; we hash the area id's canonical string
form with BLAKE2b instead.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Dict, Iterable, List, Tuple

#: Digest width for the area hash; 8 bytes is far beyond any shard count.
_DIGEST_SIZE = 8


def shard_for_area(area: object, num_shards: int) -> int:
    """The shard index (``0 <= shard < num_shards``) that owns ``area``.

    Deterministic across processes and platforms: BLAKE2b of
    ``repr(area)`` reduced modulo ``num_shards``.  Integer and string
    area ids hash by value (``repr(7) == '7'``), so a topology's cell or
    LA index and its string form land on the same shard.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if isinstance(area, str):
        canonical = area
    else:
        canonical = repr(area)
    digest = blake2b(canonical.encode("utf-8"), digest_size=_DIGEST_SIZE).digest()
    return int.from_bytes(digest, "big") % int(num_shards)


def shard_assignments(
    areas: Iterable[object], num_shards: int
) -> Dict[object, int]:
    """The full area -> shard map for a known area population."""
    return {area: shard_for_area(area, num_shards) for area in areas}


def shard_loads(areas: Iterable[object], num_shards: int) -> List[int]:
    """How many of ``areas`` land on each shard (balance diagnostics)."""
    loads = [0] * int(num_shards)
    for area in areas:
        loads[shard_for_area(area, num_shards)] += 1
    return loads


class ShardMap:
    """A memoizing view of :func:`shard_for_area` for one shard count.

    The controller resolves every request's shard through one of these;
    the memo turns the per-request BLAKE2b into a dict lookup once an
    area has been seen, which matters at 10k+ requests/sec.
    """

    __slots__ = ("num_shards", "_memo")

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self._memo: Dict[object, int] = {}

    def __call__(self, area: object) -> int:
        memo = self._memo
        shard = memo.get(area)
        if shard is None:
            shard = shard_for_area(area, self.num_shards)
            memo[area] = shard
        return shard

    def known_areas(self) -> Tuple[object, ...]:
        """Areas resolved so far, in first-seen order."""
        return tuple(self._memo)
