"""repro.service — the long-running paging-controller front-end.

ROADMAP item 1: an operational layer over the solver registry that
answers many concurrent per-area call-setup plan requests.  See
``docs/service.md`` for the executable handbook and
:mod:`repro.service.controller` for the design narrative.
"""

from __future__ import annotations

from .cache import (
    CacheKey,
    PlanCache,
    plan_cache_key,
    quantization_bound,
    quantize_profile,
)
from .controller import (
    TICKET_STATES,
    CachedPlan,
    PagingController,
    PlanRequest,
    PlanTicket,
    ServiceConfig,
    request_instance,
)
from .sharding import ShardMap, shard_assignments, shard_for_area, shard_loads
from .workload import (
    WorkloadConfig,
    build_requests,
    run_closed_loop,
    serve_bench,
)

__all__ = [
    "CacheKey",
    "CachedPlan",
    "PagingController",
    "PlanCache",
    "PlanRequest",
    "PlanTicket",
    "ServiceConfig",
    "ShardMap",
    "TICKET_STATES",
    "WorkloadConfig",
    "build_requests",
    "plan_cache_key",
    "quantization_bound",
    "quantize_profile",
    "request_instance",
    "run_closed_loop",
    "serve_bench",
    "shard_assignments",
    "shard_for_area",
    "shard_loads",
]
