"""The quantized LRU plan cache behind the paging-controller service.

Why a cache pays off at all is an empirical fact about cellular systems:
conditional location distributions *recur*.  Residence-time structure
(Koukoutsidis et al., PAPERS.md) means the registry keeps answering
call-setup requests for the same handful of per-area profiles, so a
controller that remembers the plan for a profile it has already solved
answers most traffic without touching a planner kernel.

Keys are built by :func:`plan_cache_key` from everything that determines
the plan: the probability profile (quantized to ``step``-wide buckets),
the matrix shape, the delay budget ``d``, the per-round cap ``b``, the
solver name, and any extra solver options.  ``step == 0`` disables
quantization — the key is the raw IEEE-754 byte image of the matrix, so a
hit is only possible for a *bit-identical* profile and the cached plan is
bit-identical to a fresh ``solve_instance`` call (the property suite in
``tests/service/test_controller.py`` asserts exactly that).

For ``step > 0`` a hit may serve a plan computed for a *neighbouring*
profile.  The error this introduces is bounded: two matrices that share a
key differ by at most ``step`` per entry, so any strategy's expected
paging differs by at most ``m * c * step`` per prefix-find term and
``m * c^2 * step`` overall, and chaining the optimality of the cached
plan on its own instance gives

    EP_B(plan_A)  <=  EP_B(plan_B) + 2 * m * c^2 * step

for exact solvers (:func:`quantization_bound` returns that right-hand
slack).  Heuristic plans are within-order-optimal rather than optimal, so
for them the bound is a validated property rather than a theorem — the
seeded property test asserts it over random request streams.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

#: Cache keys: (solver, shape, rounds, cap, options, quantized profile bytes).
CacheKey = Tuple[str, Tuple[int, int], int, Optional[int], Tuple[object, ...], bytes]


def quantize_profile(matrix: np.ndarray, step: float) -> bytes:
    """The byte image of ``matrix`` after snapping entries to ``step`` buckets.

    ``step == 0`` returns the exact float64 byte image (bit-identity
    regime); ``step > 0`` returns the int64 bucket indices
    ``rint(p / step)``, so any two profiles within ``step / 2`` of the
    same bucket centers collide.  Negative steps are rejected.
    """
    if step < 0.0:
        raise ValueError(f"quantization step must be >= 0, got {step}")
    stacked = np.asarray(matrix, dtype=np.float64)
    if step > 0.0:
        return np.rint(stacked / step).astype(np.int64).tobytes()
    return stacked.tobytes()


def plan_cache_key(
    matrix: np.ndarray,
    rounds: int,
    max_group_size: Optional[int],
    solver: str,
    step: float,
    options: Tuple[object, ...] = (),
) -> CacheKey:
    """Everything that determines a plan, hashable.

    Two requests get the same key exactly when the configured solver
    would be asked the same (quantized) question; the controller never
    compares matrices entry-wise on the hot path.
    """
    stacked = np.asarray(matrix, dtype=np.float64)
    if stacked.ndim != 2:
        raise ValueError(f"expected an (m, c) matrix, got shape {stacked.shape}")
    cap = None if max_group_size is None else int(max_group_size)
    return (
        solver,
        (int(stacked.shape[0]), int(stacked.shape[1])),
        int(rounds),
        cap,
        options,
        quantize_profile(stacked, step),
    )


def quantization_bound(devices: int, cells: int, step: float) -> float:
    """The expected-paging slack a ``step``-quantized cache hit may add.

    Derivation (exact solvers; see the module docstring): same-key
    matrices differ <= ``step`` per entry, each prefix sum by <=
    ``cells * step``, each prefix-find product of ``devices`` factors in
    [0, 1] by <= ``devices * cells * step``, and the Lemma 2.1 telescoped
    objective sums those over at most ``cells`` cells.  Transferring the
    cached plan's optimality across the two instances doubles it.
    """
    return 2.0 * float(devices) * float(cells) * float(cells) * float(step)


class PlanCache:
    """A bounded LRU map from :data:`CacheKey` to cached plans.

    Pure single-threaded bookkeeping — the controller owns one per shard,
    so no locking.  ``hits`` / ``misses`` / ``evictions`` are running
    totals for :meth:`repro.service.PagingController.stats`.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_entries")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[object]:
        """The cached plan for ``key`` (refreshing recency), else ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, plan: object) -> None:
        """Insert (or refresh) ``key``, evicting the least recent if full."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            entries[key] = plan
            return
        if len(entries) >= self.maxsize:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = plan

    def keys(self) -> Tuple[CacheKey, ...]:
        """Current keys, least recently used first."""
        return tuple(self._entries)

    def clear(self) -> None:
        """Drop every entry (invalidation; counters are preserved)."""
        self._entries.clear()

    def counters(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
