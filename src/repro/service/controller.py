"""The paging controller: shard + cache + batch in front of the registry.

This is the operational layer ROADMAP item 1 asks for, and the one the
jointly-optimal paging/registration literature (Hajek-Mitzel-Yang,
PAPERS.md) presumes exists: a long-running front-end that answers many
concurrent per-area call-setup plan requests from conditional location
distributions.  One :class:`PagingController` owns

* a deterministic area -> shard map (:mod:`repro.service.sharding`) so a
  request's cache and queue are a pure function of its location area;
* a per-shard quantized LRU plan cache (:mod:`repro.service.cache`) —
  the hot path answers a recurring profile without touching a planner;
* per-shard batch queues that pack compatible cache misses (same
  ``(devices, cells)`` shape, delay budget ``d``, and per-round cap
  ``b``) into one ``run_batch`` call against the PR 7 kernels, flushed
  when the accumulation window fills or its timeout elapses;
* admission control — a bounded per-shard pending queue; requests beyond
  it are shed immediately with a reason rather than queued forever.

The controller is deliberately single-threaded and synchronous: one
``submit`` per request, explicit ``poll``/``flush`` for time-driven
behaviour (tests inject a fake clock), and throughput comes from the
cache and the batched kernels, not concurrency — ``repro serve-bench``
measures >=10k requests/sec on one core this way.  Scaling across cores
is by running one controller per process and routing areas by the same
shard map, which is why the map must be process-independent.

Observability (all under :mod:`repro.obs`, inert without a tracer):
``service.requests`` / ``service.cache_hit`` / ``service.shed``
counters, a ``service.batch_size`` histogram, and one
``service.batch_flush`` span per kernel call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import Number, PagingInstance
from ..core.strategy import Strategy
from ..obs.instrument import count, observe, span
from ..solvers import get_solver
from .cache import CacheKey, PlanCache, plan_cache_key
from .sharding import ShardMap

#: Ticket states: answered from cache or a flush, queued, or refused.
TICKET_STATES: Tuple[str, ...] = ("ok", "pending", "shed", "failed")


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one :class:`PagingController`.

    ``quantization_step == 0`` (the default) caches only bit-identical
    profiles; a positive step trades bounded plan error (see
    :func:`repro.service.quantization_bound`) for a higher hit rate.
    """

    #: independent cache/queue partitions; areas map to them deterministically
    num_shards: int = 4
    #: LRU capacity per shard
    cache_size: int = 4096
    #: probability bucket width for cache keys (0 = exact float keys)
    quantization_step: float = 0.0
    #: registry name answering the requests (batch-capable names batch)
    solver: str = "heuristic-batch"
    #: planner backend forwarded to multi-backend solvers ("auto"/"numpy"/...)
    backend: str = "auto"
    #: cache-miss accumulation window: flush a batch group at this size
    batch_window: int = 64
    #: ... or when its oldest member has waited this long (seconds)
    batch_timeout_s: float = 0.005
    #: bounded queue: pending tickets per shard before shedding
    max_pending: int = 1024

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.quantization_step < 0.0:
            raise ValueError(
                f"quantization_step must be >= 0, got {self.quantization_step}"
            )
        if self.batch_window < 1:
            raise ValueError(f"batch_window must be >= 1, got {self.batch_window}")
        if self.batch_timeout_s < 0.0:
            raise ValueError(
                f"batch_timeout_s must be >= 0, got {self.batch_timeout_s}"
            )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")


@dataclass(frozen=True, eq=False)
class PlanRequest:
    """One call-setup plan request for a location area.

    ``matrix`` is the ``(devices, cells)`` float64 conditional location
    profile; rows must already be probability distributions — the
    controller does *not* renormalize (that would silently change the
    floats behind the bit-identity guarantee).  ``area`` is any hashable
    id; it selects the shard, nothing else.
    """

    area: object
    matrix: np.ndarray
    rounds: int
    max_group_size: Optional[int] = None


class CachedPlan:
    """The immutable payload a cache entry stores and tickets reference."""

    __slots__ = ("order", "group_sizes", "expected_paging", "backend", "_strategy")

    def __init__(
        self,
        order: Optional[Tuple[int, ...]],
        group_sizes: Optional[Tuple[int, ...]],
        expected_paging: Number,
        backend: Optional[str],
        strategy: Optional[Strategy] = None,
    ) -> None:
        self.order = order
        self.group_sizes = group_sizes
        self.expected_paging = expected_paging
        self.backend = backend
        self._strategy = strategy

    def strategy(self) -> Optional[Strategy]:
        """The plan as a :class:`~repro.core.strategy.Strategy` (lazy)."""
        if self._strategy is None and self.order is not None:
            self._strategy = Strategy.from_order_and_sizes(
                self.order, self.group_sizes or ()
            )
        return self._strategy


class PlanTicket:
    """What ``submit`` returns: done immediately on a hit or shed, filled
    in by the batch flush otherwise."""

    __slots__ = ("request", "shard", "status", "plan", "cache_hit", "reason")

    def __init__(
        self,
        request: PlanRequest,
        shard: int,
        status: str,
        plan: Optional[CachedPlan] = None,
        cache_hit: bool = False,
        reason: Optional[str] = None,
    ) -> None:
        self.request = request
        self.shard = shard
        self.status = status
        self.plan = plan
        self.cache_hit = cache_hit
        self.reason = reason

    @property
    def done(self) -> bool:
        return self.status != "pending"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanTicket(area={self.request.area!r}, shard={self.shard}, "
            f"status={self.status!r}, cache_hit={self.cache_hit})"
        )


class _QueueEntry:
    """One distinct pending cache key and every ticket waiting on it."""

    __slots__ = ("key", "matrix", "tickets")

    def __init__(self, key: CacheKey, matrix: np.ndarray, ticket: PlanTicket) -> None:
        self.key = key
        self.matrix = matrix
        self.tickets = [ticket]


class _BatchGroup:
    """Pending entries sharing one ``(shape, rounds, cap)`` compatibility
    key — exactly what one ``run_batch`` call can serve."""

    __slots__ = ("entries", "by_key", "created_s")

    def __init__(self, created_s: float) -> None:
        self.entries: List[_QueueEntry] = []
        self.by_key: Dict[CacheKey, _QueueEntry] = {}
        self.created_s = created_s


class _Shard:
    """One cache + queue partition; all state is owned by the controller
    thread."""

    __slots__ = ("index", "cache", "groups", "pending", "requests")

    def __init__(self, index: int, cache_size: int) -> None:
        self.index = index
        self.cache = PlanCache(cache_size)
        self.groups: Dict[Tuple[object, ...], _BatchGroup] = {}
        self.pending = 0
        self.requests = 0


def request_instance(request: PlanRequest) -> PagingInstance:
    """The canonical :class:`PagingInstance` the controller plans for.

    Built from the request's raw float rows without renormalization or
    re-validation, so a fresh ``solve_instance`` on it is bit-comparable
    to what the batched kernels computed from the same matrix.
    """
    rows = [tuple(float(p) for p in row) for row in np.asarray(request.matrix)]
    return PagingInstance(
        rows, request.rounds, allow_zero=True, validate=False
    )


class PagingController:
    """The long-running service front-end over the solver registry."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = ServiceConfig() if config is None else config
        self._clock = time.monotonic if clock is None else clock
        self._solver = get_solver(self.config.solver)
        self._solver_name = self.config.solver
        self._step = self.config.quantization_step
        self._window = self.config.batch_window
        self._timeout = self.config.batch_timeout_s
        self._max_pending = self.config.max_pending
        self._backend_options: Dict[str, object] = {}
        if "backend" in self._solver.spec.options:
            self._backend_options["backend"] = self.config.backend
        self._shard_map = ShardMap(self.config.num_shards)
        self._shards = [
            _Shard(index, self.config.cache_size)
            for index in range(self.config.num_shards)
        ]
        self._requests_total = 0
        self._hits_total = 0
        self._sheds_total = 0
        self._batches_total = 0
        self._planned_total = 0

    # -- the hot path --------------------------------------------------
    def submit(self, request: PlanRequest) -> PlanTicket:
        """Admit one request: answer from cache, enqueue, or shed."""
        self._requests_total += 1
        count("service.requests")
        shard = self._shards[self._shard_map(request.area)]
        shard.requests += 1
        key = plan_cache_key(
            request.matrix,
            request.rounds,
            request.max_group_size,
            self._solver_name,
            self._step,
        )
        plan = shard.cache.get(key)
        if plan is not None:
            self._hits_total += 1
            count("service.cache_hit")
            return PlanTicket(request, shard.index, "ok", plan, cache_hit=True)
        if shard.pending >= self._max_pending:
            self._sheds_total += 1
            count("service.shed")
            return PlanTicket(
                request,
                shard.index,
                "shed",
                reason=f"backpressure: shard {shard.index} has "
                f"{shard.pending} pending requests (max_pending="
                f"{self._max_pending})",
            )
        ticket = PlanTicket(request, shard.index, "pending")
        group_key = (key[1], key[2], key[3])  # (shape, rounds, cap)
        now = self._clock()
        group = shard.groups.get(group_key)
        if group is None:
            group = _BatchGroup(now)
            shard.groups[group_key] = group
        entry = group.by_key.get(key)
        if entry is None:
            entry = _QueueEntry(key, request.matrix, ticket)
            group.by_key[key] = entry
            group.entries.append(entry)
        else:
            entry.tickets.append(ticket)  # dedupe: ride the in-flight solve
        shard.pending += 1
        if len(group.entries) >= self._window or now - group.created_s >= self._timeout:
            self._flush_group(shard, group_key, group)
        return ticket

    # -- flushing ------------------------------------------------------
    def poll(self, now: Optional[float] = None) -> int:
        """Flush every batch group whose timeout has elapsed; returns how
        many groups flushed.  Call this from the serving loop between
        request bursts so stragglers never wait past the window timeout."""
        tick = self._clock() if now is None else now
        flushed = 0
        for shard in self._shards:
            for group_key in list(shard.groups):
                group = shard.groups[group_key]
                if tick - group.created_s >= self._timeout:
                    self._flush_group(shard, group_key, group)
                    flushed += 1
        return flushed

    def flush(self) -> int:
        """Flush every pending batch group regardless of age/size."""
        flushed = 0
        for shard in self._shards:
            for group_key in list(shard.groups):
                self._flush_group(shard, group_key, shard.groups[group_key])
                flushed += 1
        return flushed

    def run(self, requests: Sequence[PlanRequest]) -> List[PlanTicket]:
        """Submit a whole stream, final-flush, and return every ticket in
        request order (none left pending)."""
        tickets = [self.submit(request) for request in requests]
        self.flush()
        return tickets

    def _flush_group(
        self, shard: _Shard, group_key: Tuple[object, ...], group: _BatchGroup
    ) -> None:
        del shard.groups[group_key]
        entries = group.entries
        size = len(entries)
        shard.pending -= sum(len(entry.tickets) for entry in entries)
        self._batches_total += 1
        self._planned_total += size
        observe("service.batch_size", size)
        (_shape, rounds, cap) = group_key
        with span(
            "service.batch_flush",
            shard=shard.index,
            size=size,
            rounds=rounds,
        ):
            if self._solver.supports_batch:
                self._flush_batched(shard, entries, int(rounds), cap)
            else:
                self._flush_scalar(shard, entries, cap)

    def _flush_batched(
        self,
        shard: _Shard,
        entries: List[_QueueEntry],
        rounds: int,
        cap: Optional[int],
    ) -> None:
        stack = np.ascontiguousarray(
            np.stack([entry.matrix for entry in entries]), dtype=np.float64
        )
        options: Dict[str, object] = {"max_rounds": rounds}
        if cap is not None:
            options["max_group_size"] = cap
        options.update(self._backend_options)
        result = self._solver.run_batch(stack, **options)
        orders = result.orders
        sizes = result.group_sizes
        values = result.values
        feasible = result.feasible
        for index, entry in enumerate(entries):
            if not feasible[index]:
                self._fail_entry(entry, "no feasible cut sequence for this row")
                continue
            plan = CachedPlan(
                tuple(int(j) for j in orders[index]),
                tuple(int(s) for s in sizes[index]),
                float(values[index]),
                result.backend,
            )
            self._complete_entry(shard, entry, plan)

    def _flush_scalar(
        self, shard: _Shard, entries: List[_QueueEntry], cap: Optional[int]
    ) -> None:
        options: Dict[str, object] = {}
        if cap is not None and "max_group_size" in self._solver.spec.options:
            options["max_group_size"] = cap
        for entry in entries:
            instance = request_instance(entry.tickets[0].request)
            result = self._solver(instance, **options)
            extras = result.extras
            order = extras.get("order")
            group_sizes = extras.get("group_sizes")
            if group_sizes is None and result.strategy is not None:
                group_sizes = result.strategy.group_sizes()
            plan = CachedPlan(
                None if order is None else tuple(int(j) for j in order),
                None if group_sizes is None else tuple(int(s) for s in group_sizes),
                result.expected_paging,
                None,
                strategy=result.strategy,
            )
            self._complete_entry(shard, entry, plan)

    def _complete_entry(
        self, shard: _Shard, entry: _QueueEntry, plan: CachedPlan
    ) -> None:
        shard.cache.put(entry.key, plan)
        for ticket in entry.tickets:
            ticket.plan = plan
            ticket.status = "ok"

    def _fail_entry(self, entry: _QueueEntry, reason: str) -> None:
        for ticket in entry.tickets:
            ticket.status = "failed"
            ticket.reason = reason

    # -- introspection -------------------------------------------------
    @property
    def pending(self) -> int:
        """Tickets admitted but not yet answered (summed over shards)."""
        return sum(shard.pending for shard in self._shards)

    def shard_of(self, area: object) -> int:
        """Which shard serves ``area`` (same map as ``submit``)."""
        return self._shard_map(area)

    def invalidate(self) -> None:
        """Drop every cached plan (e.g. after a solver/config change
        upstream); pending queues are untouched."""
        for shard in self._shards:
            shard.cache.clear()

    def stats(self) -> Dict[str, object]:
        """A point-in-time counter snapshot (schema ``repro-service/1``)."""
        cache_totals = {"size": 0, "hits": 0, "misses": 0, "evictions": 0}
        for shard in self._shards:
            for name, value in shard.cache.counters().items():
                cache_totals[name] += value
        requests = self._requests_total
        hit_rate = self._hits_total / requests if requests else 0.0
        batches = self._batches_total
        mean_batch = self._planned_total / batches if batches else 0.0
        return {
            "schema": "repro-service/1",
            "solver": self._solver_name,
            "num_shards": self.config.num_shards,
            "quantization_step": self._step,
            "requests": requests,
            "cache_hits": self._hits_total,
            "hit_rate": hit_rate,
            "sheds": self._sheds_total,
            "batches": batches,
            "planned": self._planned_total,
            "mean_batch_size": mean_batch,
            "pending": self.pending,
            "cache": cache_totals,
            "shard_requests": [shard.requests for shard in self._shards],
        }
