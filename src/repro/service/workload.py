"""Synthetic closed-loop workloads for benchmarking the paging controller.

The workload models what makes the service layer worthwhile: per-area
conditional location profiles *recur* (residence-time structure,
Koukoutsidis et al. in PAPERS.md).  Each area owns a small pool of
distinct profiles; a request picks an area uniformly and, with
probability ``hot_fraction``, re-asks one of that area's pooled profiles
(a potential cache hit), otherwise a fresh never-seen profile (a forced
miss that exercises the batch path).  Everything is driven by one seeded
generator, so a workload is a pure function of its config — bench rows
and the property tests replay identical streams.

``run_closed_loop`` is the measurement harness: submit the stream
sequentially (closed loop — the next request is issued only after the
previous ``submit`` returned), ``poll`` periodically so timed-out batch
groups flush, and final-``flush`` before stopping the clock.  Metrics
are per-pass deltas of the controller's cumulative counters, so a warm
pass over an already-warmed controller reports its own hit rate, not a
mixture.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from .controller import PagingController, PlanRequest, ServiceConfig


@dataclass(frozen=True)
class WorkloadConfig:
    """A reproducible synthetic request stream."""

    #: total requests in the stream
    requests: int = 20000
    #: distinct location areas (sharded deterministically)
    areas: int = 64
    #: devices per conference call (matrix rows)
    devices: int = 3
    #: cells per location area (matrix columns)
    cells: int = 40
    #: delay budget d (paging rounds)
    rounds: int = 3
    #: recurring profiles per area (the hot pool)
    profiles_per_area: int = 8
    #: probability a request re-asks a pooled profile
    hot_fraction: float = 0.97
    #: optional per-round bandwidth cap b
    max_group_size: Optional[int] = None
    #: seed for the stream (areas, pools, and choices)
    seed: int = 20060

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.areas < 1:
            raise ValueError(f"areas must be >= 1, got {self.areas}")
        if self.devices < 1 or self.cells < 1 or self.rounds < 1:
            raise ValueError("devices, cells, and rounds must all be >= 1")
        if self.profiles_per_area < 1:
            raise ValueError(
                f"profiles_per_area must be >= 1, got {self.profiles_per_area}"
            )
        if self.hot_fraction < 0.0 or self.hot_fraction > 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )


def _random_profile(rng: np.random.Generator, devices: int, cells: int) -> np.ndarray:
    """One (devices, cells) matrix with probability-distribution rows."""
    matrix = rng.random((devices, cells))
    matrix /= matrix.sum(axis=1, keepdims=True)
    return np.ascontiguousarray(matrix)


def build_requests(config: WorkloadConfig) -> List[PlanRequest]:
    """Materialize the request stream for ``config`` (deterministic)."""
    rng = np.random.default_rng(config.seed)
    pools = [
        [
            _random_profile(rng, config.devices, config.cells)
            for _ in range(config.profiles_per_area)
        ]
        for _ in range(config.areas)
    ]
    requests: List[PlanRequest] = []
    for _ in range(config.requests):
        area = int(rng.integers(config.areas))
        if rng.random() < config.hot_fraction:
            matrix = pools[area][int(rng.integers(config.profiles_per_area))]
        else:
            matrix = _random_profile(rng, config.devices, config.cells)
        requests.append(
            PlanRequest(
                area=f"area-{area}",
                matrix=matrix,
                rounds=config.rounds,
                max_group_size=config.max_group_size,
            )
        )
    return requests


def run_closed_loop(
    controller: PagingController,
    requests: List[PlanRequest],
    *,
    poll_interval: int = 256,
) -> Dict[str, object]:
    """Drive one pass of ``requests`` through ``controller``, timed.

    Returns per-pass metrics (counter deltas, so repeated passes over one
    controller each report their own hit rate).
    """
    before = controller.stats()
    start = time.perf_counter()
    for index, request in enumerate(requests):
        controller.submit(request)
        if poll_interval and (index + 1) % poll_interval == 0:
            controller.poll()
    controller.flush()
    elapsed = time.perf_counter() - start
    after = controller.stats()
    served = int(after["requests"]) - int(before["requests"])
    hits = int(after["cache_hits"]) - int(before["cache_hits"])
    sheds = int(after["sheds"]) - int(before["sheds"])
    batches = int(after["batches"]) - int(before["batches"])
    planned = int(after["planned"]) - int(before["planned"])
    return {
        "requests": served,
        "elapsed_s": elapsed,
        "throughput_rps": served / elapsed if elapsed > 0 else 0.0,
        "cache_hits": hits,
        "hit_rate": hits / served if served else 0.0,
        "sheds": sheds,
        "batches": batches,
        "planned": planned,
        "mean_batch_size": planned / batches if batches else 0.0,
    }


def serve_bench(
    service_config: Optional[ServiceConfig] = None,
    workload_config: Optional[WorkloadConfig] = None,
) -> Dict[str, object]:
    """The ``repro serve-bench`` payload: cold pass, then warm pass.

    The *cold* pass streams the workload through a fresh controller —
    its hit rate is what profile recurrence alone buys.  The *warm* pass
    replays the same stream against the now-populated caches — the
    steady-state regime the >=10k req/s target speaks about.
    """
    workload = WorkloadConfig() if workload_config is None else workload_config
    config = ServiceConfig() if service_config is None else service_config
    requests = build_requests(workload)
    controller = PagingController(config)
    cold = run_closed_loop(controller, requests)
    warm = run_closed_loop(controller, requests)
    return {
        "schema": "repro-serve-bench/1",
        "workload": asdict(workload),
        "service": asdict(config),
        "cold": cold,
        "warm": warm,
        "stats": controller.stats(),
    }
