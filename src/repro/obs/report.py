"""Turn a ``trace.jsonl`` file into a human-readable performance report.

``repro trace <run.jsonl>`` renders per-phase span timing (count / total /
mean / max per span name), counters, and histograms — in particular the
rounds-to-find distribution that tail-sensitive paging analyses need
(mean EP alone hides exactly the tail a delay constraint is about).

The module is also a library: :func:`summarize` aggregates any iterable of
``repro-trace/1`` events, :func:`render` formats the summary, and
:func:`to_json` is the structured equivalent for downstream tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .events import SCHEMA


@dataclass
class SpanStats:
    """Aggregated timings of every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        self.min_s = min(self.min_s, elapsed_s)
        self.max_s = max(self.max_s, elapsed_s)


@dataclass
class TraceSummary:
    """Everything :func:`summarize` extracts from one trace."""

    schema: Optional[str] = None
    created: Optional[str] = None
    events: int = 0
    spans: Dict[str, SpanStats] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Dict[int, int]] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)


def load_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL trace file into a list of event dictionaries."""
    events: List[Dict[str, object]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({error})")
            if not isinstance(payload, dict):
                raise ValueError(f"{path}:{lineno}: event is not a JSON object")
            events.append(payload)
    return events


def summarize(events: Iterable[Dict[str, object]]) -> TraceSummary:
    """Aggregate events into per-name span stats, counters, histograms."""
    summary = TraceSummary()
    for event in events:
        summary.events += 1
        kind = event.get("event")
        if kind == "meta":
            summary.schema = str(event.get("schema"))
            created = event.get("created")
            summary.created = str(created) if created is not None else None
            if summary.schema != SCHEMA:
                summary.problems.append(
                    f"unexpected schema {summary.schema!r} (reader speaks {SCHEMA!r})"
                )
        elif kind == "span":
            name = str(event.get("name", "<unnamed>"))
            stats = summary.spans.setdefault(name, SpanStats(name))
            try:
                stats.add(float(event.get("elapsed_s", 0.0)))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                summary.problems.append(f"span {name!r}: bad elapsed_s")
        elif kind == "counter":
            name = str(event.get("name", "<unnamed>"))
            try:
                summary.counters[name] = summary.counters.get(name, 0) + int(
                    event.get("value", 0)  # type: ignore[arg-type]
                )
            except (TypeError, ValueError):
                summary.problems.append(f"counter {name!r}: bad value")
        elif kind == "histogram":
            name = str(event.get("name", "<unnamed>"))
            counts = event.get("counts")
            if not isinstance(counts, dict):
                summary.problems.append(f"histogram {name!r}: counts missing")
                continue
            bucket = summary.histograms.setdefault(name, {})
            for value, count in counts.items():
                try:
                    key = int(value)
                    bucket[key] = bucket.get(key, 0) + int(count)
                except (TypeError, ValueError):
                    summary.problems.append(f"histogram {name!r}: bad bucket")
        else:
            summary.problems.append(f"unknown event kind {kind!r}")
    return summary


def _histogram_line(counts: Dict[int, int], width: int = 24) -> List[str]:
    """Render one histogram as aligned ``value count bar`` lines."""
    total = sum(counts.values())
    peak = max(counts.values())
    lines = []
    for value in sorted(counts):
        count = counts[value]
        bar = "#" * max(1, round(width * count / peak))
        share = 100.0 * count / total
        lines.append(f"    {value:>6}  {count:>10}  {share:5.1f}%  {bar}")
    mean = sum(v * n for v, n in counts.items()) / total
    lines.append(f"    mean {mean:.3f} over {total} observations")
    return lines


def render(summary: TraceSummary) -> str:
    """Format a :class:`TraceSummary` as the ``repro trace`` report."""
    lines: List[str] = []
    header = f"trace summary ({summary.events} events"
    if summary.created:
        header += f", created {summary.created}"
    header += ")"
    lines.append(header)
    if summary.spans:
        lines.append("")
        lines.append(
            f"  {'span':<28} {'count':>7} {'total_s':>10} "
            f"{'mean_s':>10} {'max_s':>10}"
        )
        for name in sorted(
            summary.spans, key=lambda n: summary.spans[n].total_s, reverse=True
        ):
            stats = summary.spans[name]
            lines.append(
                f"  {name:<28} {stats.count:>7} {stats.total_s:>10.4f} "
                f"{stats.mean_s:>10.6f} {stats.max_s:>10.6f}"
            )
    if summary.counters:
        lines.append("")
        lines.append("  counters:")
        for name in sorted(summary.counters):
            lines.append(f"    {name:<30} {summary.counters[name]:>12}")
    for name in sorted(summary.histograms):
        lines.append("")
        lines.append(f"  histogram {name}:")
        lines.extend(_histogram_line(summary.histograms[name]))
    for problem in summary.problems:
        lines.append(f"  warning: {problem}")
    if not (summary.spans or summary.counters or summary.histograms):
        lines.append("  (no span/counter/histogram events)")
    return "\n".join(lines)


def to_json(summary: TraceSummary) -> Dict[str, object]:
    """The structured form of the report (``repro trace --json``)."""
    return {
        "schema": summary.schema,
        "created": summary.created,
        "events": summary.events,
        "spans": {
            name: {
                "count": stats.count,
                "total_s": stats.total_s,
                "mean_s": stats.mean_s,
                "min_s": stats.min_s,
                "max_s": stats.max_s,
            }
            for name, stats in summary.spans.items()
        },
        "counters": dict(summary.counters),
        "histograms": {
            name: {str(value): count for value, count in sorted(counts.items())}
            for name, counts in summary.histograms.items()
        },
        "problems": list(summary.problems),
    }


# ---------------------------------------------------------------------------
# CLI (`repro trace`)
# ---------------------------------------------------------------------------

def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro trace`` options to an argparse parser."""
    parser.add_argument("trace_file", help="path to a trace.jsonl file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the structured summary instead of the text report",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute ``repro trace`` from parsed CLI arguments."""
    try:
        events = load_events(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"cannot read {args.trace_file}: {error}", file=sys.stderr)
        return 2
    summary = summarize(events)
    try:
        if args.json:
            print(json.dumps(to_json(summary), indent=2))
        else:
            print(render(summary))
    except BrokenPipeError:  # e.g. `repro trace run.jsonl | head`
        sys.stderr.close()  # suppress the interpreter's shutdown warning
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point: ``python -m repro.obs.report``."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="summarize a trace.jsonl produced by `repro --trace`",
    )
    add_trace_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
