"""Event primitives and the thread-local :class:`Tracer`.

The observability layer is zero-dependency and deliberately small: three
event kinds cover what a paging system is judged on — *where the time goes*
(spans), *how much work happened* (counters), and *how outcomes distribute*
(histograms; production paging lives and dies on the distribution of
rounds-to-find and cells paged, not just the mean EP of Lemma 2.1).

Event schema (``repro-trace/1``) — one JSON object per event::

    {"event": "meta",      "schema": "repro-trace/1", "created": "..."}
    {"event": "span",      "name": "core.heuristic", "elapsed_s": 0.018,
     "attrs": {"cells": 250, "devices": 4, "rounds": 5}}
    {"event": "counter",   "name": "batch.trials", "value": 100000}
    {"event": "histogram", "name": "cellnet.rounds_to_find",
     "counts": {"1": 52, "2": 30, "3": 18}}

Spans are emitted as they finish; counters and histograms are aggregated
inside the tracer and emitted by :meth:`Tracer.flush` (so a 100k-trial
Monte-Carlo run writes one histogram event, not 100k).

A :class:`Tracer` wraps a sink (:mod:`repro.obs.sinks`).  The *active*
tracer is thread-local; instrumented code asks :func:`current_tracer` and
checks ``tracer.enabled`` before building any event, so the default
:class:`~repro.obs.sinks.NullSink` configuration costs one attribute lookup
per instrumentation site (measured ≤ 5% on the ``repro bench`` scenarios,
see docs/performance.md).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .sinks import NullSink, Sink

SCHEMA = "repro-trace/1"


class _Span:
    """A running span; created by :meth:`Tracer.span`, emits on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._tracer.emit(
            {
                "event": "span",
                "name": self.name,
                "elapsed_s": elapsed,
                "attrs": self.attrs,
            }
        )


class _NullContext:
    """Reentrant, reusable no-op context manager (the disabled-span path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects events for one sink; aggregate state lives here.

    ``enabled`` mirrors the sink's flag: a tracer over a
    :class:`~repro.obs.sinks.NullSink` reports ``False`` and every method
    short-circuits, which is what keeps default-mode overhead negligible.
    """

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self.sink: Sink = NullSink() if sink is None else sink
        self.enabled: bool = self.sink.enabled
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Dict[int, int]] = {}
        if self.enabled:
            self.sink.write(
                {
                    "event": "meta",
                    "schema": SCHEMA,
                    "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                }
            )

    # -- primitives ----------------------------------------------------
    def span(self, name: str, **attrs: object) -> object:
        """A context manager timing one phase; no-op when disabled."""
        if not self.enabled:
            return NULL_CONTEXT
        return _Span(self, name, attrs)

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the named counter."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def observe(self, name: str, value: int, count: int = 1) -> None:
        """Add ``count`` occurrences of integer ``value`` to a histogram."""
        if not self.enabled:
            return
        bucket = self._histograms.setdefault(name, {})
        key = int(value)
        bucket[key] = bucket.get(key, 0) + int(count)

    def emit(self, event: Dict[str, object]) -> None:
        """Write one finished event straight to the sink."""
        if self.enabled:
            self.sink.write(event)

    # -- merging -------------------------------------------------------
    def absorb(self, event: Dict[str, object]) -> None:
        """Fold one event from another trace into this tracer.

        Spans pass through; counters and histograms merge into this
        tracer's aggregates; ``meta`` headers are dropped.  This is how the
        parallel experiment runner folds per-worker trace files back into
        the parent's sink.
        """
        if not self.enabled:
            return
        kind = event.get("event")
        if kind == "counter":
            self.count(str(event.get("name")), int(event.get("value", 0)))
        elif kind == "histogram":
            counts = event.get("counts")
            if isinstance(counts, dict):
                for value, count in counts.items():
                    self.observe(str(event.get("name")), int(value), int(count))
        elif kind == "span":
            self.sink.write(event)

    # -- lifecycle -----------------------------------------------------
    def flush(self) -> None:
        """Emit aggregated counters/histograms and flush the sink."""
        if not self.enabled:
            return
        for name in sorted(self._counters):
            self.sink.write(
                {"event": "counter", "name": name, "value": self._counters[name]}
            )
        self._counters.clear()
        for name in sorted(self._histograms):
            counts = self._histograms[name]
            self.sink.write(
                {
                    "event": "histogram",
                    "name": name,
                    "counts": {str(k): counts[k] for k in sorted(counts)},
                }
            )
        self._histograms.clear()
        self.sink.flush()

    def close(self) -> None:
        """Flush aggregates and close the sink."""
        self.flush()
        self.sink.close()


#: The process-wide fallback: tracing disabled.
_NULL_TRACER = Tracer(NullSink())

_ACTIVE = threading.local()


def current_tracer() -> Tracer:
    """The thread's active tracer (a disabled one when none is installed)."""
    return getattr(_ACTIVE, "tracer", _NULL_TRACER)


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` as this thread's active tracer (None resets)."""
    if tracer is None:
        if hasattr(_ACTIVE, "tracer"):
            del _ACTIVE.tracer
    else:
        _ACTIVE.tracer = tracer


@contextmanager
def use_tracer(tracer: Tracer, *, close: bool = True) -> Iterator[Tracer]:
    """Make ``tracer`` active for the block; restore (and close) after."""
    previous = getattr(_ACTIVE, "tracer", None)
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        if previous is None:
            del _ACTIVE.tracer
        else:
            _ACTIVE.tracer = previous
        if close:
            tracer.close()
