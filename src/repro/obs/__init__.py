"""repro.obs — the zero-dependency observability layer.

Structured events (spans, counters, histograms), pluggable sinks, and a
trace-file report, threaded through the planners, batch kernels, experiment
runner, and cellular simulator.  See docs/observability.md for the event
schema, sink selection, and the measured (≤ 5%) null-sink overhead.

Typical use::

    from repro.obs import tracing

    with tracing("run.jsonl"):
        run_experiments(["E2", "E13"])
    # then:  repro trace run.jsonl

or from the shell: ``repro --trace run.jsonl experiments E2 E13``.
"""

from __future__ import annotations

from .events import (
    SCHEMA,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)
from .instrument import count, observe, span, traced, tracing
from .report import TraceSummary, load_events, render, summarize, to_json
from .sinks import JsonlSink, MemorySink, NullSink, Sink

__all__ = [
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "SCHEMA",
    "Sink",
    "TraceSummary",
    "Tracer",
    "count",
    "current_tracer",
    "load_events",
    "observe",
    "render",
    "set_tracer",
    "span",
    "summarize",
    "to_json",
    "traced",
    "tracing",
    "use_tracer",
]
