"""Sinks: where trace events go.

A sink receives finished event dictionaries (the ``repro-trace/1`` schema of
:mod:`repro.obs.events`) and persists, buffers, or discards them:

* :class:`NullSink` — the default; drops everything.  Instrumented code pays
  only an ``enabled`` check, which keeps the measured overhead of tracing
  below the 5% budget recorded in docs/performance.md.
* :class:`MemorySink` — buffers events in a list; what the test suite and
  programmatic consumers use.
* :class:`JsonlSink` — appends one JSON object per line to a file (the
  ``trace.jsonl`` format the CLI's ``--trace`` flag and ``repro trace``
  read).  Worker processes of the parallel experiment runner each write
  their own file, merged on collect (:mod:`repro.experiments.runner`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Union


class Sink:
    """Base class.  Subclasses override :meth:`write` (and maybe more)."""

    #: Tracers consult this once per instrumentation site: ``False`` means
    #: events are never built, so the null path stays allocation-free.
    enabled: bool = True

    def write(self, event: Dict[str, object]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events towards durable storage (no-op by default)."""

    def close(self) -> None:
        """Release resources; the sink must not be written to afterwards."""


class NullSink(Sink):
    """Discards every event; the zero-overhead default."""

    enabled = False

    def write(self, event: Dict[str, object]) -> None:  # pragma: no cover
        pass


class MemorySink(Sink):
    """Buffers events in memory (``sink.events``)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def write(self, event: Dict[str, object]) -> None:
        self.events.append(event)


class JsonlSink(Sink):
    """Appends events as JSON Lines to ``path`` (created eagerly).

    The file handle is opened on construction so a traced run that emits no
    events still leaves an (empty) trace file — an empty trace is a
    statement, a missing one is a configuration error.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = self.path.open("w")

    def write(self, event: Dict[str, object]) -> None:
        if self._handle is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        self._handle.write(json.dumps(event, default=str) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
