"""Instrumentation helpers: the API the rest of the package calls.

Three module-level functions mirror the :class:`~repro.obs.events.Tracer`
primitives against whatever tracer is currently active, and a decorator
wraps whole functions:

* :func:`span` — ``with span("core.dp", cells=c): ...``
* :func:`count` / :func:`observe` — counters and integer histograms
* :func:`traced` — ``@traced("core.exact")`` decorator
* :func:`tracing` — install a tracer for a block:
  ``with tracing("run.jsonl"): ...`` (path → JSONL, ``None`` → in-memory)

All of them resolve :func:`~repro.obs.events.current_tracer` at call time
and short-circuit when it is disabled, so instrumented hot paths cost one
thread-local lookup per call in the default (null sink) configuration.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Callable, Optional, TypeVar, Union

from .events import NULL_CONTEXT, Tracer, current_tracer, use_tracer
from .sinks import JsonlSink, MemorySink, Sink

_F = TypeVar("_F", bound=Callable[..., object])


def span(name: str, **attrs: object) -> object:
    """Context manager timing one phase under the active tracer."""
    tracer = current_tracer()
    if not tracer.enabled:
        return NULL_CONTEXT
    return tracer.span(name, **attrs)


def count(name: str, value: int = 1) -> None:
    """Add ``value`` to the named counter of the active tracer."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count(name, value)


def observe(name: str, value: int, n: int = 1) -> None:
    """Record ``n`` occurrences of ``value`` in the named histogram."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.observe(name, value, n)


def traced(name: str, **attrs: object) -> Callable[[_F], _F]:
    """Decorator: run the function inside a :func:`span` of ``name``.

    The no-trace fast path adds one thread-local lookup and one branch —
    cheap enough for per-call planner instrumentation, though hand-placed
    :func:`span` blocks are preferred where per-instance attributes
    (cells, devices, trials) are worth recording.
    """

    def decorate(function: _F) -> _F:
        @functools.wraps(function)
        def wrapper(*args: object, **kwargs: object) -> object:
            tracer = current_tracer()
            if not tracer.enabled:
                return function(*args, **kwargs)
            with tracer.span(name, **attrs):
                return function(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def tracing(
    target: Optional[Union[str, Path, Sink]] = None, *, close: bool = True
) -> object:
    """Activate tracing for a block: ``with tracing("out.jsonl") as t:``.

    ``target`` may be a path (JSONL sink), an existing
    :class:`~repro.obs.sinks.Sink`, or ``None`` for an in-memory sink
    (inspect ``t.sink.events`` afterwards — pass ``close=False`` if you
    read them after the block).
    """
    if target is None:
        sink: Sink = MemorySink()
    elif isinstance(target, Sink):
        sink = target
    else:
        sink = JsonlSink(target)
    return use_tracer(Tracer(sink), close=close)
