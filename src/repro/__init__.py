"""repro — a reproduction of Bar-Noy & Malewicz (PODC 2002).

*Establishing wireless conference calls under delay constraints.*

The package implements the Conference Call paging problem end to end: the
probabilistic location model, the e/(e-1)-approximation heuristic (Fig. 1 of
the paper), exact solvers, the NP-hardness reduction gadgets, the Section 5
extensions (adaptive, Yellow Pages, Signature, bandwidth caps), synthetic
location distributions, and a cellular-network simulator that recreates the
motivating GSM/IS-41 setting.

Quickstart::

    import numpy as np
    from repro import PagingInstance, conference_call_heuristic, expected_paging

    rng = np.random.default_rng(7)
    matrix = rng.dirichlet(np.ones(16), size=3)       # 3 devices, 16 cells
    instance = PagingInstance.from_array(matrix, max_rounds=4)
    plan = conference_call_heuristic(instance)
    print(plan.group_sizes, float(plan.expected_paging))
"""

from __future__ import annotations

from .core import (
    APPROXIMATION_FACTOR,
    PagingInstance,
    Strategy,
    adaptive_expected_paging,
    adaptive_search,
    conference_call_heuristic,
    expected_paging,
    expected_paging_float,
    optimal_single_user,
    optimal_strategy,
    optimize_over_order,
    signature_heuristic,
    two_device_two_round_heuristic,
    yellow_pages_greedy,
)
from .errors import (
    InfeasibleError,
    InvalidInstanceError,
    InvalidStrategyError,
    ReproError,
    SimulationError,
    SolverLimitError,
)
from .solvers import (
    SolverResult,
    UnknownSolverError,
    get_solver,
    list_solvers,
    solve_instance,
)

__version__ = "1.0.0"

__all__ = [
    "APPROXIMATION_FACTOR",
    "InfeasibleError",
    "InvalidInstanceError",
    "InvalidStrategyError",
    "PagingInstance",
    "ReproError",
    "SimulationError",
    "SolverLimitError",
    "SolverResult",
    "Strategy",
    "UnknownSolverError",
    "adaptive_expected_paging",
    "adaptive_search",
    "conference_call_heuristic",
    "expected_paging",
    "expected_paging_float",
    "get_solver",
    "list_solvers",
    "optimal_single_user",
    "optimal_strategy",
    "optimize_over_order",
    "signature_heuristic",
    "solve_instance",
    "two_device_two_round_heuristic",
    "yellow_pages_greedy",
    "__version__",
]
