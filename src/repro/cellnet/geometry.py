"""Hexagonal cell geometry.

Cellular coverage is classically modeled as a hexagonal tiling: each base
station's range is a hexagon and every interior cell has six neighbors.  We
use axial coordinates ``(q, r)`` (pointy-top orientation); the standard cube
distance gives the hop metric used by location-area construction and the
distance-based reporting policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

#: Axial-coordinate offsets of the six hexagonal neighbors.
HEX_DIRECTIONS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)


@dataclass(frozen=True, order=True)
class Hex:
    """An axial-coordinate hexagonal cell position."""

    q: int
    r: int

    @property
    def s(self) -> int:
        """The implicit third cube coordinate (``q + r + s = 0``)."""
        return -self.q - self.r

    def neighbors(self) -> Tuple["Hex", ...]:
        """The six adjacent positions."""
        return tuple(Hex(self.q + dq, self.r + dr) for dq, dr in HEX_DIRECTIONS)

    def distance(self, other: "Hex") -> int:
        """Hex (cube) distance: the minimum number of neighbor hops."""
        return max(
            abs(self.q - other.q), abs(self.r - other.r), abs(self.s - other.s)
        )

    def to_cartesian(self, size: float = 1.0) -> Tuple[float, float]:
        """Center of the hexagon in the plane (pointy-top layout)."""
        x = size * (3.0**0.5) * (self.q + self.r / 2.0)
        y = size * 1.5 * self.r
        return x, y


def hex_disk(radius: int) -> List[Hex]:
    """All hexes within ``radius`` hops of the origin (a disk-shaped area).

    A disk of radius ``R`` has ``1 + 3 R (R + 1)`` cells — the usual shape of
    a planned coverage area around a central site.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    cells = []
    for q in range(-radius, radius + 1):
        for r in range(max(-radius, -q - radius), min(radius, -q + radius) + 1):
            cells.append(Hex(q, r))
    return sorted(cells)


def hex_rectangle(rows: int, cols: int) -> List[Hex]:
    """A ``rows x cols`` parallelogram of hexes (row-major order)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    cells = []
    for row in range(rows):
        for col in range(cols):
            # Offset rows so the patch looks rectangular rather than sheared.
            cells.append(Hex(col - row // 2, row))
    return cells


def ring(center: Hex, radius: int) -> Iterator[Hex]:
    """The hexes exactly ``radius`` hops from ``center``."""
    if radius == 0:
        yield center
        return
    position = Hex(center.q + HEX_DIRECTIONS[4][0] * radius, center.r + HEX_DIRECTIONS[4][1] * radius)
    for direction in range(6):
        for _ in range(radius):
            yield position
            dq, dr = HEX_DIRECTIONS[direction]
            position = Hex(position.q + dq, position.r + dr)
