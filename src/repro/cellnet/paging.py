"""The paging engine: executing search strategies over real cells.

Bridges the optimizer (which works on a contiguous sub-instance) and the
simulated network (global cell ids, true device positions).  A search:

1. restricts each wanted device's prior to the candidate cells and
   renormalizes,
2. plans a strategy — blanket (the GSM baseline), the paper's heuristic, or
   the adaptive replanner,
3. pages group by group against the true locations, counting every cell
   paged, and
4. falls back to sweeping the rest of the network if a device was outside
   the candidate set (possible under lazy reporting policies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..core.adaptive import adaptive_search
from ..core.instance import PagingInstance
from ..core.strategy import Strategy
from ..errors import SimulationError
from ..solvers import get_solver


@dataclass(frozen=True)
class PagingOutcome:
    """The result of one search operation.

    The fault-free pagers always locate everyone, so ``failed_devices`` is
    empty and ``retries_used`` zero for them; the fault-aware
    :class:`~repro.cellnet.faults.ResilientPager` fills both when a search
    degrades into a partial conference (docs/robustness.md).
    """

    found_cells: Dict[int, int]  # device -> cell where it answered
    cells_paged: int
    rounds_used: int
    used_fallback: bool
    #: local participant indices the search gave up on (degraded call)
    failed_devices: Tuple[int, ...] = ()
    #: re-page retry rounds spent by the recovery policy
    retries_used: int = 0

    @property
    def complete(self) -> bool:
        """True when every wanted device was located."""
        return not self.failed_devices


def build_sub_instance(
    priors: Sequence[np.ndarray],
    candidate_cells: Sequence[int],
    max_rounds: int,
    *,
    floor: float = 1e-12,
) -> Tuple[PagingInstance, Tuple[int, ...]]:
    """Restrict per-device priors to the candidate cells and renormalize.

    Returns the sub-instance plus the map from sub-index to global cell id.
    ``floor`` keeps renormalized rows strictly positive so the optimizer's
    model assumptions hold even when the prior gives a candidate cell zero
    mass.
    """
    cells = tuple(int(cell) for cell in candidate_cells)
    if not cells:
        raise SimulationError("cannot page an empty candidate set")
    rows = []
    for prior in priors:
        restricted = np.array([max(float(prior[cell]), floor) for cell in cells])
        rows.append(restricted / restricted.sum())
    d = max(1, min(int(max_rounds), len(cells)))
    return PagingInstance(rows, d, allow_zero=True), cells


def page_with_strategy(
    strategy: Strategy,
    cell_map: Sequence[int],
    true_cells: Sequence[int],
) -> Tuple[Dict[int, int], int, int, bool]:
    """Execute an oblivious strategy; returns (found, paged, rounds, complete)."""
    remaining = {device: cell for device, cell in enumerate(true_cells)}
    found: Dict[int, int] = {}
    paged = 0
    rounds = 0
    for group in strategy.groups:
        rounds += 1
        paged += len(group)
        global_group = {cell_map[j] for j in group}
        for device in list(remaining):
            if remaining[device] in global_group:
                found[device] = remaining.pop(device)
        if not remaining:
            return found, paged, rounds, True
    return found, paged, rounds, False


class BlanketPager:
    """The GSM MAP / IS-41 baseline: page every candidate cell at once."""

    name = "blanket"

    def search(
        self,
        priors: Sequence[np.ndarray],
        candidate_cells: Sequence[int],
        true_cells: Sequence[int],
        max_rounds: int,
        num_cells: int,
    ) -> PagingOutcome:
        cells = tuple(candidate_cells)
        strategy = Strategy.single_round(len(cells))
        found, paged, rounds, complete = page_with_strategy(
            strategy, cells, true_cells
        )
        if complete:
            return PagingOutcome(found, paged, rounds, used_fallback=False)
        return _fallback(found, paged, rounds, cells, true_cells, num_cells)


class HeuristicPager:
    """The paper's e/(e-1) strategy within the delay budget.

    The planner is looked up in the solver registry (``repro.solvers``) so
    deployments can swap policies by name without touching the pager.
    """

    name = "heuristic"
    planner_solver = "heuristic"

    def __init__(self, planner_solver: str = "heuristic") -> None:
        self.planner_solver = planner_solver
        self._planner = get_solver(planner_solver)

    def search(
        self,
        priors: Sequence[np.ndarray],
        candidate_cells: Sequence[int],
        true_cells: Sequence[int],
        max_rounds: int,
        num_cells: int,
    ) -> PagingOutcome:
        instance, cells = build_sub_instance(priors, candidate_cells, max_rounds)
        plan = self._planner(instance)
        found, paged, rounds, complete = page_with_strategy(
            plan.strategy, cells, true_cells
        )
        if complete:
            return PagingOutcome(found, paged, rounds, used_fallback=False)
        return _fallback(found, paged, rounds, cells, true_cells, num_cells)

    def search_many(
        self,
        priors_batch: Sequence[Sequence[np.ndarray]],
        candidate_cells: Sequence[int],
        true_cells_batch: Sequence[Sequence[int]],
        max_rounds: int,
        num_cells: int,
    ) -> List[PagingOutcome]:
        """Page many concurrent calls over one candidate set.

        The paging-controller shape: one location area, a stack of calls,
        one plan per call.  When the configured planner has a batched
        entry point (``supports_batch``, e.g. the ``"heuristic-batch"``
        registry entry), all same-device-count sub-instances are planned
        in one kernel call; otherwise this degrades to a per-call loop
        with identical outcomes — every plan is bit-identical to what
        :meth:`search` would compute.
        """
        instances = []
        cell_maps = []
        for priors in priors_batch:
            instance, cells = build_sub_instance(
                priors, candidate_cells, max_rounds
            )
            instances.append(instance)
            cell_maps.append(cells)
        strategies: Dict[int, Strategy] = {}
        by_devices: Dict[int, List[int]] = {}
        for index, instance in enumerate(instances):
            by_devices.setdefault(instance.num_devices, []).append(index)
        for indices in by_devices.values():
            if self._planner.supports_batch and len(indices) > 1:
                plans = self._planner.run_batch([instances[i] for i in indices])
                for row, index in enumerate(indices):
                    strategies[index] = plans.strategy(row)
            else:
                for index in indices:
                    strategies[index] = self._planner(instances[index]).strategy
        outcomes = []
        for index, true_cells in enumerate(true_cells_batch):
            found, paged, rounds, complete = page_with_strategy(
                strategies[index], cell_maps[index], true_cells
            )
            if complete:
                outcomes.append(
                    PagingOutcome(found, paged, rounds, used_fallback=False)
                )
            else:
                outcomes.append(
                    _fallback(
                        found, paged, rounds, cell_maps[index], true_cells, num_cells
                    )
                )
        return outcomes


class AdaptivePager:
    """The Section 5 adaptive replanner."""

    name = "adaptive"

    def search(
        self,
        priors: Sequence[np.ndarray],
        candidate_cells: Sequence[int],
        true_cells: Sequence[int],
        max_rounds: int,
        num_cells: int,
    ) -> PagingOutcome:
        instance, cells = build_sub_instance(priors, candidate_cells, max_rounds)
        index_of = {cell: j for j, cell in enumerate(cells)}
        inside = all(cell in index_of for cell in true_cells)
        if not inside:
            # Some device left the candidate set; page it all, then sweep.
            strategy = Strategy.single_round(len(cells))
            found, paged, rounds, complete = page_with_strategy(
                strategy, cells, true_cells
            )
            return _fallback(found, paged, rounds, cells, true_cells, num_cells)
        local_locations = [index_of[cell] for cell in true_cells]
        trace = adaptive_search(instance, local_locations)
        found = {device: cell for device, cell in enumerate(true_cells)}
        return PagingOutcome(
            found_cells=found,
            cells_paged=trace.cells_paged,
            rounds_used=trace.rounds_used,
            used_fallback=False,
        )


class CostAwarePager:
    """Plans with heterogeneous per-cell paging costs (density ordering).

    ``costs`` maps every global cell id to a positive paging cost (airtime,
    channel load, sector count).  Planning minimizes expected *cost* via the
    weighted Fig. 1 analogue; the returned outcome still reports cells paged
    so results stay comparable with the other pagers.
    """

    name = "cost-aware"

    def __init__(self, costs: Sequence[float]) -> None:
        if any(float(cost) <= 0 for cost in costs):
            raise SimulationError("paging costs must be strictly positive")
        self._costs = [float(cost) for cost in costs]

    def search(
        self,
        priors: Sequence[np.ndarray],
        candidate_cells: Sequence[int],
        true_cells: Sequence[int],
        max_rounds: int,
        num_cells: int,
    ) -> PagingOutcome:
        if len(self._costs) != num_cells:
            raise SimulationError(
                f"cost table covers {len(self._costs)} cells, network has {num_cells}"
            )
        instance, cells = build_sub_instance(priors, candidate_cells, max_rounds)
        local_costs = [self._costs[cell] for cell in cells]
        plan = get_solver("weighted-heuristic")(instance, costs=local_costs)
        found, paged, rounds, complete = page_with_strategy(
            plan.strategy, cells, true_cells
        )
        if complete:
            return PagingOutcome(found, paged, rounds, used_fallback=False)
        return _fallback(found, paged, rounds, cells, true_cells, num_cells)

    def cost_of_cells(self, paged_cells: Sequence[int]) -> float:
        """Total cost of an explicit list of paged cells."""
        return sum(self._costs[cell] for cell in paged_cells)


def _fallback(
    found: Dict[int, int],
    paged: int,
    rounds: int,
    searched_cells: Sequence[int],
    true_cells: Sequence[int],
    num_cells: int,
) -> PagingOutcome:
    """Sweep outside the candidate set for devices that were not found.

    Models the system-wide page a real network issues when a device is not
    where the registry believed: one extra round covering the complement.
    """
    searched = set(searched_cells)
    missing = {
        device: cell
        for device, cell in enumerate(true_cells)
        if device not in found
    }
    outside = {cell for cell in missing.values() if cell not in searched}
    sweep = set(range(num_cells)) - searched
    paged += len(sweep)
    rounds += 1
    for device, cell in missing.items():
        found[device] = cell
    if outside - sweep:
        raise SimulationError("fallback sweep failed to cover a device")
    return PagingOutcome(
        found_cells=found, cells_paged=paged, rounds_used=rounds, used_fallback=True
    )


#: Registry of pager implementations by name (used by the simulator config).
PAGER_FACTORIES: Dict[str, Callable[[], object]] = {
    "blanket": BlanketPager,
    "heuristic": HeuristicPager,
    # Same plans as "heuristic", but search_many() fans whole call stacks
    # through the batched planner kernel (repro.core.batch_plan).
    "heuristic-batch": lambda: HeuristicPager("heuristic-batch"),
    "adaptive": AdaptivePager,
}
