"""Cell topology: the adjacency structure of a wireless coverage area.

A :class:`CellTopology` wraps a networkx graph whose nodes are integer cell
ids.  Builders cover the standard shapes (hexagonal disk, hexagonal
rectangle, line, ring, torus grid); hop distances drive mobility models,
location-area construction, and the distance reporting policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import SimulationError
from .geometry import Hex, hex_disk, hex_rectangle


class CellTopology:
    """An undirected adjacency graph over cells ``0..c-1``."""

    def __init__(
        self,
        graph: nx.Graph,
        *,
        positions: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> None:
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected:
            raise SimulationError(
                "topology nodes must be the contiguous integers 0..c-1"
            )
        if graph.number_of_nodes() == 0:
            raise SimulationError("topology needs at least one cell")
        if not nx.is_connected(graph):
            raise SimulationError("topology must be connected")
        self._graph = graph
        self._positions = dict(positions) if positions else {}
        self._distances: Optional[Dict[int, Dict[int, int]]] = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def num_cells(self) -> int:
        return self._graph.number_of_nodes()

    def neighbors(self, cell: int) -> Tuple[int, ...]:
        """Adjacent cells, sorted for determinism."""
        return tuple(sorted(self._graph.neighbors(cell)))

    def position(self, cell: int) -> Tuple[float, float]:
        """Planar position of the cell center (for distance-flavored models)."""
        if cell not in self._positions:
            raise SimulationError(f"no position recorded for cell {cell}")
        return self._positions[cell]

    def hop_distance(self, source: int, target: int) -> int:
        """Shortest-path hop count (all-pairs table computed lazily)."""
        if self._distances is None:
            self._distances = {
                node: lengths
                for node, lengths in nx.all_pairs_shortest_path_length(self._graph)
            }
        return self._distances[source][target]

    def shortest_path(self, source: int, target: int) -> List[int]:
        """One shortest path, endpoints included."""
        return nx.shortest_path(self._graph, source, target)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_hexes(cls, hexes: Sequence[Hex]) -> "CellTopology":
        """Topology over explicit hex positions; adjacency = hex neighbors."""
        index = {position: cell for cell, position in enumerate(hexes)}
        graph = nx.Graph()
        graph.add_nodes_from(range(len(hexes)))
        for position, cell in index.items():
            for neighbor in position.neighbors():
                if neighbor in index:
                    graph.add_edge(cell, index[neighbor])
        positions = {
            cell: position.to_cartesian() for position, cell in index.items()
        }
        return cls(graph, positions=positions)

    @classmethod
    def hexagonal_disk(cls, radius: int) -> "CellTopology":
        """A disk-shaped hexagonal area (``1 + 3 R (R+1)`` cells)."""
        return cls.from_hexes(hex_disk(radius))

    @classmethod
    def hexagonal_rectangle(cls, rows: int, cols: int) -> "CellTopology":
        """A ``rows x cols`` hexagonal patch."""
        return cls.from_hexes(hex_rectangle(rows, cols))

    @classmethod
    def line(cls, num_cells: int) -> "CellTopology":
        """Cells along a highway: ``0 - 1 - ... - c-1``."""
        graph = nx.path_graph(num_cells)
        positions = {cell: (float(cell), 0.0) for cell in range(num_cells)}
        return cls(graph, positions=positions)

    @classmethod
    def ring(cls, num_cells: int) -> "CellTopology":
        """A ring road of cells."""
        graph = nx.cycle_graph(num_cells)
        return cls(graph)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CellTopology":
        """A Manhattan grid of cells (4-neighbor, with boundary)."""
        lattice = nx.grid_2d_graph(rows, cols)
        mapping = {(row, col): row * cols + col for row, col in lattice.nodes}
        graph = nx.relabel_nodes(lattice, mapping)
        positions = {
            row * cols + col: (float(col), float(row))
            for row in range(rows)
            for col in range(cols)
        }
        return cls(nx.Graph(graph), positions=positions)

    @classmethod
    def torus(cls, rows: int, cols: int) -> "CellTopology":
        """A wrap-around rectangular grid (no boundary effects)."""
        grid = nx.grid_2d_graph(rows, cols, periodic=True)
        mapping = {(row, col): row * cols + col for row, col in grid.nodes}
        graph = nx.relabel_nodes(grid, mapping)
        return cls(nx.Graph(graph))
