"""The location registry: the wired-backbone database of Section 1.1.

GSM MAP and IS-41 persist, per device, the most recently reported location
area in a database reachable over the wired backbone (the HLR/VLR pair).
:class:`LocationRegistry` models exactly that: the *system's belief* about
each device, which can lag reality between reports — the uncertainty the
paging optimizer exists to handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import SimulationError


@dataclass
class RegistryRecord:
    """What the system knows about one device."""

    reported_area: int
    reported_cell: Optional[int]
    updated_at: int
    #: set when the device is on an active call and thus precisely located
    confirmed_cell: Optional[int] = None

    def age(self, time: int) -> int:
        """Steps elapsed since this record was last touched."""
        return time - self.updated_at

    def confirmed_fix(
        self, *, time: Optional[int] = None, stale_after: Optional[int] = None
    ) -> Optional[int]:
        """The confirmed cell, unless the fix aged past ``stale_after``.

        With no staleness window (``stale_after=None``, the fault-free
        default) this is just ``confirmed_cell``.  Under fault injection
        (``FaultModel.stale_after``) a fix older than the window is
        distrusted — the system falls back to the reported-area belief,
        modelling registries that go stale between refreshes.
        """
        if self.confirmed_cell is None:
            return None
        if (
            stale_after is not None
            and time is not None
            and self.age(time) > stale_after
        ):
            return None
        return self.confirmed_cell


@dataclass
class LocationRegistry:
    """Per-device location beliefs with update accounting."""

    _records: Dict[int, RegistryRecord] = field(default_factory=dict)
    updates_processed: int = 0

    def register(self, device: int, area: int, cell: Optional[int], time: int) -> None:
        """Initial attach (power-on registration)."""
        self._records[device] = RegistryRecord(
            reported_area=area, reported_cell=cell, updated_at=time
        )

    def report(self, device: int, area: int, cell: Optional[int], time: int) -> None:
        """A location update message arriving over a wireless link."""
        record = self._require(device)
        record.reported_area = area
        record.reported_cell = cell
        record.updated_at = time
        record.confirmed_cell = None
        self.updates_processed += 1

    def confirm(self, device: int, cell: int, area: int, time: int) -> None:
        """Exact location learned as a side effect (e.g. found by paging)."""
        record = self._require(device)
        record.reported_area = area
        record.reported_cell = cell
        record.confirmed_cell = cell
        record.updated_at = time

    def invalidate_confirmation(self, device: int) -> None:
        """The device moved since the last confirmation; the fix is stale."""
        record = self._require(device)
        record.confirmed_cell = None

    def lookup(self, device: int) -> RegistryRecord:
        """The system's current belief (raises for unknown devices)."""
        return self._require(device)

    def known_devices(self) -> Tuple[int, ...]:
        return tuple(sorted(self._records))

    def _require(self, device: int) -> RegistryRecord:
        if device not in self._records:
            raise SimulationError(f"device {device} never registered")
        return self._records[device]
