"""Call arrival processes: what triggers a search.

Conference-call requests arrive over time and name the set of devices that
must be located before the call can be set up (the paper's motivating
operation).  :class:`PoissonConferenceCalls` supports two per-step arrival
modes with a configurable party-size distribution:

* ``mode="bernoulli"`` (default) — at most one arrival per step with
  probability ``rate``: the discrete-time Poisson analogue the simulator
  has always used, kept draw-for-draw identical for reproducibility.
* ``mode="poisson"`` — a true Poisson(``rate``) *count* of arrivals per
  step, so offered load is not silently capped at one call per step and
  ``rate`` may exceed 1.  This is the heavy-traffic mode the contention
  engine's blocking-probability experiments (E29) drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class ConferenceCallRequest:
    """One conference-call setup request."""

    time: int
    participants: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.participants)


#: Supported per-step arrival modes.
ARRIVAL_MODES = ("bernoulli", "poisson")


class PoissonConferenceCalls:
    """Per-step arrivals of conference calls (Bernoulli or true Poisson).

    Parameters
    ----------
    rate:
        In ``bernoulli`` mode, the probability of an arrival in each time
        step (``0 <= rate <= 1``).  In ``poisson`` mode, the mean number
        of arrivals per step (any ``rate >= 0`` — offered load above one
        call per step is the point of the mode).
    num_devices:
        Pool of devices participants are drawn from.
    size_weights:
        Unnormalized weights over party sizes ``2..len(weights)+1``; defaults
        to mostly 2-3 party calls with an occasional larger conference.
    mode:
        ``"bernoulli"`` (default, at most one arrival per step — every
        historic rng stream is preserved) or ``"poisson"`` (a seeded
        Poisson count of arrivals per step, drawn via :meth:`arrivals`).
    """

    def __init__(
        self,
        rate: float,
        num_devices: int,
        *,
        size_weights: Optional[Sequence[float]] = None,
        mode: str = "bernoulli",
    ) -> None:
        if mode not in ARRIVAL_MODES:
            raise SimulationError(
                f"unknown arrival mode {mode!r}; choose from {ARRIVAL_MODES}"
            )
        if mode == "bernoulli":
            if not 0.0 <= rate <= 1.0:
                raise SimulationError("rate must lie in [0, 1]")
        elif rate < 0.0:
            raise SimulationError("poisson rate must be non-negative")
        if num_devices < 2:
            raise SimulationError("conference calls need at least 2 devices")
        self.mode = mode
        if size_weights is None:
            size_weights = (0.5, 0.3, 0.15, 0.05)
        weights = np.asarray(list(size_weights), dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise SimulationError("size_weights must be non-negative, not all zero")
        max_size = min(len(weights) + 1, num_devices)
        weights = weights[: max_size - 1]
        self._rate = rate
        self._num_devices = num_devices
        self._sizes = np.arange(2, max_size + 1)
        self._size_probabilities = weights / weights.sum()

    def _draw_request(
        self, time: int, rng: np.random.Generator
    ) -> ConferenceCallRequest:
        size = int(rng.choice(self._sizes, p=self._size_probabilities))
        participants = tuple(
            int(device)
            for device in sorted(rng.choice(self._num_devices, size=size, replace=False))
        )
        return ConferenceCallRequest(time=time, participants=participants)

    def maybe_arrival(
        self, time: int, rng: np.random.Generator
    ) -> Optional[ConferenceCallRequest]:
        """An arrival this step, or ``None`` (Bernoulli mode only).

        This is the legacy single-arrival entry point; its draw sequence
        (one uniform, then the party draws) is pinned by the simulator's
        bit-identity suite and must never change.
        """
        if self.mode != "bernoulli":
            raise SimulationError(
                "maybe_arrival is the Bernoulli entry point; "
                "poisson mode draws through arrivals()"
            )
        if rng.random() >= self._rate:
            return None
        return self._draw_request(time, rng)

    def arrivals(
        self, time: int, rng: np.random.Generator
    ) -> List[ConferenceCallRequest]:
        """Every arrival this step (0, 1, or — in poisson mode — many).

        In ``bernoulli`` mode this wraps :meth:`maybe_arrival` with the
        exact same draws, so switching call sites to ``arrivals()`` keeps
        historic rng streams intact.
        """
        if self.mode == "bernoulli":
            request = self.maybe_arrival(time, rng)
            return [] if request is None else [request]
        count = int(rng.poisson(self._rate))
        return [self._draw_request(time, rng) for _ in range(count)]

    def sample_schedule(
        self, horizon: int, rng: np.random.Generator
    ) -> List[ConferenceCallRequest]:
        """All arrivals over ``horizon`` steps (for replay-style experiments)."""
        out = []
        for time in range(horizon):
            out.extend(self.arrivals(time, rng))
        return out
