"""Call arrival processes: what triggers a search.

Conference-call requests arrive over time and name the set of devices that
must be located before the call can be set up (the paper's motivating
operation).  :class:`PoissonConferenceCalls` draws per-step Bernoulli
arrivals (the discrete-time Poisson analogue) with a configurable party-size
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class ConferenceCallRequest:
    """One conference-call setup request."""

    time: int
    participants: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.participants)


class PoissonConferenceCalls:
    """Bernoulli-per-step arrivals of conference calls.

    Parameters
    ----------
    rate:
        Probability of an arrival in each time step (``0 <= rate <= 1``).
    num_devices:
        Pool of devices participants are drawn from.
    size_weights:
        Unnormalized weights over party sizes ``2..len(weights)+1``; defaults
        to mostly 2-3 party calls with an occasional larger conference.
    """

    def __init__(
        self,
        rate: float,
        num_devices: int,
        *,
        size_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise SimulationError("rate must lie in [0, 1]")
        if num_devices < 2:
            raise SimulationError("conference calls need at least 2 devices")
        if size_weights is None:
            size_weights = (0.5, 0.3, 0.15, 0.05)
        weights = np.asarray(list(size_weights), dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise SimulationError("size_weights must be non-negative, not all zero")
        max_size = min(len(weights) + 1, num_devices)
        weights = weights[: max_size - 1]
        self._rate = rate
        self._num_devices = num_devices
        self._sizes = np.arange(2, max_size + 1)
        self._size_probabilities = weights / weights.sum()

    def maybe_arrival(
        self, time: int, rng: np.random.Generator
    ) -> Optional[ConferenceCallRequest]:
        """An arrival this step, or ``None``."""
        if rng.random() >= self._rate:
            return None
        size = int(rng.choice(self._sizes, p=self._size_probabilities))
        participants = tuple(
            int(device)
            for device in sorted(rng.choice(self._num_devices, size=size, replace=False))
        )
        return ConferenceCallRequest(time=time, participants=participants)

    def sample_schedule(
        self, horizon: int, rng: np.random.Generator
    ) -> List[ConferenceCallRequest]:
        """All arrivals over ``horizon`` steps (for replay-style experiments)."""
        out = []
        for time in range(horizon):
            request = self.maybe_arrival(time, rng)
            if request is not None:
                out.append(request)
        return out
