"""Location-area dimensioning: how big should an LA be?

The paper's introduction (citing Bar-Noy & Kessler and Abutaleb & Li) notes
that the choice of location areas balances reporting traffic (devices report
on every LA crossing — more, smaller areas mean more crossings) against
paging traffic (a call pages within one area — bigger areas mean more cells
per search).  Total wireless cost is therefore classically U-shaped in the
area size.

:func:`sweep_location_area_sizes` measures that curve on the simulator, for
any paging policy — showing how the paper's multi-round paging shifts the
optimal operating point toward *larger* areas (cheaper searches tolerate
more uncertainty, so fewer reports are needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import SimulationError
from .location_areas import LocationAreaPlan
from .mobility import GravityMobility
from .simulator import CellularSimulator, SimulationConfig
from .topology import CellTopology


@dataclass(frozen=True)
class AreaSweepPoint:
    """Measured cost of one location-area granularity."""

    num_areas: int
    mean_area_size: float
    reports: int
    cells_paged: int
    total_wireless: int
    calls: int

    @property
    def wireless_per_step(self) -> float:
        return float(self.total_wireless)


def sweep_location_area_sizes(
    *,
    radius: int = 3,
    num_devices: int = 5,
    area_counts: Sequence[int] = (1, 2, 4, 8, 16),
    horizon: int = 500,
    call_rate: float = 0.08,
    max_paging_rounds: int = 3,
    pager: str = "heuristic",
    seed: int = 23,
) -> List[AreaSweepPoint]:
    """Total wireless cost vs the number of location areas.

    Every point replays the same seed, so mobility streams are comparable;
    the registry, reporting (LA-crossing), and paging all adapt to the plan.
    """
    if not area_counts:
        raise SimulationError("need at least one area count to sweep")
    points = []
    for num_areas in area_counts:
        rng = np.random.default_rng(seed)
        topology = CellTopology.hexagonal_disk(radius)
        if not 1 <= num_areas <= topology.num_cells:
            raise SimulationError(
                f"cannot split {topology.num_cells} cells into {num_areas} areas"
            )
        plan = LocationAreaPlan.by_bfs(topology, num_areas)
        attraction = np.random.default_rng(seed + 1).uniform(
            0.5, 3.0, size=topology.num_cells
        )
        models = [
            GravityMobility(topology, attraction) for _ in range(num_devices)
        ]
        config = SimulationConfig(
            horizon=horizon,
            call_rate=call_rate,
            max_paging_rounds=max_paging_rounds,
            reporting="la",
            pager=pager,
        )
        simulator = CellularSimulator(topology, plan, models, config, rng=rng)
        report = simulator.run()
        metrics = report.metrics
        points.append(
            AreaSweepPoint(
                num_areas=num_areas,
                mean_area_size=topology.num_cells / num_areas,
                reports=metrics.report_messages,
                cells_paged=metrics.cells_paged,
                total_wireless=metrics.total_wireless_messages,
                calls=metrics.calls_handled,
            )
        )
    return points


def best_operating_point(points: Sequence[AreaSweepPoint]) -> AreaSweepPoint:
    """The sweep point with the lowest total wireless usage."""
    if not points:
        raise SimulationError("empty sweep")
    return min(points, key=lambda point: point.total_wireless)
