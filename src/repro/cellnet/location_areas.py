"""Location areas: the GSM MAP / IS-41 cell partitioning (paper Section 1.1).

Production systems partition the cells into location areas (LAs); devices
report when crossing LA boundaries and the system pages only within the last
reported LA.  :class:`LocationAreaPlan` is that partition plus lookup helpers;
builders produce balanced plans by BFS growth over the topology or by simple
index blocks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from .topology import CellTopology


class LocationAreaPlan:
    """A partition of the cells into named location areas."""

    def __init__(self, areas: Sequence[Sequence[int]], num_cells: int) -> None:
        normalized = tuple(frozenset(int(cell) for cell in area) for area in areas)
        if not normalized:
            raise SimulationError("need at least one location area")
        seen: set = set()
        for index, area in enumerate(normalized):
            if not area:
                raise SimulationError(f"location area {index} is empty")
            if seen & area:
                raise SimulationError("location areas overlap")
            seen |= area
        if seen != set(range(num_cells)):
            raise SimulationError("location areas must cover every cell exactly once")
        self._areas = normalized
        self._area_of: Dict[int, int] = {}
        for index, area in enumerate(normalized):
            for cell in area:
                self._area_of[cell] = index

    # ------------------------------------------------------------------
    @property
    def num_areas(self) -> int:
        return len(self._areas)

    @property
    def areas(self) -> Tuple[FrozenSet[int], ...]:
        return self._areas

    def area_of(self, cell: int) -> int:
        """The LA id broadcast by the cell's base station."""
        if cell not in self._area_of:
            raise SimulationError(f"cell {cell} belongs to no location area")
        return self._area_of[cell]

    def cells_of(self, area: int) -> Tuple[int, ...]:
        """Cells of an LA, sorted (the candidate set for paging)."""
        return tuple(sorted(self._areas[area]))

    def crosses_boundary(self, old_cell: int, new_cell: int) -> bool:
        """Whether a move triggers a GSM-style location update."""
        return self.area_of(old_cell) != self.area_of(new_cell)

    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(area) for area in self._areas)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def single_area(cls, num_cells: int) -> "LocationAreaPlan":
        """One LA covering everything (never report, always search widely)."""
        return cls([range(num_cells)], num_cells)

    @classmethod
    def by_blocks(cls, num_cells: int, area_size: int) -> "LocationAreaPlan":
        """Contiguous index blocks of (up to) ``area_size`` cells."""
        if area_size < 1:
            raise SimulationError("area_size must be positive")
        areas = [
            range(start, min(start + area_size, num_cells))
            for start in range(0, num_cells, area_size)
        ]
        return cls(areas, num_cells)

    @classmethod
    def by_bfs(
        cls,
        topology: CellTopology,
        num_areas: int,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> "LocationAreaPlan":
        """Grow ``num_areas`` connected areas of balanced size by BFS.

        Seeds are spread deterministically (or randomly with ``rng``); each
        area claims unclaimed cells in breadth-first waves, so areas stay
        connected — the physically meaningful shape for an LA.
        """
        c = topology.num_cells
        if not 1 <= num_areas <= c:
            raise SimulationError(f"need 1 <= num_areas <= {c}")
        if rng is None:
            seeds = [int(round(i * (c - 1) / max(1, num_areas - 1))) for i in range(num_areas)]
            seeds = sorted(set(seeds))
            extra = [cell for cell in range(c) if cell not in seeds]
            seeds = (seeds + extra)[:num_areas]
        else:
            seeds = [int(s) for s in rng.choice(c, size=num_areas, replace=False)]
        owner = [-1] * c
        queues: List[deque] = []
        for index, seed in enumerate(seeds):
            owner[seed] = index
            queues.append(deque([seed]))
        remaining = c - num_areas
        while remaining > 0:
            progressed = False
            for index, queue in enumerate(queues):
                while queue:
                    cell = queue.popleft()
                    claimed = False
                    for neighbor in topology.neighbors(cell):
                        if owner[neighbor] == -1:
                            owner[neighbor] = index
                            queues[index].append(neighbor)
                            remaining -= 1
                            claimed = True
                            progressed = True
                            break
                    if claimed:
                        queue.appendleft(cell)
                        break
                if remaining == 0:
                    break
            if not progressed and remaining > 0:
                # Connected topology guarantees progress; this is defensive.
                for cell in range(c):
                    if owner[cell] == -1:
                        owner[cell] = 0
                        remaining -= 1
        areas: List[List[int]] = [[] for _ in range(num_areas)]
        for cell, area in enumerate(owner):
            areas[area].append(cell)
        return cls(areas, c)
