"""Time-varying operation: conditional priors and joint paging/registration.

The paper's planner consumes a *static* per-device location prior.  Real
systems do not enjoy one: a device's distribution is conditioned on when
and where it last reported, and it spreads as the report ages (the
cell-residence-time effect Koukoutsidis et al. measure for sequential
paging, PAPERS.md).  This module derives that evolution analytically and
feeds it back into the paper's machinery:

* :func:`transition_matrix` — one-step cell-to-cell transition matrix of a
  mobility model: closed form for :class:`~repro.cellnet.mobility.RandomWalk`
  and :class:`~repro.cellnet.mobility.GravityMobility` (their step rule is a
  Markov kernel over the topology), empirical for the stateful
  :class:`~repro.cellnet.mobility.RandomWaypoint` (estimated from one long
  seeded trace).
* :class:`BeliefPropagator` — matrix-power belief propagation: the
  conditional location distribution ``k`` steps after a report from cell
  ``s`` is ``e_s P^k``, computed via cached binary powers of ``P``.
* :func:`evaluate_registration` — the per-device cost of a registration
  policy (timer period or distance threshold) under *re-planned* paging:
  every reachable report age gets its own conditional prior and its own
  Fig. 1 plan, batched through the solver registry's ``run_batch`` entry
  (``repro.core.batch_plan``) when the planner supports it.
* :func:`hmy_fixed_point` — the Hajek–Mitzel–Yang iteration (PAPERS.md:
  *Paging and Registration in Cellular Networks: Jointly Optimal Policies
  and an Iterative Algorithm*): alternate the paging best response (re-plan
  from the current conditionals) with the registration best response
  (re-pick the threshold against re-planned paging) until the combined
  wireless cost stops improving.  Each step minimizes over a finite
  candidate set with a deterministic evaluation, so the recorded
  trajectory is monotone non-increasing and the loop reaches a fixed
  point in finitely many rounds.

The simulator consumes the same machinery through
``SimulationConfig(prior_mode="conditional")``: each device's prior is
evolved from its last *successful* report (the location registry's belief,
which already accounts for PR 4's update-loss and staleness faults) instead
of a static visit-count profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import PagingInstance
from ..errors import SimulationError
from ..obs.instrument import count, span
from ..solvers import get_solver
from .mobility import GravityMobility, MobilityModel, RandomWalk
from .topology import CellTopology

#: Registration policy families the joint iteration optimizes over.
REGISTRATION_KINDS: Tuple[str, ...] = ("timer", "distance")

#: Mass floor used when renormalizing conditional priors (matches
#: :func:`repro.cellnet.paging.build_sub_instance`).
_PRIOR_FLOOR = 1e-12


# ---------------------------------------------------------------------------
# Transition matrices
# ---------------------------------------------------------------------------

def random_walk_transition_matrix(
    model: RandomWalk, topology: CellTopology
) -> np.ndarray:
    """Closed-form kernel of :class:`RandomWalk`: stay or hop uniformly."""
    c = topology.num_cells
    matrix = np.zeros((c, c))
    stay = model.stay_probability
    for cell in range(c):
        neighbors = topology.neighbors(cell)
        if not neighbors:
            matrix[cell, cell] = 1.0
            continue
        matrix[cell, cell] = stay
        share = (1.0 - stay) / len(neighbors)
        for neighbor in neighbors:
            matrix[cell, neighbor] += share
    return matrix


def gravity_transition_matrix(
    model: GravityMobility, topology: CellTopology
) -> np.ndarray:
    """Closed-form kernel of :class:`GravityMobility` (attraction-weighted)."""
    c = topology.num_cells
    attraction = model.attraction
    matrix = np.zeros((c, c))
    for cell in range(c):
        candidates = [cell] + list(topology.neighbors(cell))
        weights = np.array(
            [attraction[cell] * model.stay_bonus]
            + [attraction[neighbor] for neighbor in candidates[1:]]
        )
        weights = weights / weights.sum()
        for candidate, weight in zip(candidates, weights):
            matrix[cell, candidate] += float(weight)
    return matrix


def empirical_transition_matrix(
    model: MobilityModel,
    topology: CellTopology,
    *,
    samples: int = 20_000,
    rng: np.random.Generator,
    start_cell: int = 0,
) -> np.ndarray:
    """Estimate a one-step kernel from one long seeded trace.

    Stateful models (:class:`RandomWaypoint`) have no closed-form kernel;
    this walks ``samples`` continuous steps — continuity keeps the model's
    per-device path state coherent — and normalizes the observed transition
    counts.  Rows the trace never left from fall back to the topology's
    lazy-motion support (stay or hop to a neighbor, uniformly), so the
    result is always row-stochastic.
    """
    if samples < 1:
        raise SimulationError("samples must be at least 1")
    c = topology.num_cells
    counts = np.zeros((c, c))
    cell = int(start_cell)
    for _ in range(samples):
        nxt = model.step(cell, rng)
        counts[cell, nxt] += 1.0
        cell = nxt
    matrix = np.zeros((c, c))
    for row in range(c):
        total = counts[row].sum()
        if total > 0:
            matrix[row] = counts[row] / total
        else:
            support = [row] + list(topology.neighbors(row))
            matrix[row, support] = 1.0 / len(support)
    return matrix


def transition_matrix(
    model: MobilityModel,
    topology: CellTopology,
    *,
    rng: Optional[np.random.Generator] = None,
    samples: int = 20_000,
) -> np.ndarray:
    """The one-step transition matrix of any mobility model.

    Analytic for :class:`RandomWalk` and :class:`GravityMobility`; every
    other model is estimated empirically, which needs a seeded generator
    (``rng``) so the derived matrix is reproducible.
    """
    if isinstance(model, RandomWalk):
        return random_walk_transition_matrix(model, topology)
    if isinstance(model, GravityMobility):
        return gravity_transition_matrix(model, topology)
    if rng is None:
        raise SimulationError(
            f"{type(model).__name__} has no closed-form kernel; pass a seeded "
            "rng for empirical estimation"
        )
    return empirical_transition_matrix(model, topology, samples=samples, rng=rng)


def validate_transition_matrix(matrix: np.ndarray) -> np.ndarray:
    """Check a square row-stochastic matrix; returns it as float64."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SimulationError(
            f"transition matrix must be square, got shape {matrix.shape}"
        )
    if np.any(matrix < 0):
        raise SimulationError("transition matrix entries must be non-negative")
    if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-9):
        raise SimulationError("transition matrix rows must sum to 1")
    return matrix


def stationary_from_matrix(
    matrix: np.ndarray, *, tol: float = 1e-12, max_iterations: int = 10_000
) -> np.ndarray:
    """Long-run occupancy by deterministic power iteration (no sampling)."""
    matrix = validate_transition_matrix(matrix)
    c = matrix.shape[0]
    belief = np.full(c, 1.0 / c)
    for _ in range(max_iterations):
        updated = belief @ matrix
        if float(np.abs(updated - belief).sum()) < tol:
            belief = updated
            break
        belief = updated
    return belief / belief.sum()


class BeliefPropagator:
    """Matrix-power belief propagation over one transition matrix.

    ``distribution(cell, k)`` is the conditional location distribution
    ``e_cell P^k`` — where a device that reported from ``cell`` ``k`` steps
    ago is now, absent any further information.  Powers of two of ``P`` are
    cached, so a query costs ``O(log k)`` vector-matrix products.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        self._powers: List[np.ndarray] = [validate_transition_matrix(matrix)]

    @property
    def num_cells(self) -> int:
        return self._powers[0].shape[0]

    @property
    def matrix(self) -> np.ndarray:
        return self._powers[0]

    def _power(self, index: int) -> np.ndarray:
        while len(self._powers) <= index:
            last = self._powers[-1]
            self._powers.append(last @ last)
        return self._powers[index]

    def evolve(self, belief: np.ndarray, steps: int) -> np.ndarray:
        """``belief @ P^steps`` via the binary expansion of ``steps``."""
        if steps < 0:
            raise SimulationError("steps must be non-negative")
        result = np.asarray(belief, dtype=float)
        if result.shape != (self.num_cells,):
            raise SimulationError(
                f"belief must have shape ({self.num_cells},), got {result.shape}"
            )
        bit = 0
        while steps:
            if steps & 1:
                result = result @ self._power(bit)
            steps >>= 1
            bit += 1
        return result

    def distribution(self, cell: int, steps: int) -> np.ndarray:
        """Conditional location distribution ``steps`` after a fix at ``cell``."""
        if not 0 <= cell < self.num_cells:
            raise SimulationError(f"cell {cell} outside 0..{self.num_cells - 1}")
        belief = np.zeros(self.num_cells)
        belief[cell] = 1.0
        return self.evolve(belief, steps)


# ---------------------------------------------------------------------------
# Registration cycle models
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RegistrationCycle:
    """One report-to-report cycle as seen from the last report cell.

    ``ages`` and ``age_weights`` describe the age of the last report at a
    uniformly random observation time (renewal theory: the weight of age
    ``k`` is the probability the cycle has survived ``k`` steps).
    ``conditionals[i]`` is the device's location distribution over
    ``candidate_cells`` at age ``ages[i]``; ``report_rate`` is expected
    reports per time step (the uplink cost rate).
    """

    start_cell: int
    candidate_cells: Tuple[int, ...]
    ages: Tuple[int, ...]
    age_weights: Tuple[float, ...]
    conditionals: Tuple[np.ndarray, ...]
    report_rate: float


def timer_cycle(
    propagator: BeliefPropagator, start_cell: int, period: int
) -> RegistrationCycle:
    """The timer policy's cycle: report every ``period`` steps, regardless.

    The age at a random time is uniform over ``0..period-1``; the timer
    gives no spatial bound, so the candidate set is the whole network.
    """
    if period < 1:
        raise SimulationError("timer period must be at least 1")
    cells = tuple(range(propagator.num_cells))
    ages = tuple(range(period))
    conditionals = []
    belief = propagator.distribution(start_cell, 0)
    for age in ages:
        if age:
            belief = propagator.evolve(belief, 1)
        conditionals.append(belief.copy())
    return RegistrationCycle(
        start_cell=start_cell,
        candidate_cells=cells,
        ages=ages,
        age_weights=tuple(1.0 for _ in ages),
        conditionals=tuple(conditionals),
        report_rate=1.0 / period,
    )


def distance_cycle(
    propagator: BeliefPropagator,
    topology: CellTopology,
    start_cell: int,
    threshold: int,
    *,
    max_age: int = 512,
    tol: float = 1e-9,
) -> RegistrationCycle:
    """The distance policy's cycle: report on drifting ``threshold`` hops.

    Between reports the device provably sits strictly inside the ring
    (``hop_distance < threshold`` — the candidate-set invariant the
    simulator's ring fix restores), so the belief evolves under the
    sub-stochastic restriction of ``P`` to the ring interior.  The mass
    still inside after ``k`` steps is the cycle's survival probability;
    ages are truncated once the surviving mass drops below ``tol`` (or at
    ``max_age``), with the tail's weight folded into the report rate.
    """
    if threshold < 1:
        raise SimulationError("distance threshold must be at least 1")
    interior = tuple(
        cell
        for cell in range(topology.num_cells)
        if topology.hop_distance(start_cell, cell) < threshold
    )
    index_of = {cell: j for j, cell in enumerate(interior)}
    sub = propagator.matrix[np.ix_(interior, interior)]
    belief = np.zeros(len(interior))
    belief[index_of[start_cell]] = 1.0
    ages: List[int] = []
    weights: List[float] = []
    conditionals: List[np.ndarray] = []
    expected_cycle = 0.0
    for age in range(max_age + 1):
        survival = float(belief.sum())
        if survival < tol:
            break
        ages.append(age)
        weights.append(survival)
        conditionals.append(belief / survival)
        expected_cycle += survival
        belief = belief @ sub
    return RegistrationCycle(
        start_cell=start_cell,
        candidate_cells=interior,
        ages=tuple(ages),
        age_weights=tuple(weights),
        conditionals=tuple(conditionals),
        report_rate=1.0 / expected_cycle,
    )


def registration_cycle(
    propagator: BeliefPropagator,
    topology: CellTopology,
    start_cell: int,
    *,
    kind: str,
    threshold: int,
    max_age: int = 512,
    tol: float = 1e-9,
) -> RegistrationCycle:
    """Dispatch to :func:`timer_cycle` / :func:`distance_cycle` by kind."""
    if kind == "timer":
        return timer_cycle(propagator, start_cell, threshold)
    if kind == "distance":
        return distance_cycle(
            propagator, topology, start_cell, threshold, max_age=max_age, tol=tol
        )
    raise SimulationError(
        f"unknown registration kind {kind!r}; choose from {REGISTRATION_KINDS}"
    )


# ---------------------------------------------------------------------------
# Policy evaluation with re-planned paging
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PolicyEvaluation:
    """Expected per-step wireless cost of one registration threshold.

    ``combined_cost = report_cost * report_rate + call_rate * paging_per_call``
    — the Section 1.1 trade-off with both sides priced per time step.
    """

    kind: str
    threshold: int
    report_rate: float
    #: expected cells paged by the re-planned strategy at a random call
    paging_per_call: float
    combined_cost: float
    #: conditional-prior instances planned (across start cells and ages)
    plans: int
    #: True when at least one ``run_batch`` call served the planning
    batched: bool


def _conditional_instance(
    conditional: np.ndarray, max_rounds: int
) -> PagingInstance:
    """A single-device instance over candidate cells, floored like paging."""
    row = np.maximum(conditional, _PRIOR_FLOOR)
    row = row / row.sum()
    d = max(1, min(int(max_rounds), row.shape[0]))
    return PagingInstance([row.tolist()], d, allow_zero=True)


def _plan_expected_paging(
    instances: Sequence[PagingInstance], planner_name: str
) -> Tuple[List[float], bool]:
    """Expected paging of the planner on each instance, batched when possible.

    Same-shape instances go through the solver's ``run_batch`` entry in one
    kernel call (PR 7's batched Fig. 1 pipeline); solvers without a batch
    adapter fall back to a per-instance loop with identical values.
    """
    planner = get_solver(planner_name)
    values: List[Optional[float]] = [None] * len(instances)
    by_cells: Dict[int, List[int]] = {}
    for index, instance in enumerate(instances):
        by_cells.setdefault(instance.num_cells, []).append(index)
    used_batch = False
    for indices in by_cells.values():
        rounds = {instances[i].max_rounds for i in indices}
        if planner.supports_batch and len(indices) > 1 and len(rounds) == 1:
            batch = planner.run_batch([instances[i] for i in indices])
            for row, index in enumerate(indices):
                values[index] = float(batch.values[row])
            used_batch = True
        else:
            for index in indices:
                values[index] = float(planner(instances[index]).expected_paging)
    count("timevary.replans", len(instances))
    return [float(v) for v in values], used_batch


def evaluate_registration(
    topology: CellTopology,
    matrix: np.ndarray,
    *,
    kind: str,
    threshold: int,
    max_rounds: int,
    call_rate: float,
    report_cost: float = 1.0,
    planner: str = "heuristic-batch",
    start_cells: Optional[Sequence[int]] = None,
    start_weights: Optional[Sequence[float]] = None,
    max_age: int = 512,
    tol: float = 1e-9,
) -> PolicyEvaluation:
    """Per-step cost of one registration threshold under re-planned paging.

    Report locations are weighted by ``start_weights`` (default: the
    stationary distribution of ``matrix``, restricted to ``start_cells``
    when given).  For every start cell and reachable report age, the
    conditional prior is planned through the solver registry and scored by
    the planner's own expected paging; ages of one cycle are averaged by
    their renewal weights, starts by their weights.
    """
    if call_rate < 0:
        raise SimulationError("call_rate must be non-negative")
    if report_cost < 0:
        raise SimulationError("report_cost must be non-negative")
    propagator = BeliefPropagator(matrix)
    if start_cells is None:
        start_cells = tuple(range(topology.num_cells))
    starts = tuple(int(cell) for cell in start_cells)
    if start_weights is None:
        stationary = stationary_from_matrix(matrix)
        weights = np.array([stationary[cell] for cell in starts])
    else:
        weights = np.asarray(list(start_weights), dtype=float)
        if weights.shape != (len(starts),):
            raise SimulationError("need one start weight per start cell")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise SimulationError("start weights must be non-negative and non-zero")
    weights = weights / weights.sum()

    with span(
        "timevary.evaluate", kind=kind, threshold=threshold, starts=len(starts)
    ):
        cycles = [
            registration_cycle(
                propagator,
                topology,
                cell,
                kind=kind,
                threshold=threshold,
                max_age=max_age,
                tol=tol,
            )
            for cell in starts
        ]
        instances: List[PagingInstance] = []
        spans_per_cycle: List[Tuple[int, int]] = []
        for cycle in cycles:
            first = len(instances)
            for conditional in cycle.conditionals:
                instances.append(_conditional_instance(conditional, max_rounds))
            spans_per_cycle.append((first, len(instances)))
        values, batched = _plan_expected_paging(instances, planner)
        paging = 0.0
        report_rate = 0.0
        for weight, cycle, (first, last) in zip(weights, cycles, spans_per_cycle):
            age_weights = np.asarray(cycle.age_weights)
            age_share = age_weights / age_weights.sum()
            cycle_paging = float(
                np.dot(age_share, np.asarray(values[first:last]))
            )
            paging += float(weight) * cycle_paging
            report_rate += float(weight) * cycle.report_rate
    combined = report_cost * report_rate + call_rate * paging
    return PolicyEvaluation(
        kind=kind,
        threshold=int(threshold),
        report_rate=report_rate,
        paging_per_call=paging,
        combined_cost=combined,
        plans=len(instances),
        batched=batched,
    )


# ---------------------------------------------------------------------------
# The Hajek–Mitzel–Yang iteration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HMYStep:
    """One alternation of the joint paging/registration iteration."""

    iteration: int
    #: "paging" re-planned strategies for the incumbent threshold;
    #: "registration" re-picked the threshold against re-planned paging
    phase: str
    evaluation: PolicyEvaluation


@dataclass(frozen=True)
class HMYResult:
    """The fixed point plus the full (monotone) cost trajectory."""

    kind: str
    threshold: int
    evaluation: PolicyEvaluation
    trajectory: Tuple[HMYStep, ...]
    converged: bool

    @property
    def costs(self) -> Tuple[float, ...]:
        return tuple(step.evaluation.combined_cost for step in self.trajectory)


def hmy_fixed_point(
    topology: CellTopology,
    matrix: np.ndarray,
    *,
    kind: str = "timer",
    candidates: Sequence[int],
    max_rounds: int,
    call_rate: float,
    report_cost: float = 1.0,
    planner: str = "heuristic-batch",
    start_cells: Optional[Sequence[int]] = None,
    max_iterations: int = 8,
    max_age: int = 512,
    tol: float = 1e-9,
) -> HMYResult:
    """Alternate paging and registration best responses to a fixed point.

    Starting from the first candidate threshold, each iteration first
    re-plans paging for the incumbent threshold's conditional priors (the
    paging best response — recorded as a ``"paging"`` step), then sweeps
    ``candidates`` for the threshold whose *re-planned* cost is lowest
    (the registration best response — a ``"registration"`` step).  The
    incumbent is always in the sweep and every evaluation is
    deterministic, so the combined cost never increases; the loop stops
    when the argmin stops moving (a fixed point of the alternation) or
    after ``max_iterations``.
    """
    thresholds = tuple(int(t) for t in candidates)
    if not thresholds:
        raise SimulationError("need at least one candidate threshold")
    if len(set(thresholds)) != len(thresholds):
        raise SimulationError("candidate thresholds must be distinct")

    def evaluate(threshold: int) -> PolicyEvaluation:
        return evaluate_registration(
            topology,
            matrix,
            kind=kind,
            threshold=threshold,
            max_rounds=max_rounds,
            call_rate=call_rate,
            report_cost=report_cost,
            planner=planner,
            start_cells=start_cells,
            max_age=max_age,
            tol=tol,
        )

    with span("timevary.hmy", kind=kind, candidates=len(thresholds)):
        incumbent = thresholds[0]
        trajectory: List[HMYStep] = []
        current = evaluate(incumbent)
        trajectory.append(HMYStep(iteration=0, phase="paging", evaluation=current))
        converged = False
        for iteration in range(1, max_iterations + 1):
            sweep = {
                threshold: (current if threshold == incumbent else evaluate(threshold))
                for threshold in thresholds
            }
            best = min(sweep, key=lambda t: sweep[t].combined_cost)
            trajectory.append(
                HMYStep(
                    iteration=iteration,
                    phase="registration",
                    evaluation=sweep[best],
                )
            )
            if best == incumbent:
                converged = True
                break
            incumbent = best
            current = sweep[best]
    return HMYResult(
        kind=kind,
        threshold=incumbent,
        evaluation=trajectory[-1].evaluation,
        trajectory=tuple(trajectory),
        converged=converged,
    )
