"""Wireless-link usage accounting.

The paper's efficiency measure is usage of wireless links: uplink location
updates plus downlink paging messages.  :class:`LinkUsageMetrics` counts
both, broken down per call, so the end-to-end experiment can reproduce the
reporting/paging trade-off curve of Section 1.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CallRecord:
    """Per-call search accounting."""

    time: int
    participants: int
    cells_paged: int
    rounds_used: int
    used_fallback: bool
    #: participants the search gave up on (0 outside fault injection)
    failed_devices: int = 0
    #: re-page retry rounds spent by the recovery policy
    retries: int = 0


@dataclass
class LinkUsageMetrics:
    """Aggregated wireless-link usage over a simulation run."""

    report_messages: int = 0
    registration_messages: int = 0
    cells_paged: int = 0
    calls_handled: int = 0
    fallback_searches: int = 0
    #: calls that proceeded without at least one participant (fault injection)
    degraded_calls: int = 0
    #: total participants given up on across all degraded calls
    failed_device_count: int = 0
    #: re-page retry rounds spent by the recovery policy
    retry_rounds: int = 0
    #: downlink paging messages lost to injected faults
    pages_lost: int = 0
    #: uplink location updates lost to injected faults
    updates_lost: int = 0
    #: pages blocked because the target cell was in a scheduled outage
    outage_pages: int = 0
    #: registry lookups whose confirmed fix had aged past the staleness window
    stale_lookups: int = 0
    rounds_histogram: Dict[int, int] = field(default_factory=dict)
    call_records: List[CallRecord] = field(default_factory=list)

    def record_report(self) -> None:
        self.report_messages += 1

    def record_registration(self) -> None:
        self.registration_messages += 1

    def record_call(self, record: CallRecord) -> None:
        self.calls_handled += 1
        self.cells_paged += record.cells_paged
        if record.used_fallback:
            self.fallback_searches += 1
        if record.failed_devices:
            self.degraded_calls += 1
            self.failed_device_count += record.failed_devices
        self.retry_rounds += record.retries
        self.rounds_histogram[record.rounds_used] = (
            self.rounds_histogram.get(record.rounds_used, 0) + 1
        )
        self.call_records.append(record)

    # -- fault accounting (driven by cellnet.faults.FaultInjector) ------
    def record_page_lost(self) -> None:
        self.pages_lost += 1

    def record_update_lost(self) -> None:
        self.updates_lost += 1

    def record_outage_page(self) -> None:
        self.outage_pages += 1

    def record_stale_lookup(self) -> None:
        self.stale_lookups += 1

    # ------------------------------------------------------------------
    @property
    def total_wireless_messages(self) -> int:
        """Uplink reports plus downlink pages — the paper's cost measure."""
        return self.report_messages + self.cells_paged

    @property
    def mean_cells_per_call(self) -> float:
        if self.calls_handled == 0:
            return 0.0
        return self.cells_paged / self.calls_handled

    @property
    def mean_rounds_per_call(self) -> float:
        if self.calls_handled == 0:
            return 0.0
        total = sum(rounds * count for rounds, count in self.rounds_histogram.items())
        return total / self.calls_handled

    def summary(self) -> Dict[str, float]:
        """A flat dict for tables and benchmark output."""
        return {
            "calls": float(self.calls_handled),
            "reports": float(self.report_messages),
            "cells_paged": float(self.cells_paged),
            "mean_cells_per_call": self.mean_cells_per_call,
            "mean_rounds_per_call": self.mean_rounds_per_call,
            "fallbacks": float(self.fallback_searches),
            "total_wireless": float(self.total_wireless_messages),
            "degraded_calls": float(self.degraded_calls),
            "failed_devices": float(self.failed_device_count),
            "retry_rounds": float(self.retry_rounds),
            "pages_lost": float(self.pages_lost),
            "updates_lost": float(self.updates_lost),
            "outage_pages": float(self.outage_pages),
            "stale_lookups": float(self.stale_lookups),
        }
