"""Wireless-link usage accounting.

The paper's efficiency measure is usage of wireless links: uplink location
updates plus downlink paging messages.  :class:`LinkUsageMetrics` counts
both, broken down per call, so the end-to-end experiment can reproduce the
reporting/paging trade-off curve of Section 1.1.

Under the contention engine (:mod:`repro.cellnet.engine`) the same object
also carries the heavy-traffic outputs: offered vs blocked calls (blocking
probability), per-call setup-latency percentiles, and the per-cell channel
occupancy histogram.  Those keys appear in :meth:`LinkUsageMetrics.summary`
only when contention accounting is active (``contention=True``), so every
legacy configuration's summary stays byte-identical to the pre-engine
simulator.

Long runs can opt out of the unbounded per-call record list with
``record_calls=False``: every aggregate counter — and therefore
``summary()`` — stays exact, only the ``call_records`` detail is dropped
(``tests/cellnet/test_calls_metrics.py`` pins the equality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class CallRecord:
    """Per-call search accounting."""

    time: int
    participants: int
    cells_paged: int
    rounds_used: int
    used_fallback: bool
    #: participants the search gave up on (0 outside fault injection)
    failed_devices: int = 0
    #: re-page retry rounds spent by the recovery policy
    retries: int = 0
    #: steps from arrival to completion (0 in the synchronous legacy path)
    setup_latency: int = 0


def _percentile_from_histogram(histogram: Dict[int, int], q: float) -> float:
    """Nearest-rank percentile over an integer-valued histogram."""
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    rank = max(1, int(-(-q * total // 100)))  # ceil(q/100 * total)
    seen = 0
    for value in sorted(histogram):
        seen += histogram[value]
        if seen >= rank:
            return float(value)
    return float(max(histogram))


@dataclass
class LinkUsageMetrics:
    """Aggregated wireless-link usage over a simulation run."""

    report_messages: int = 0
    registration_messages: int = 0
    cells_paged: int = 0
    calls_handled: int = 0
    fallback_searches: int = 0
    #: calls that proceeded without at least one participant (fault injection)
    degraded_calls: int = 0
    #: total participants given up on across all degraded calls
    failed_device_count: int = 0
    #: re-page retry rounds spent by the recovery policy
    retry_rounds: int = 0
    #: downlink paging messages lost to injected faults
    pages_lost: int = 0
    #: uplink location updates lost to injected faults
    updates_lost: int = 0
    #: pages blocked because the target cell was in a scheduled outage
    outage_pages: int = 0
    #: registry lookups whose confirmed fix had aged past the staleness window
    stale_lookups: int = 0
    rounds_histogram: Dict[int, int] = field(default_factory=dict)
    call_records: List[CallRecord] = field(default_factory=list)
    #: keep the per-call record list (False: aggregates only, bounded memory)
    record_calls: bool = True
    #: contention accounting active (the engine's finite-capacity mode)
    contention: bool = False
    #: calls admitted to the shared channels (the blocking denominator)
    offered_calls: int = 0
    #: calls dropped after starving longer than the wait budget
    blocked_calls: int = 0
    #: call-steps in which a pending call acquired no slot at all
    deferred_steps: int = 0
    #: setup latency (steps from arrival to completion) -> completed calls
    setup_latency_histogram: Dict[int, int] = field(default_factory=dict)
    #: page slots used on one cell in one round -> cell-round occurrences
    channel_occupancy: Dict[int, int] = field(default_factory=dict)

    def record_report(self) -> None:
        self.report_messages += 1

    def record_registration(self) -> None:
        self.registration_messages += 1

    def record_call(self, record: CallRecord) -> None:
        self.calls_handled += 1
        self.cells_paged += record.cells_paged
        if record.used_fallback:
            self.fallback_searches += 1
        if record.failed_devices:
            self.degraded_calls += 1
            self.failed_device_count += record.failed_devices
        self.retry_rounds += record.retries
        self.rounds_histogram[record.rounds_used] = (
            self.rounds_histogram.get(record.rounds_used, 0) + 1
        )
        latency = int(record.setup_latency)
        self.setup_latency_histogram[latency] = (
            self.setup_latency_histogram.get(latency, 0) + 1
        )
        if self.record_calls:
            self.call_records.append(record)

    # -- fault accounting (driven by cellnet.faults.FaultInjector) ------
    def record_page_lost(self) -> None:
        self.pages_lost += 1

    def record_update_lost(self) -> None:
        self.updates_lost += 1

    def record_outage_page(self) -> None:
        self.outage_pages += 1

    def record_stale_lookup(self) -> None:
        self.stale_lookups += 1

    # -- contention accounting (driven by cellnet.engine) ---------------
    def record_offered_call(self) -> None:
        self.offered_calls += 1

    def record_blocked_call(self, waited_steps: int) -> None:
        self.blocked_calls += 1

    def record_deferred_step(self) -> None:
        self.deferred_steps += 1

    def record_occupancy(self, slots_used: Sequence[int]) -> None:
        """Fold one round's per-cell slot usage into the histogram."""
        for used in slots_used:
            key = int(used)
            self.channel_occupancy[key] = self.channel_occupancy.get(key, 0) + 1

    # ------------------------------------------------------------------
    @property
    def total_wireless_messages(self) -> int:
        """Uplink reports plus downlink pages — the paper's cost measure."""
        return self.report_messages + self.cells_paged

    @property
    def mean_cells_per_call(self) -> float:
        if self.calls_handled == 0:
            return 0.0
        return self.cells_paged / self.calls_handled

    @property
    def mean_rounds_per_call(self) -> float:
        if self.calls_handled == 0:
            return 0.0
        total = sum(rounds * count for rounds, count in self.rounds_histogram.items())
        return total / self.calls_handled

    @property
    def blocking_probability(self) -> float:
        """Blocked calls over offered calls (0 when nothing was offered)."""
        if self.offered_calls == 0:
            return 0.0
        return self.blocked_calls / self.offered_calls

    def setup_latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of completed calls' setup latencies."""
        return _percentile_from_histogram(self.setup_latency_histogram, q)

    @property
    def mean_channel_occupancy(self) -> float:
        """Mean page slots used per cell per round (contention mode)."""
        total = sum(self.channel_occupancy.values())
        if total == 0:
            return 0.0
        used = sum(slots * count for slots, count in self.channel_occupancy.items())
        return used / total

    def summary(self) -> Dict[str, float]:
        """A flat dict for tables and benchmark output.

        Contention keys are appended only when contention accounting is
        active, so legacy summaries stay byte-identical to the pre-engine
        simulator's output.
        """
        out = {
            "calls": float(self.calls_handled),
            "reports": float(self.report_messages),
            "cells_paged": float(self.cells_paged),
            "mean_cells_per_call": self.mean_cells_per_call,
            "mean_rounds_per_call": self.mean_rounds_per_call,
            "fallbacks": float(self.fallback_searches),
            "total_wireless": float(self.total_wireless_messages),
            "degraded_calls": float(self.degraded_calls),
            "failed_devices": float(self.failed_device_count),
            "retry_rounds": float(self.retry_rounds),
            "pages_lost": float(self.pages_lost),
            "updates_lost": float(self.updates_lost),
            "outage_pages": float(self.outage_pages),
            "stale_lookups": float(self.stale_lookups),
        }
        if self.contention:
            out["offered_calls"] = float(self.offered_calls)
            out["blocked_calls"] = float(self.blocked_calls)
            out["blocking_probability"] = self.blocking_probability
            out["deferred_steps"] = float(self.deferred_steps)
            out["setup_latency_p50"] = self.setup_latency_percentile(50)
            out["setup_latency_p95"] = self.setup_latency_percentile(95)
            out["setup_latency_p99"] = self.setup_latency_percentile(99)
            out["mean_channel_occupancy"] = self.mean_channel_occupancy
        return out
