"""ASCII rendering of networks, location areas, and paging plans.

Purely presentational, but load-bearing for the examples and for debugging:
seeing WHICH cells a round pages (and how location areas tile the map) makes
the optimizer's choices legible.  Hexagonal layouts render in offset rows;
non-geometric topologies fall back to an adjacency listing.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.strategy import Strategy
from .location_areas import LocationAreaPlan
from .topology import CellTopology

#: Symbols used for area / round labels (wraps past 36).
_LABELS = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _label(index: int) -> str:
    return _LABELS[index % len(_LABELS)]


def _grid_layout(topology: CellTopology) -> Optional[Dict[int, tuple]]:
    """Integer (row, col) layout from the recorded positions, or None."""
    try:
        positions = {
            cell: topology.position(cell) for cell in range(topology.num_cells)
        }
    except Exception:
        return None
    ys = sorted({round(y, 6) for _x, y in positions.values()})
    row_of = {y: i for i, y in enumerate(ys)}
    layout = {}
    for cell, (x, y) in positions.items():
        layout[cell] = (row_of[round(y, 6)], x)
    return layout


def render_cell_map(
    topology: CellTopology,
    labels: Dict[int, str],
    *,
    legend: Optional[str] = None,
) -> str:
    """Render one character per cell at its (approximate) map position."""
    layout = _grid_layout(topology)
    lines = []
    if layout is None:
        for cell in range(topology.num_cells):
            neighbor_list = ", ".join(map(str, topology.neighbors(cell)))
            lines.append(f"cell {cell} [{labels.get(cell, '?')}] -- {neighbor_list}")
    else:
        rows: Dict[int, list] = {}
        for cell, (row, x) in layout.items():
            rows.setdefault(row, []).append((x, cell))
        min_x = min(x for _row, x in layout.values())
        for row in sorted(rows):
            cells = sorted(rows[row])
            # Two columns per unit of x keeps hexagonal offsets visible.
            line: Dict[int, str] = {}
            for x, cell in cells:
                column = int(round((x - min_x) * 2))
                line[column] = labels.get(cell, "?")
            width = max(line) + 1
            lines.append(
                "".join(line.get(column, " ") for column in range(width)).rstrip()
            )
    if legend:
        lines.append(legend)
    return "\n".join(lines)


def render_location_areas(
    topology: CellTopology, plan: LocationAreaPlan
) -> str:
    """Map view with one symbol per location area."""
    labels = {
        cell: _label(plan.area_of(cell)) for cell in range(topology.num_cells)
    }
    legend = "legend: symbol = location-area id"
    return render_cell_map(topology, labels, legend=legend)


def render_strategy(
    topology: CellTopology,
    strategy: Strategy,
    *,
    cell_order: Optional[Sequence[int]] = None,
) -> str:
    """Map view with one symbol per paging round (1 = first round).

    ``cell_order`` maps strategy indices to topology cells when the strategy
    was planned on a sub-instance (e.g. one location area).
    """
    mapping = (
        {index: cell for index, cell in enumerate(cell_order)}
        if cell_order is not None
        else {cell: cell for cell in range(strategy.num_cells)}
    )
    labels = {cell: "." for cell in range(topology.num_cells)}
    for round_index, group in enumerate(strategy.groups, start=1):
        for index in group:
            labels[mapping[index]] = _label(round_index)
    legend = "legend: digit = paging round, '.' = outside the plan"
    return render_cell_map(topology, labels, legend=legend)


def strategy_summary(strategy: Strategy) -> str:
    """One line per round: sizes and members."""
    lines = []
    for round_index, group in enumerate(strategy.groups, start=1):
        members = ", ".join(map(str, sorted(group)))
        lines.append(f"round {round_index} ({len(group)} cells): {members}")
    return "\n".join(lines)
