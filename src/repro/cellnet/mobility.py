"""Mobility models for devices roaming the cell topology.

Three classical models, all exposing the same one-step interface so the
simulator and the trace-based distribution estimator can swap them freely:

* :class:`RandomWalk` — stay put with some probability, otherwise hop to a
  uniformly random neighboring cell.
* :class:`RandomWaypoint` — pick a random destination cell, walk a shortest
  path toward it (optionally pausing), then pick a new destination.
* :class:`GravityMobility` — neighbor choice biased by per-cell attraction
  weights (hotspots), producing the skewed stationary distributions that the
  paging optimizer thrives on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..errors import SimulationError
from .topology import CellTopology


class MobilityModel(Protocol):
    """One device's movement rule: current cell in, next cell out."""

    def step(self, cell: int, rng: np.random.Generator) -> int:
        """The cell occupied after one time step."""
        ...


class RandomWalk:
    """Stay with probability ``stay_probability``, else hop to a neighbor."""

    def __init__(self, topology: CellTopology, *, stay_probability: float = 0.4) -> None:
        if not 0 <= stay_probability < 1:
            raise SimulationError("stay_probability must lie in [0, 1)")
        self._topology = topology
        self._stay = stay_probability

    @property
    def stay_probability(self) -> float:
        """The model's stay parameter (its kernel is a closed form of it)."""
        return self._stay

    def step(self, cell: int, rng: np.random.Generator) -> int:
        if rng.random() < self._stay:
            return cell
        neighbors = self._topology.neighbors(cell)
        if not neighbors:
            return cell
        return int(neighbors[rng.integers(len(neighbors))])


class RandomWaypoint:
    """Walk shortest paths to random destinations, pausing in between.

    Keeps one active path, so an instance models exactly *one* device.
    Sharing one instance across devices silently corrupts every path (each
    device keeps hijacking the other's journey); :meth:`step` detects the
    interleaved calls and raises instead.  Use :meth:`clone_for_devices` to
    mint one independent instance per device, and :meth:`reset` to reuse an
    instance for a fresh trace.
    """

    def __init__(self, topology: CellTopology, *, pause_probability: float = 0.2) -> None:
        if not 0 <= pause_probability < 1:
            raise SimulationError("pause_probability must lie in [0, 1)")
        self._topology = topology
        self._pause = pause_probability
        self._path: List[int] = []
        self._last_cell: Optional[int] = None

    @property
    def pause_probability(self) -> float:
        return self._pause

    def reset(self) -> None:
        """Forget the active path; the next step plans a fresh journey."""
        self._path = []
        self._last_cell = None

    def clone_for_devices(self, count: int) -> List["RandomWaypoint"]:
        """``count`` independent same-parameter instances, one per device."""
        if count < 1:
            raise SimulationError("count must be at least 1")
        return [
            RandomWaypoint(self._topology, pause_probability=self._pause)
            for _ in range(count)
        ]

    def step(self, cell: int, rng: np.random.Generator) -> int:
        if (
            self._path
            and self._last_cell is not None
            and cell != self._last_cell
        ):
            raise SimulationError(
                "RandomWaypoint stepped from a cell it never returned while "
                "mid-journey — one instance is being shared across devices; "
                "use clone_for_devices() (or reset() between traces)"
            )
        if rng.random() < self._pause:
            self._last_cell = cell
            return cell
        if not self._path or self._path[0] != cell:
            destination = int(rng.integers(self._topology.num_cells))
            self._path = self._topology.shortest_path(cell, destination)
        if len(self._path) <= 1:
            self._path = []
            self._last_cell = cell
            return cell
        self._path = self._path[1:]
        self._last_cell = self._path[0]
        return self._path[0]


class GravityMobility:
    """Neighbor choice weighted by per-cell attraction (hotspot behavior)."""

    def __init__(
        self,
        topology: CellTopology,
        attraction: Sequence[float],
        *,
        stay_bonus: float = 1.0,
    ) -> None:
        if len(attraction) != topology.num_cells:
            raise SimulationError("need one attraction weight per cell")
        if any(weight <= 0 for weight in attraction):
            raise SimulationError("attraction weights must be positive")
        if stay_bonus <= 0:
            raise SimulationError("stay_bonus must be positive")
        self._topology = topology
        self._attraction = [float(weight) for weight in attraction]
        self._stay_bonus = stay_bonus

    @property
    def attraction(self) -> List[float]:
        """Per-cell attraction weights (the kernel is a closed form of them)."""
        return list(self._attraction)

    @property
    def stay_bonus(self) -> float:
        return self._stay_bonus

    def step(self, cell: int, rng: np.random.Generator) -> int:
        candidates = [cell] + list(self._topology.neighbors(cell))
        weights = np.array(
            [self._attraction[cell] * self._stay_bonus]
            + [self._attraction[neighbor] for neighbor in candidates[1:]]
        )
        weights = weights / weights.sum()
        return int(rng.choice(candidates, p=weights))


def generate_trace(
    model: MobilityModel,
    start_cell: int,
    steps: int,
    rng: np.random.Generator,
) -> List[int]:
    """A movement trace: the sequence of occupied cells, start included."""
    if steps < 0:
        raise SimulationError("steps must be non-negative")
    trace = [start_cell]
    cell = start_cell
    for _ in range(steps):
        cell = model.step(cell, rng)
        trace.append(cell)
    return trace


def stationary_distribution(
    model: MobilityModel,
    topology: CellTopology,
    *,
    start_cell: int = 0,
    burn_in: int = 500,
    samples: int = 5_000,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Empirical long-run occupancy of a mobility model.

    Used by the end-to-end experiment to obtain the "true" location
    distribution against which the trace-based estimator is judged.
    """
    if burn_in < 0:
        raise SimulationError("burn_in must be non-negative")
    if samples < 1:
        raise SimulationError("samples must be at least 1")
    if rng is None:
        rng = np.random.default_rng(0)
    cell = start_cell
    for _ in range(burn_in):
        cell = model.step(cell, rng)
    counts: Dict[int, int] = {}
    for _ in range(samples):
        cell = model.step(cell, rng)
        counts[cell] = counts.get(cell, 0) + 1
    distribution = np.zeros(topology.num_cells)
    for visited, count in counts.items():
        distribution[visited] = count
    total = distribution.sum()
    if total <= 0:
        raise SimulationError("trace produced no visits; cannot normalize")
    return distribution / total
