"""The event-driven contention engine: shared per-cell paging channels.

The paper's bandwidth-limited variant (Section 5) caps a *single* call at
``b`` cells per round.  Under heavy traffic the cap is a property of the
network, not the call: every concurrent conference-call setup competes for
the same ``b`` paging slots per round on each cell's channel (and a cell
may carry ``k`` parallel paging carriers, Mostafa et al., PAPERS.md).  This
module turns the time-stepped :class:`~repro.cellnet.simulator.CellularSimulator`
loop into an event-driven engine where that sharing is first-class:

* :class:`EventEngine` — a priority queue of typed :class:`Event` records
  (``movement``, ``arrival``, ``paging-round``, ``retry``, ``outage-start``,
  ``outage-end``) dispatched to pluggable handlers in deterministic
  ``(time, priority, seq)`` order.  Determinism is the contract: every rng
  draw happens inside a handler, and handler order is a pure function of
  the schedule, so same-seed runs are bit-identical.
* :class:`ChannelResource` — the shared capacity: ``capacity`` page slots
  per round per cell, multiplied by ``carriers`` parallel paging channels.
  Scheduled cell outages take a cell's channel down entirely (zero slots),
  so congestion and faults interact instead of living in separate patches.
* :class:`ChannelScheduler` — the call lifecycle under contention: calls
  are admitted FIFO, page their planned strategy group by group, *stretch*
  a round over steps when slots run out, defer when fully starved, retry
  through the same queue after fault losses (a retry competes for slots
  like a fresh page), fall back to a network sweep for mislaid devices,
  and **block** when starved longer than ``max_wait`` steps — the quantity
  heavy-traffic provisioning is judged on (blocking probability vs offered
  load vs carriers, experiment E29).

The legacy path is the other half of the contract: with
``channel_capacity=None`` the engine schedules exactly the step loop the
simulator used to run — one ``movement`` event then one ``arrival`` event
per step, calls handled synchronously inside the arrival handler — so
every pre-existing configuration (faults, priors, recovery included)
replays **bit-identically**: same rng stream, same reports
(``tests/cellnet/test_legacy_equivalence.py`` pins it against golden
summaries recorded from the pre-engine loop).

Observability: the engine emits an ``engine.*`` event family through the
active :mod:`repro.obs` tracer — ``engine.events.<kind>`` counters,
``engine.queue_depth`` and ``engine.slot_occupancy`` histograms, and
``engine.pages_sent`` / ``engine.deferred_steps`` / ``engine.blocked_calls``
counters (docs/contention.md walks through a trace).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import SimulationError
from ..obs.events import current_tracer
from .calls import ConferenceCallRequest
from .faults import FaultInjector, RecoveryPolicy
from .metrics import CallRecord, LinkUsageMetrics
from .paging import build_sub_instance

# Event kinds, in within-step dispatch order.  Outage transitions flip the
# channel state before anything else looks at it; movement (which carries
# the reporting/registration-renewal messages) precedes arrivals, exactly
# as in the legacy step loop; the shared paging round runs last so it sees
# the step's arrivals.
OUTAGE_START = "outage-start"
OUTAGE_END = "outage-end"
MOVEMENT = "movement"
ARRIVAL = "arrival"
PAGING_ROUND = "paging-round"
RETRY = "retry"

EVENT_PRIORITIES: Dict[str, int] = {
    OUTAGE_START: 0,
    OUTAGE_END: 1,
    MOVEMENT: 2,
    ARRIVAL: 3,
    RETRY: 4,
    PAGING_ROUND: 5,
}


@dataclass(frozen=True)
class Event:
    """One typed occurrence in simulated time."""

    time: int
    kind: str
    payload: object = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_PRIORITIES:
            raise SimulationError(f"unknown event kind {self.kind!r}")
        if self.time < 0:
            raise SimulationError("event time must be non-negative")


class EventEngine:
    """A deterministic discrete-event queue with per-kind handlers.

    Events are dispatched in ``(time, kind priority, insertion seq)``
    order; the insertion sequence breaks ties so two events of the same
    kind at the same time run in the order they were scheduled.  Handlers
    may schedule further events (at the current time or later).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, Event]] = []
        self._seq = itertools.count()
        self._handlers: Dict[str, Callable[[Event], None]] = {}
        self._dispatched = 0
        self.now = 0

    def on(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register the handler for one event kind (last wins)."""
        if kind not in EVENT_PRIORITIES:
            raise SimulationError(f"unknown event kind {kind!r}")
        self._handlers[kind] = handler

    def schedule(self, event: Event) -> None:
        """Enqueue one event; events never run before the current time."""
        if event.time < self.now:
            raise SimulationError(
                f"cannot schedule {event.kind!r} at t={event.time} "
                f"(engine is at t={self.now})"
            )
        heapq.heappush(
            self._heap,
            (event.time, EVENT_PRIORITIES[event.kind], next(self._seq), event),
        )

    @property
    def queue_depth(self) -> int:
        return len(self._heap)

    @property
    def events_dispatched(self) -> int:
        return self._dispatched

    def run(self, horizon: int) -> None:
        """Dispatch every event with ``time <= horizon`` in order."""
        tracer = current_tracer()
        while self._heap and self._heap[0][0] <= horizon:
            _, _, _, event = heapq.heappop(self._heap)
            self.now = event.time
            handler = self._handlers.get(event.kind)
            if handler is None:
                raise SimulationError(f"no handler for event kind {event.kind!r}")
            self._dispatched += 1
            if tracer.enabled:
                tracer.count(f"engine.events.{event.kind}")
            handler(event)


class ChannelResource:
    """Per-cell paging-channel capacity, shared by every concurrent call.

    Each cell offers ``capacity * carriers`` page slots per round (one
    round = one engine time step): ``capacity`` slots per carrier, ``k``
    parallel carriers per cell (Mostafa et al.'s multi-carrier paging
    capacity).  A cell inside a scheduled outage offers zero slots — its
    channel is down, so congestion and outages compound instead of being
    independent failure modes.
    """

    def __init__(self, num_cells: int, capacity: int, carriers: int = 1) -> None:
        if num_cells < 1:
            raise SimulationError("ChannelResource needs at least one cell")
        if capacity < 1:
            raise SimulationError("channel capacity must be at least 1 slot")
        if carriers < 1:
            raise SimulationError("carriers must be at least 1")
        self.num_cells = num_cells
        self.capacity = capacity
        self.carriers = carriers
        self.slots_per_cell = capacity * carriers
        self._used = [0] * num_cells
        self._down: Set[int] = set()

    def begin_round(self) -> None:
        """Reset every cell's slot count for a new round (time step)."""
        self._used = [0] * self.num_cells

    def set_down(self, cell: int, down: bool) -> None:
        if down:
            self._down.add(cell)
        else:
            self._down.discard(cell)

    def is_down(self, cell: int) -> bool:
        return cell in self._down

    def acquire(self, cell: int) -> bool:
        """Take one page slot on ``cell`` this round, if any remains."""
        if cell in self._down or self._used[cell] >= self.slots_per_cell:
            return False
        self._used[cell] += 1
        return True

    def used(self, cell: int) -> int:
        return self._used[cell]

    @property
    def used_total(self) -> int:
        return sum(self._used)

    def occupancy_snapshot(self) -> List[int]:
        """Slots used per cell this round (for the occupancy histogram)."""
        return list(self._used)


# Phases of a pending call's page schedule, in escalation order.
PHASE_STRATEGY = "strategy"
PHASE_RETRY = "retry"
PHASE_FALLBACK = "fallback"


@dataclass
class _Phase:
    """One group of cells the call still has to page."""

    kind: str
    pending: List[int]  # global cell ids not yet paged in this phase


@dataclass
class PendingCall:
    """One conference call working its way through the shared channels."""

    request: ConferenceCallRequest
    candidate_cells: Tuple[int, ...]
    phases: List[_Phase]
    #: local participant index -> global device id, for devices still unfound
    remaining: Dict[int, int]
    found_cells: Dict[int, int] = field(default_factory=dict)
    cells_paged: int = 0
    rounds_used: int = 0
    waited: int = 0
    retries_used: int = 0
    used_fallback: bool = False
    phase_index: int = 0

    @property
    def current_phase(self) -> Optional[_Phase]:
        if self.phase_index < len(self.phases):
            return self.phases[self.phase_index]
        return None


class ChannelScheduler:
    """Serves pending calls against the shared :class:`ChannelResource`.

    Calls are served in FIFO admission order each paging round.  A call
    pages as many cells of its current group as it can acquire slots for;
    a group short of slots *stretches* into the next round; a call that
    acquires nothing in a round is *deferred* (starved), and a call starved
    more than ``max_wait`` rounds in total is *blocked* and dropped — the
    blocking-probability numerator.  Devices keep moving while a call is
    in setup, so answers are judged against each device's position at the
    moment its cell is actually paged.
    """

    def __init__(
        self,
        resource: ChannelResource,
        metrics: LinkUsageMetrics,
        *,
        max_wait: int,
        device_cell: Callable[[int], int],
        on_found: Callable[[int, int, int], None],
        injector: Optional[FaultInjector] = None,
        recovery: Optional[RecoveryPolicy] = None,
        on_complete: Optional[Callable[[PendingCall, int], None]] = None,
    ) -> None:
        self._resource = resource
        self._metrics = metrics
        self._max_wait = max_wait
        self._device_cell = device_cell
        self._on_found = on_found
        self._injector = injector
        self._recovery = recovery
        self._on_complete = on_complete
        self._queue: List[PendingCall] = []
        #: calls parked on a retry backoff (their RETRY event is in flight)
        self._awaiting_retry: List[PendingCall] = []

    @property
    def active_calls(self) -> int:
        return len(self._queue) + len(self._awaiting_retry)

    def admit(self, call: PendingCall) -> None:
        self._queue.append(call)
        self._metrics.record_offered_call()

    def _page_one(self, call: PendingCall, cell: int, time: int) -> None:
        """Send one page to ``cell``; collect any answering participants."""
        call.cells_paged += 1
        delivered = True
        if self._injector is not None:
            delivered = self._injector.page_delivered(cell, time)
        if not delivered:
            return
        for local in sorted(call.remaining):
            device = call.remaining[local]
            if self._device_cell(device) == cell:
                call.found_cells[local] = cell
                del call.remaining[local]
                self._on_found(device, cell, time)

    def _escalate(self, call: PendingCall, time: int, engine: EventEngine) -> bool:
        """Append the next phase after an exhausted one.

        Returns True when a new phase was (or will be) added — retries are
        scheduled as engine ``retry`` events after their backoff wait, so
        a retry *competes for slots like a fresh page* when it fires.
        """
        if (
            self._injector is not None
            and self._recovery is not None
            and call.retries_used < self._recovery.max_retries
        ):
            call.retries_used += 1
            wait = self._recovery.backoff(call.retries_used)
            self._queue.remove(call)
            self._awaiting_retry.append(call)
            engine.schedule(Event(time + wait, RETRY, call))
            return True
        if not call.used_fallback:
            # The network-wide sweep: devices may have moved out of (or
            # around) the candidate set while the call sat in the queue.
            call.used_fallback = True
            call.phases.append(
                _Phase(PHASE_FALLBACK, list(range(self._resource.num_cells)))
            )
            return True
        return False

    def on_retry(self, event: Event, engine: EventEngine) -> None:
        """A backoff wait ended: re-admit the call with a re-page phase."""
        call = event.payload
        assert isinstance(call, PendingCall)
        self._awaiting_retry.remove(call)
        if not call.remaining:  # everyone answered before the retry fired
            self._complete(call, event.time)
            return
        call.phases.append(_Phase(PHASE_RETRY, list(call.candidate_cells)))
        self._queue.append(call)

    def _complete(self, call: PendingCall, time: int) -> None:
        if self._on_complete is not None:
            self._on_complete(call, time)
        latency = time - call.request.time
        self._metrics.record_call(
            CallRecord(
                time=call.request.time,
                participants=call.request.size,
                cells_paged=call.cells_paged,
                rounds_used=call.rounds_used,
                used_fallback=call.used_fallback,
                failed_devices=len(call.remaining),
                retries=call.retries_used,
                setup_latency=latency,
            )
        )
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("cellnet.calls")
            tracer.count("cellnet.cells_paged", call.cells_paged)
            tracer.observe("cellnet.rounds_to_find", call.rounds_used)
            tracer.observe("engine.setup_latency", latency)
            if call.remaining:
                tracer.count("cellnet.degraded_calls")

    def _block(self, call: PendingCall, time: int) -> None:
        self._metrics.record_blocked_call(time - call.request.time)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("engine.blocked_calls")

    def serve_round(self, time: int, engine: EventEngine) -> None:
        """One shared paging round: every pending call, FIFO, slot-limited."""
        resource = self._resource
        resource.begin_round()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.observe("engine.queue_depth", self.active_calls)
        finished: List[PendingCall] = []
        blocked: List[PendingCall] = []
        for call in list(self._queue):
            phase = call.current_phase
            if phase is None:  # freshly admitted with an empty plan
                finished.append(call)
                continue
            sent = 0
            still_pending: List[int] = []
            for cell in phase.pending:
                if not call.remaining:
                    break  # everyone answered; stop paging mid-group
                if resource.acquire(cell):
                    sent += 1
                    self._page_one(call, cell, time)
                else:
                    still_pending.append(cell)
            phase.pending = still_pending
            if not call.remaining:
                call.rounds_used += 1
                finished.append(call)
                continue
            if sent == 0:
                call.waited += 1
                self._metrics.record_deferred_step()
                if tracer.enabled:
                    tracer.count("engine.deferred_steps")
                if call.waited > self._max_wait:
                    blocked.append(call)
                continue
            call.rounds_used += 1
            if not phase.pending:
                call.phase_index += 1
                if call.current_phase is None and not self._escalate(
                    call, time, engine
                ):
                    finished.append(call)  # degraded: budget exhausted
        for call in finished:
            if call in self._queue:
                self._queue.remove(call)
            self._complete(call, time)
        for call in blocked:
            self._queue.remove(call)
            self._block(call, time)
        used = resource.used_total
        if tracer.enabled:
            if used:
                tracer.count("engine.pages_sent", used)
            tracer.observe("engine.slot_occupancy", used)
        self._metrics.record_occupancy(resource.occupancy_snapshot())

    def drain(self, time: int) -> None:
        """Horizon reached: complete whatever is still in flight, degraded.

        Covers the FIFO queue *and* calls parked on a retry backoff whose
        ``retry`` event falls past the horizon — every offered call ends
        as exactly one completed or blocked call.
        """
        for call in self._queue:
            self._complete(call, time)
        self._queue.clear()
        for call in self._awaiting_retry:
            self._complete(call, time)
        self._awaiting_retry.clear()


def plan_pending_call(
    request: ConferenceCallRequest,
    priors: Sequence[np.ndarray],
    candidate_cells: Sequence[int],
    max_rounds: int,
    *,
    planner: Callable[..., object],
    blanket: bool = False,
) -> PendingCall:
    """Plan one call's oblivious page schedule for contention execution.

    ``blanket`` short-circuits to a single all-candidates group (the GSM
    baseline).  Otherwise the registry ``planner`` plans the paper's
    strategy over the candidate sub-instance; groups come out as global
    cell ids.  Adaptive replanning is deliberately not offered here: under
    contention (and possibly faults) a non-answer may mean a lost or
    deferred page, so treating it as proof of absence would be unsound —
    the same restriction :class:`~repro.cellnet.faults.ResilientPager`
    applies.
    """
    cells = tuple(int(cell) for cell in candidate_cells)
    remaining = {
        local: device for local, device in enumerate(request.participants)
    }
    if blanket:
        groups: List[List[int]] = [list(cells)]
    else:
        instance, cells = build_sub_instance(priors, cells, max_rounds)
        strategy = planner(instance).strategy
        groups = [
            [cells[j] for j in sorted(group)] for group in strategy.groups
        ]
    phases = [_Phase(PHASE_STRATEGY, group) for group in groups if group]
    return PendingCall(
        request=request,
        candidate_cells=cells,
        phases=phases,
        remaining=remaining,
    )
