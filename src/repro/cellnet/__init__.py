"""A synthetic cellular network: the substrate the paper's optimizer serves.

Hexagonal cell geometry, mobility models, GSM-style location areas and
reporting policies, a location registry, and a time-stepped simulator whose
conference-call searches are driven by the paper's paging strategies.
"""

from __future__ import annotations

from .calls import ARRIVAL_MODES, ConferenceCallRequest, PoissonConferenceCalls
from .database import LocationRegistry, RegistryRecord
from .engine import (
    EVENT_PRIORITIES,
    ChannelResource,
    ChannelScheduler,
    Event,
    EventEngine,
    PendingCall,
    plan_pending_call,
)
from .faults import (
    DEFAULT_RECOVERY,
    CellOutage,
    FaultInjector,
    FaultModel,
    RecoveryPolicy,
    ResilientPager,
)
from .geometry import HEX_DIRECTIONS, Hex, hex_disk, hex_rectangle, ring
from .location_areas import LocationAreaPlan
from .metrics import CallRecord, LinkUsageMetrics
from .mobility import (
    GravityMobility,
    MobilityModel,
    RandomWalk,
    RandomWaypoint,
    generate_trace,
    stationary_distribution,
)
from .planning import (
    AreaSweepPoint,
    best_operating_point,
    sweep_location_area_sizes,
)
from .paging import (
    PAGER_FACTORIES,
    AdaptivePager,
    BlanketPager,
    CostAwarePager,
    HeuristicPager,
    PagingOutcome,
    build_sub_instance,
    page_with_strategy,
)
from .render import (
    render_cell_map,
    render_location_areas,
    render_strategy,
    strategy_summary,
)
from .reporting import (
    AlwaysReport,
    DistanceReport,
    LACrossingReport,
    MoveContext,
    NeverReport,
    ReportingPolicy,
    TimerReport,
)
from .simulator import (
    CellularSimulator,
    DeviceState,
    SimulationConfig,
    SimulationReport,
)
from .timevary import (
    REGISTRATION_KINDS,
    BeliefPropagator,
    HMYResult,
    HMYStep,
    PolicyEvaluation,
    RegistrationCycle,
    distance_cycle,
    empirical_transition_matrix,
    evaluate_registration,
    gravity_transition_matrix,
    hmy_fixed_point,
    random_walk_transition_matrix,
    registration_cycle,
    stationary_from_matrix,
    timer_cycle,
    transition_matrix,
    validate_transition_matrix,
)
from .topology import CellTopology

__all__ = [
    "ARRIVAL_MODES",
    "DEFAULT_RECOVERY",
    "EVENT_PRIORITIES",
    "HEX_DIRECTIONS",
    "PAGER_FACTORIES",
    "AdaptivePager",
    "AlwaysReport",
    "AreaSweepPoint",
    "best_operating_point",
    "sweep_location_area_sizes",
    "BlanketPager",
    "CallRecord",
    "CellOutage",
    "CellTopology",
    "ChannelResource",
    "ChannelScheduler",
    "CostAwarePager",
    "CellularSimulator",
    "ConferenceCallRequest",
    "DeviceState",
    "DistanceReport",
    "Event",
    "EventEngine",
    "FaultInjector",
    "FaultModel",
    "GravityMobility",
    "Hex",
    "HeuristicPager",
    "LACrossingReport",
    "LinkUsageMetrics",
    "LocationAreaPlan",
    "LocationRegistry",
    "MobilityModel",
    "MoveContext",
    "NeverReport",
    "PagingOutcome",
    "PendingCall",
    "PoissonConferenceCalls",
    "plan_pending_call",
    "RandomWalk",
    "RandomWaypoint",
    "RecoveryPolicy",
    "RegistryRecord",
    "ReportingPolicy",
    "ResilientPager",
    "REGISTRATION_KINDS",
    "BeliefPropagator",
    "HMYResult",
    "HMYStep",
    "PolicyEvaluation",
    "RegistrationCycle",
    "SimulationConfig",
    "SimulationReport",
    "TimerReport",
    "build_sub_instance",
    "distance_cycle",
    "empirical_transition_matrix",
    "evaluate_registration",
    "generate_trace",
    "gravity_transition_matrix",
    "hmy_fixed_point",
    "random_walk_transition_matrix",
    "registration_cycle",
    "stationary_from_matrix",
    "timer_cycle",
    "transition_matrix",
    "validate_transition_matrix",
    "hex_disk",
    "hex_rectangle",
    "page_with_strategy",
    "render_cell_map",
    "render_location_areas",
    "render_strategy",
    "ring",
    "strategy_summary",
    "stationary_distribution",
]
