"""Location-update (reporting) policies.

The reporting/paging trade-off of Section 1.1: every report costs one uplink
wireless message but shrinks the search space of later pagings.  Policies:

* :class:`NeverReport` — pure paging (search the whole system on a call).
* :class:`AlwaysReport` — report every cell change (paging becomes free).
* :class:`LACrossingReport` — the GSM MAP / IS-41 standard: report when the
  broadcast location-area id changes.
* :class:`DistanceReport` — report after drifting ``k`` hops from the last
  reported cell [Bar-Noy & Kessler 1993 family].
* :class:`TimerReport` — report every ``T`` time steps regardless of motion.

A policy only decides that an update *is sent*; whether it arrives is the
network's business.  Under fault injection
(:class:`~repro.cellnet.faults.FaultModel` ``update_loss``) the simulator
still charges the uplink message to the metrics but may drop it before the
registry, so the system's belief goes stale exactly as a lossy uplink makes
it in the field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from ..errors import SimulationError
from .location_areas import LocationAreaPlan
from .topology import CellTopology


@dataclass(frozen=True)
class MoveContext:
    """Everything a policy may inspect when a device moves."""

    device: int
    old_cell: int
    new_cell: int
    time: int
    last_reported_cell: Optional[int]
    steps_since_report: int


class ReportingPolicy(Protocol):
    """Decides whether a move triggers a location-update message."""

    def should_report(self, move: MoveContext) -> bool: ...


class NeverReport:
    """Devices stay silent; calls must search everywhere."""

    def should_report(self, move: MoveContext) -> bool:
        return False


class AlwaysReport:
    """Report every cell change (maximum uplink traffic, zero search)."""

    def should_report(self, move: MoveContext) -> bool:
        return move.old_cell != move.new_cell


class LACrossingReport:
    """The GSM MAP / IS-41 standard policy (paper Section 1.1)."""

    def __init__(self, plan: LocationAreaPlan) -> None:
        self._plan = plan

    def should_report(self, move: MoveContext) -> bool:
        return self._plan.crosses_boundary(move.old_cell, move.new_cell)


class DistanceReport:
    """Report when ``hop_distance(last_reported, here) >= threshold``."""

    def __init__(self, topology: CellTopology, threshold: int) -> None:
        if threshold < 1:
            raise SimulationError("distance threshold must be at least 1")
        self._topology = topology
        self._threshold = threshold

    def should_report(self, move: MoveContext) -> bool:
        if move.last_reported_cell is None:
            return True
        return (
            self._topology.hop_distance(move.last_reported_cell, move.new_cell)
            >= self._threshold
        )


class TimerReport:
    """Report every ``period`` steps (movement-independent heartbeat)."""

    def __init__(self, period: int) -> None:
        if period < 1:
            raise SimulationError("period must be at least 1")
        self._period = period

    def should_report(self, move: MoveContext) -> bool:
        return move.steps_since_report >= self._period
