"""The discrete-time cellular-system simulator (the paper's Section 1 setting).

Each time step: devices move under their mobility models, the reporting
policy decides which send location updates (uplink cost), and conference-call
requests arrive and trigger searches (downlink paging cost).  Per-device
location distributions are *estimated online* from observed positions —
exactly the profile-based approach the paper cites [15, 16] — and feed the
paging optimizer restricted to the registry's candidate set.

This is the substrate for experiment E13: the end-to-end comparison of
blanket LA paging (the GSM MAP / IS-41 standard) against the paper's
delay-constrained heuristic and its adaptive variant.

``SimulationConfig.faults`` switches on the resilience layer
(:mod:`repro.cellnet.faults`): lost pages, cell outages, lost location
updates, and stale-registry windows, with bounded retry/backoff recovery
inside the same delay budget ``d``.  A ``None`` (or all-zero) fault model
keeps every code path and rng draw identical to the fault-free engine.

Since the contention refactor, :class:`CellularSimulator` is a thin façade
over the event-driven engine (:mod:`repro.cellnet.engine`): ``run()``
schedules ``movement`` and ``arrival`` events through an
:class:`~repro.cellnet.engine.EventEngine` instead of iterating a loop
body.  With ``channel_capacity=None`` (the default) the schedule replays
the legacy step loop event for event — bit-identical rng streams and
reports, pinned by ``tests/cellnet/test_legacy_equivalence.py``.  A finite
``channel_capacity`` switches on the shared per-cell paging channels:
concurrent calls compete for ``channel_capacity * carriers`` page slots
per cell per round through a :class:`~repro.cellnet.engine.ChannelScheduler`,
and the report grows blocking probability, setup-latency percentiles, and
a channel-occupancy histogram (docs/contention.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..obs.events import current_tracer
from ..obs.instrument import span
from ..solvers import get_solver
from .calls import ARRIVAL_MODES, ConferenceCallRequest, PoissonConferenceCalls
from .database import LocationRegistry
from .engine import (
    ARRIVAL,
    MOVEMENT,
    OUTAGE_END,
    OUTAGE_START,
    PAGING_ROUND,
    RETRY,
    ChannelResource,
    ChannelScheduler,
    Event,
    EventEngine,
    plan_pending_call,
)
from .faults import DEFAULT_RECOVERY, FaultInjector, FaultModel, RecoveryPolicy, ResilientPager
from .location_areas import LocationAreaPlan
from .metrics import CallRecord, LinkUsageMetrics
from .mobility import MobilityModel
from .paging import PAGER_FACTORIES, PagingOutcome
from .timevary import BeliefPropagator, transition_matrix
from .reporting import (
    AlwaysReport,
    DistanceReport,
    LACrossingReport,
    MoveContext,
    NeverReport,
    ReportingPolicy,
    TimerReport,
)
from .topology import CellTopology


@dataclass
class SimulationConfig:
    """Knobs of one simulation run."""

    horizon: int = 1_000
    call_rate: float = 0.05
    max_paging_rounds: int = 3
    reporting: str = "la"  # never | always | la | distance | timer
    pager: str = "heuristic"  # blanket | heuristic | adaptive
    distance_threshold: int = 2
    timer_period: int = 20
    prior_smoothing: float = 1.0
    #: "online" learns per-device profiles from observed positions (the
    #: paper's cited profile-based estimation); "uniform" never learns —
    #: the ablation that shows what the profiles are worth; "conditional"
    #: evolves the belief from each device's last *successful* report via
    #: matrix-power propagation of its mobility kernel (docs/timevary.md).
    prior_mode: str = "online"
    #: trace length for empirically-estimated transition matrices in
    #: ``prior_mode="conditional"`` (stateful models without a closed form).
    transition_samples: int = 4_000
    #: mean call length in steps; while on a call a device talks to its base
    #: station continuously, so the system tracks its cell exactly (paper
    #: Section 1.1).  0 disables durations (calls are instantaneous).
    mean_call_duration: int = 0
    #: declarative fault model (docs/robustness.md); ``None`` — and any
    #: all-zero model — keeps the fault-free engine bit-identical to the
    #: pre-faults simulator on the same seed.
    faults: Optional[FaultModel] = None
    #: recovery behavior when faults are active (defaults to
    #: ``faults.DEFAULT_RECOVERY``); ignored without an active fault model.
    recovery: Optional[RecoveryPolicy] = None
    #: page slots per cell per round *per carrier*; ``None`` = unlimited
    #: channels (the legacy bit-identical path).  A finite value switches
    #: on the shared-channel contention engine (docs/contention.md).
    channel_capacity: Optional[int] = None
    #: parallel paging carriers per cell (Mostafa et al.): a cell's total
    #: budget is ``channel_capacity * carriers`` slots per round.
    carriers: int = 1
    #: steps a pending call may be fully starved of slots before it is
    #: blocked and dropped (the blocking-probability numerator).
    max_wait: int = 8
    #: per-step call arrivals: "bernoulli" (≤ 1/step, the legacy stream)
    #: or "poisson" (a true Poisson count, offered load may exceed 1/step).
    arrival_mode: str = "bernoulli"
    #: keep per-call records in the metrics (False: aggregate counters
    #: only — bounded memory on long runs, identical summaries).
    record_calls: bool = True

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise SimulationError("horizon must be positive")
        if self.max_paging_rounds < 1:
            raise SimulationError("max_paging_rounds must be positive")
        if self.mean_call_duration < 0:
            raise SimulationError("mean_call_duration must be non-negative")
        if self.pager not in PAGER_FACTORIES:
            raise SimulationError(
                f"unknown pager {self.pager!r}; choose from {sorted(PAGER_FACTORIES)}"
            )
        if self.reporting not in ("never", "always", "la", "distance", "timer"):
            raise SimulationError(f"unknown reporting policy {self.reporting!r}")
        if self.prior_mode not in ("online", "uniform", "conditional"):
            raise SimulationError(f"unknown prior mode {self.prior_mode!r}")
        if self.transition_samples < 1:
            raise SimulationError("transition_samples must be positive")
        if self.faults is not None and not isinstance(self.faults, FaultModel):
            raise SimulationError("faults must be a cellnet.faults.FaultModel")
        if self.recovery is not None and not isinstance(self.recovery, RecoveryPolicy):
            raise SimulationError("recovery must be a cellnet.faults.RecoveryPolicy")
        if self.channel_capacity is not None and self.channel_capacity < 1:
            raise SimulationError("channel_capacity must be at least 1 slot")
        if self.carriers < 1:
            raise SimulationError("carriers must be at least 1")
        if self.max_wait < 0:
            raise SimulationError("max_wait must be non-negative")
        if self.arrival_mode not in ARRIVAL_MODES:
            raise SimulationError(
                f"unknown arrival mode {self.arrival_mode!r}; "
                f"choose from {ARRIVAL_MODES}"
            )

    @property
    def faults_active(self) -> bool:
        """True when a non-trivial fault model is configured."""
        return self.faults is not None and not self.faults.is_zero

    @property
    def contention_active(self) -> bool:
        """True when calls share finite per-cell paging channels."""
        return self.channel_capacity is not None


@dataclass
class DeviceState:
    """The simulator's ground truth for one device."""

    cell: int
    model: MobilityModel
    last_reported_cell: int
    steps_since_report: int = 0
    visit_counts: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: on an active call through this time step (exclusive); 0 = idle
    busy_until: int = 0


@dataclass(frozen=True)
class SimulationReport:
    """Everything a run produced."""

    metrics: LinkUsageMetrics
    config: SimulationConfig
    num_devices: int
    num_cells: int

    def summary(self) -> Dict[str, float]:
        out = self.metrics.summary()
        out["devices"] = float(self.num_devices)
        out["cells"] = float(self.num_cells)
        return out


class CellularSimulator:
    """Time-stepped mobile-network simulation with pluggable policies."""

    def __init__(
        self,
        topology: CellTopology,
        plan: LocationAreaPlan,
        mobility_models: Sequence[MobilityModel],
        config: SimulationConfig,
        *,
        rng: np.random.Generator,
        initial_cells: Optional[Sequence[int]] = None,
    ) -> None:
        self._topology = topology
        self._plan = plan
        self._config = config
        self._rng = rng
        self._registry = LocationRegistry()
        self._metrics = LinkUsageMetrics(
            record_calls=config.record_calls,
            contention=config.contention_active,
        )
        self._pager = PAGER_FACTORIES[config.pager]()
        self._policy = self._build_policy()
        # A zero fault model is bypassed entirely: no injector, no extra rng
        # draws, bit-identical runs to the fault-free engine on the same seed.
        self._injector: Optional[FaultInjector] = None
        self._resilient: Optional[ResilientPager] = None
        if config.faults_active:
            assert config.faults is not None
            self._injector = FaultInjector(config.faults, rng, self._metrics)
            self._resilient = ResilientPager(
                config.pager,
                self._injector,
                config.recovery if config.recovery is not None else DEFAULT_RECOVERY,
            )
        self._calls = PoissonConferenceCalls(
            config.call_rate, len(mobility_models), mode=config.arrival_mode
        ) if len(mobility_models) >= 2 else None
        # Shared-channel contention: a finite channel_capacity switches the
        # engine from the synchronous legacy schedule to queued setup over
        # per-cell page slots.  The planner is the registry solver matching
        # the pager; "adaptive" plans its oblivious heuristic strategy (a
        # non-answer under contention may be a deferred or lost page, so
        # eliminating cells on silence would be unsound) and "blanket"
        # bypasses planning entirely inside plan_pending_call.
        self._resource: Optional[ChannelResource] = None
        self._scheduler: Optional[ChannelScheduler] = None
        if config.contention_active:
            assert config.channel_capacity is not None
            self._resource = ChannelResource(
                topology.num_cells, config.channel_capacity, config.carriers
            )
            solver_name = (
                "heuristic"
                if config.pager in ("adaptive", "blanket")
                else config.pager
            )
            self._planner = get_solver(solver_name)
            self._scheduler = ChannelScheduler(
                self._resource,
                self._metrics,
                max_wait=config.max_wait,
                device_cell=self.device_cell,
                on_found=self._on_found,
                injector=self._injector,
                recovery=(
                    (config.recovery if config.recovery is not None
                     else DEFAULT_RECOVERY)
                    if self._injector is not None
                    else None
                ),
                on_complete=self._on_call_complete,
            )
        # Conditional priors need each device's one-step kernel; deriving it
        # here (and only here) keeps "online"/"uniform" runs bit-identical to
        # the pre-timevary engine on the same seed — empirical estimation is
        # the only path that consumes rng draws.  Shared model instances
        # share one propagator (the kernel is a property of the model).
        self._propagators: List[Optional[BeliefPropagator]] = []
        if config.prior_mode == "conditional":
            by_model: Dict[int, BeliefPropagator] = {}
            for model in mobility_models:
                key = id(model)
                if key not in by_model:
                    by_model[key] = BeliefPropagator(
                        transition_matrix(
                            model,
                            topology,
                            rng=rng,
                            samples=config.transition_samples,
                        )
                    )
                    reset = getattr(model, "reset", None)
                    if callable(reset):
                        # stateful models replan from scratch after the
                        # estimation trace, so per-device paths stay coherent
                        reset()
                self._propagators.append(by_model[key])
        else:
            self._propagators = [None] * len(mobility_models)

        c = topology.num_cells
        self._devices: List[DeviceState] = []
        for index, model in enumerate(mobility_models):
            if initial_cells is not None:
                cell = int(initial_cells[index])
            else:
                cell = int(rng.integers(c))
            state = DeviceState(
                cell=cell,
                model=model,
                last_reported_cell=cell,
                visit_counts=np.full(c, config.prior_smoothing, dtype=float),
            )
            state.visit_counts[cell] += 1.0
            self._devices.append(state)
            self._registry.register(index, plan.area_of(cell), cell, time=0)
            self._metrics.record_registration()

    # ------------------------------------------------------------------
    def _build_policy(self) -> ReportingPolicy:
        config = self._config
        if config.reporting == "never":
            return NeverReport()
        if config.reporting == "always":
            return AlwaysReport()
        if config.reporting == "la":
            return LACrossingReport(self._plan)
        if config.reporting == "distance":
            return DistanceReport(self._topology, config.distance_threshold)
        return TimerReport(config.timer_period)

    # ------------------------------------------------------------------
    def _candidate_cells(self, device: int, time: int) -> Tuple[int, ...]:
        """Where the system will look, given its belief about the device."""
        record = self._registry.lookup(device)
        stale_after = (
            self._injector.model.stale_after if self._injector is not None else None
        )
        confirmed = record.confirmed_fix(time=time, stale_after=stale_after)
        if confirmed is not None:
            return (confirmed,)
        if record.confirmed_cell is not None:
            # a fix existed but aged out of the staleness window
            self._metrics.record_stale_lookup()
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("faults.stale_lookups")
        config = self._config
        if config.reporting == "always":
            assert record.reported_cell is not None
            return (record.reported_cell,)
        if config.reporting == "la":
            return self._plan.cells_of(record.reported_area)
        if config.reporting == "distance":
            assert record.reported_cell is not None
            radius = config.distance_threshold
            # DistanceReport fires at hop_distance >= threshold, so between
            # delivered reports the device is provably strictly inside the
            # ring; paging the boundary ring would be wasted bandwidth.  The
            # fallback sweep stays as the safety net under update loss.
            return tuple(
                cell
                for cell in range(self._topology.num_cells)
                if self._topology.hop_distance(record.reported_cell, cell) < radius
            )
        # never / timer: no usable bound — the whole network is a candidate.
        return tuple(range(self._topology.num_cells))

    def _prior(self, device: int, time: int) -> np.ndarray:
        if self._config.prior_mode == "uniform":
            c = self._topology.num_cells
            return np.full(c, 1.0 / c)
        if self._config.prior_mode == "conditional":
            propagator = self._propagators[device]
            record = self._registry.lookup(device)
            if propagator is not None and record.reported_cell is not None:
                # Evolve from the last *successful* report (or confirmed
                # fix): the registry only advances on delivered updates, so
                # under update loss the belief correctly keeps aging from
                # the last message that actually arrived.
                return propagator.distribution(
                    record.reported_cell, max(0, record.age(time))
                )
        counts = self._devices[device].visit_counts
        return counts / counts.sum()

    # ------------------------------------------------------------------
    def _step_movement(self, time: int) -> None:
        for index, state in enumerate(self._devices):
            new_cell = state.model.step(state.cell, self._rng)
            moved = new_cell != state.cell
            old_cell = state.cell
            state.cell = new_cell
            state.steps_since_report += 1
            state.visit_counts[new_cell] += 1.0
            if moved:
                if time < state.busy_until:
                    # Mid-call handover: the base stations track the device,
                    # so the system's fix stays exact (paper Section 1.1).
                    self._registry.confirm(
                        index, new_cell, self._plan.area_of(new_cell), time
                    )
                else:
                    self._registry.invalidate_confirmation(index)
            move = MoveContext(
                device=index,
                old_cell=old_cell,
                new_cell=new_cell,
                time=time,
                last_reported_cell=state.last_reported_cell,
                steps_since_report=state.steps_since_report,
            )
            if self._policy.should_report(move):
                # The device always pays the uplink message and believes it
                # reported; under fault injection the message may be lost
                # before the registry, whose belief then goes stale.
                self._metrics.record_report()
                state.last_reported_cell = new_cell
                state.steps_since_report = 0
                if self._injector is None or self._injector.update_delivered(time):
                    self._registry.report(
                        index, self._plan.area_of(new_cell), new_cell, time
                    )

    def _handle_call(self, request: ConferenceCallRequest) -> PagingOutcome:
        participants = request.participants
        # The search space is the union of the per-device candidate sets: the
        # system must locate every participant, and Lemma 2.1's model treats
        # the union as one location area with per-device conditional priors.
        candidate_union: List[int] = sorted(
            {
                cell
                for device in participants
                for cell in self._candidate_cells(device, request.time)
            }
        )
        priors = [self._prior(device, request.time) for device in participants]
        true_cells = [self._devices[device].cell for device in participants]
        if self._resilient is None:
            outcome = self._pager.search(
                priors,
                candidate_union,
                true_cells,
                self._config.max_paging_rounds,
                self._topology.num_cells,
            )
        else:
            with span(
                "faults.injected",
                time=request.time,
                participants=len(participants),
            ):
                outcome = self._resilient.search(
                    priors,
                    candidate_union,
                    true_cells,
                    self._config.max_paging_rounds,
                    self._topology.num_cells,
                    time=request.time,
                )
        duration = 0
        if self._config.mean_call_duration > 0:
            duration = 1 + int(
                self._rng.geometric(1.0 / self._config.mean_call_duration)
            )
        for device, cell in outcome.found_cells.items():
            actual = participants[device]
            self._registry.confirm(
                actual, cell, self._plan.area_of(cell), request.time
            )
            if duration:
                self._devices[actual].busy_until = max(
                    self._devices[actual].busy_until, request.time + duration
                )
        self._metrics.record_call(
            CallRecord(
                time=request.time,
                participants=len(participants),
                cells_paged=outcome.cells_paged,
                rounds_used=outcome.rounds_used,
                used_fallback=outcome.used_fallback,
                failed_devices=len(outcome.failed_devices),
                retries=outcome.retries_used,
            )
        )
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("cellnet.calls")
            tracer.count("cellnet.cells_paged", outcome.cells_paged)
            tracer.observe("cellnet.rounds_to_find", outcome.rounds_used)
            tracer.observe("cellnet.cells_paged_per_call", outcome.cells_paged)
            if outcome.used_fallback:
                tracer.count("cellnet.fallback_searches")
            if outcome.retries_used:
                tracer.count("cellnet.retries", outcome.retries_used)
            if self._resilient is not None:
                tracer.observe(
                    "cellnet.failed_devices_per_call", len(outcome.failed_devices)
                )
                if outcome.failed_devices:
                    tracer.count("cellnet.degraded_calls")
        return outcome

    # -- engine wiring --------------------------------------------------
    def _build_engine(self) -> EventEngine:
        """Wire the event-driven engine for this run.

        The legacy schedule is one ``movement`` then one ``arrival`` event
        per step, each handler re-scheduling itself — event for event the
        old loop body, so rng draws happen in the exact historic order.
        Contention adds a shared ``paging-round`` event after the arrivals
        of each step, serving every pending call against the
        :class:`~repro.cellnet.engine.ChannelResource`.
        """
        config = self._config
        horizon = config.horizon
        engine = EventEngine()

        def on_movement(event: Event) -> None:
            self._step_movement(event.time)
            if event.time < horizon:
                engine.schedule(Event(event.time + 1, MOVEMENT))

        def on_arrival(event: Event) -> None:
            if self._calls is not None:
                for request in self._calls.arrivals(event.time, self._rng):
                    if self._scheduler is None:
                        self._handle_call(request)
                    else:
                        self._admit_call(request)
            if event.time < horizon:
                engine.schedule(Event(event.time + 1, ARRIVAL))

        engine.on(MOVEMENT, on_movement)
        engine.on(ARRIVAL, on_arrival)
        engine.schedule(Event(1, MOVEMENT))
        engine.schedule(Event(1, ARRIVAL))

        if self._scheduler is not None:
            scheduler = self._scheduler

            def on_paging(event: Event) -> None:
                scheduler.serve_round(event.time, engine)
                if event.time < horizon:
                    engine.schedule(Event(event.time + 1, PAGING_ROUND))

            engine.on(PAGING_ROUND, on_paging)
            engine.on(RETRY, lambda event: scheduler.on_retry(event, engine))
            engine.schedule(Event(1, PAGING_ROUND))

        if config.faults is not None and config.faults.outages:
            resource = self._resource
            tracer = current_tracer()

            def on_outage(event: Event) -> None:
                cell, down = event.payload  # type: ignore[misc]
                if resource is not None:
                    resource.set_down(cell, down)
                if tracer.enabled:
                    tracer.count(
                        "engine.outage_transitions", 1 if down else 0
                    )

            engine.on(OUTAGE_START, on_outage)
            engine.on(OUTAGE_END, on_outage)
            for outage in config.faults.outages:
                if outage.start <= horizon:
                    engine.schedule(
                        Event(max(1, outage.start), OUTAGE_START, (outage.cell, True))
                    )
                if outage.end <= horizon:
                    engine.schedule(
                        Event(max(1, outage.end), OUTAGE_END, (outage.cell, False))
                    )
        return engine

    def _admit_call(self, request: ConferenceCallRequest) -> None:
        """Plan one arriving call and queue it on the shared channels."""
        assert self._scheduler is not None
        participants = request.participants
        candidate_union = sorted(
            {
                cell
                for device in participants
                for cell in self._candidate_cells(device, request.time)
            }
        )
        priors = [self._prior(device, request.time) for device in participants]
        rounds = self._config.max_paging_rounds
        if self._injector is not None:
            recovery = (
                self._config.recovery
                if self._config.recovery is not None
                else DEFAULT_RECOVERY
            )
            rounds = recovery.planning_rounds(rounds)
        call = plan_pending_call(
            request,
            priors,
            candidate_union,
            rounds,
            planner=self._planner,
            blanket=self._config.pager == "blanket",
        )
        self._scheduler.admit(call)

    def _on_found(self, device: int, cell: int, time: int) -> None:
        """A paged participant answered: confirm its fix in the registry."""
        self._registry.confirm(device, cell, self._plan.area_of(cell), time)

    def _on_call_complete(self, call, time: int) -> None:
        """Draw the call duration and mark every located participant busy."""
        if self._config.mean_call_duration <= 0 or not call.found_cells:
            return
        duration = 1 + int(
            self._rng.geometric(1.0 / self._config.mean_call_duration)
        )
        for local in sorted(call.found_cells):
            device = call.request.participants[local]
            self._devices[device].busy_until = max(
                self._devices[device].busy_until, time + duration
            )

    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Advance the system for ``horizon`` steps and report usage."""
        with span(
            "cellnet.run",
            horizon=self._config.horizon,
            devices=len(self._devices),
            cells=self._topology.num_cells,
            pager=self._config.pager,
            contention=self._config.contention_active,
        ):
            engine = self._build_engine()
            engine.run(self._config.horizon)
            if self._scheduler is not None:
                self._scheduler.drain(self._config.horizon)
        return SimulationReport(
            metrics=self._metrics,
            config=self._config,
            num_devices=len(self._devices),
            num_cells=self._topology.num_cells,
        )

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> LinkUsageMetrics:
        return self._metrics

    @property
    def registry(self) -> LocationRegistry:
        return self._registry

    def device_cell(self, device: int) -> int:
        return self._devices[device].cell

    def estimated_prior(self, device: int, time: int = 0) -> np.ndarray:
        """The current belief (for estimation-quality checks).

        ``time`` only matters in ``prior_mode="conditional"``, where it sets
        the age of the last report the belief is evolved from.
        """
        return self._prior(device, time)
