"""Fault injection and resilience for the cellular substrate.

The paper's model (Section 2, Lemma 2.1) assumes a perfect network: every
paging message is delivered, every paged device answers within its round,
and the location registry always reflects the latest report.  Production
paging systems enjoy none of that — pages are lost on congested downlinks,
cells go down for maintenance or failure, and location registries serve
stale fixes (the imperfect-information setting of the mobility-tracking
literature PAPERS.md collects, e.g. Rose & Yates' paging-under-delay model).

This module makes those failure modes *representable and recoverable*:

* :class:`FaultModel` / :class:`CellOutage` — a declarative, validated
  description of the faults to inject: a base per-page loss probability,
  per-cell overrides, scheduled cell outages, location-update (uplink) loss,
  and a registry staleness window after which confirmed fixes are
  distrusted.
* :class:`RecoveryPolicy` — bounded re-page retries with exponential
  backoff over rounds, plus an optional per-call round timeout.
* :class:`FaultInjector` — draws concrete fault events from the simulation's
  seeded ``np.random.Generator`` (so a faulty run is reproducible
  byte-for-byte) and accounts for them in
  :class:`~repro.cellnet.metrics.LinkUsageMetrics` and the active
  :mod:`repro.obs` tracer.
* :class:`ResilientPager` — plans with the paper's machinery (Fig. 1
  heuristic, or blanket paging) and executes the plan under faults: lost
  pages go unanswered, retries re-page the candidate set after backoff
  waits, and a final complement sweep covers devices the registry mislaid.

Every recovery round — paging, backoff wait, and fallback sweep alike — is
counted against the delay budget ``d`` (``SimulationConfig.max_paging_rounds``),
so a resilient search **never pages past round d**; when the budget runs out
the call degrades gracefully into a partial conference and the unreachable
devices are reported in ``PagingOutcome.failed_devices``.  At fault rate
zero the simulator bypasses this engine entirely, so ``EP`` stays exactly
comparable to Lemma 2.1's closed form.

One deliberate restriction: under faults the ``adaptive`` pager plans the
*oblivious* heuristic strategy.  Section 5's conditional replanning treats a
non-answer as proof of absence, which is unsound when the non-answer may be
a lost page; the oblivious plan keeps the executed strategy honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.strategy import Strategy
from ..errors import SimulationError
from ..obs.instrument import count
from ..solvers import get_solver
from .metrics import LinkUsageMetrics
from .paging import PagingOutcome, build_sub_instance


@dataclass(frozen=True)
class CellOutage:
    """One scheduled outage: ``cell`` is down for ``start <= time < end``."""

    cell: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.cell < 0:
            raise SimulationError("outage cell must be a valid cell id")
        if self.start < 0 or self.end < self.start:
            raise SimulationError("outage needs 0 <= start <= end")

    def active(self, time: int) -> bool:
        return self.start <= time < self.end


def _validate_probability(name: str, value: float) -> None:
    if not 0.0 <= float(value) <= 1.0:
        raise SimulationError(f"{name} must lie in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultModel:
    """Declarative fault description; all-zero by construction default.

    ``page_loss`` is the base probability that one downlink paging message
    to one cell is lost; ``cell_page_loss`` overrides it per cell id.
    ``update_loss`` applies to uplink location-update messages: a lost
    update costs the device its wireless message but never reaches the
    registry, which therefore serves stale beliefs.  ``stale_after`` ages
    out *confirmed* fixes: a fix older than that many steps is distrusted
    and the search falls back to the reported-area candidates.  ``outages``
    take cells down for whole time windows; pages to a down cell are never
    delivered.
    """

    page_loss: float = 0.0
    cell_page_loss: Mapping[int, float] = field(default_factory=dict)
    update_loss: float = 0.0
    stale_after: Optional[int] = None
    outages: Tuple[CellOutage, ...] = ()

    def __post_init__(self) -> None:
        _validate_probability("page_loss", self.page_loss)
        _validate_probability("update_loss", self.update_loss)
        for cell, probability in dict(self.cell_page_loss).items():
            if int(cell) < 0:
                raise SimulationError("cell_page_loss keys must be cell ids")
            _validate_probability(f"cell_page_loss[{cell}]", probability)
        if self.stale_after is not None and self.stale_after < 1:
            raise SimulationError("stale_after must be a positive step count")
        for outage in self.outages:
            if not isinstance(outage, CellOutage):
                raise SimulationError("outages must be CellOutage entries")

    @property
    def is_zero(self) -> bool:
        """True when the model injects nothing (the simulator bypasses it)."""
        if self.page_loss > 0.0 or self.update_loss > 0.0:
            return False
        if any(float(p) > 0.0 for p in dict(self.cell_page_loss).values()):
            return False
        return not self.outages and self.stale_after is None

    def loss_probability(self, cell: int) -> float:
        return float(dict(self.cell_page_loss).get(cell, self.page_loss))

    def cell_down(self, cell: int, time: int) -> bool:
        return any(o.cell == cell and o.active(time) for o in self.outages)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded re-page retries with exponential backoff, inside budget ``d``.

    Retry ``k`` (1-based) waits ``backoff_base * 2**(k-1)`` rounds and then
    re-pages the candidate set in one round.  Waits and retry rounds are
    counted against the call's delay budget, so the initial strategy is
    planned over ``budget - reserved_rounds()`` rounds (floor 1) to leave
    headroom.  ``call_timeout_rounds`` optionally tightens the budget below
    ``d``; it never extends it.
    """

    max_retries: int = 1
    backoff_base: int = 1
    call_timeout_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SimulationError("max_retries must be non-negative")
        if self.backoff_base < 1:
            raise SimulationError("backoff_base must be at least 1")
        if self.call_timeout_rounds is not None and self.call_timeout_rounds < 1:
            raise SimulationError("call_timeout_rounds must be positive")

    def backoff(self, attempt: int) -> int:
        """Rounds waited before retry ``attempt`` (1-based)."""
        return self.backoff_base * (2 ** (attempt - 1))

    def reserved_rounds(self) -> int:
        """Worst-case rounds consumed by the full retry schedule."""
        return sum(self.backoff(k) + 1 for k in range(1, self.max_retries + 1))

    def budget(self, max_rounds: int) -> int:
        """The hard per-call round cap: never beyond the delay constraint."""
        if self.call_timeout_rounds is None:
            return max_rounds
        return min(max_rounds, self.call_timeout_rounds)

    def planning_rounds(self, max_rounds: int) -> int:
        """Rounds handed to the strategy planner (retry headroom reserved)."""
        return max(1, self.budget(max_rounds) - self.reserved_rounds())


#: The default recovery behavior when a fault model is active.
DEFAULT_RECOVERY = RecoveryPolicy()


class FaultInjector:
    """Draws fault events from the simulation RNG and accounts for them.

    One injector per simulator run: it shares the simulator's seeded
    ``Generator`` so fault draws are part of the same reproducible stream,
    and it reports what it injected to the run's
    :class:`~repro.cellnet.metrics.LinkUsageMetrics` plus the active
    :mod:`repro.obs` tracer (``faults.*`` counters).
    """

    def __init__(
        self,
        model: FaultModel,
        rng: np.random.Generator,
        metrics: Optional[LinkUsageMetrics] = None,
    ) -> None:
        self.model = model
        self._rng = rng
        self._metrics = metrics

    def page_delivered(self, cell: int, time: int) -> bool:
        """One paging message to ``cell``: delivered, lost, or blocked."""
        if self.model.cell_down(cell, time):
            if self._metrics is not None:
                self._metrics.record_outage_page()
            count("faults.outage_pages")
            return False
        probability = self.model.loss_probability(cell)
        if probability <= 0.0:
            return True
        if self._rng.random() < probability:
            if self._metrics is not None:
                self._metrics.record_page_lost()
            count("faults.pages_lost")
            return False
        return True

    def update_delivered(self, time: int) -> bool:
        """One uplink location-update message: delivered or lost."""
        probability = self.model.update_loss
        if probability <= 0.0:
            return True
        if self._rng.random() < probability:
            if self._metrics is not None:
                self._metrics.record_update_lost()
            count("faults.updates_lost")
            return False
        return True


def _collect_answers(
    remaining: Dict[int, int], found: Dict[int, int], delivered: set
) -> None:
    """Move every device whose true cell received a page into ``found``."""
    for device in sorted(remaining):
        if remaining[device] in delivered:
            found[device] = remaining.pop(device)


class ResilientPager:
    """Fault-aware search: plan with the paper's machinery, execute with
    loss, retry within budget, degrade gracefully.

    Mirrors the ``search`` interface of the pagers in
    :mod:`repro.cellnet.paging` plus a ``time`` keyword (outages and loss
    draws are time-dependent).  The returned
    :class:`~repro.cellnet.paging.PagingOutcome` carries the devices the
    search had to give up on in ``failed_devices`` and the retry rounds
    spent in ``retries_used``; ``rounds_used`` includes backoff waits and
    never exceeds ``RecoveryPolicy.budget(max_rounds)``.
    """

    name = "resilient"

    def __init__(
        self,
        pager: str,
        injector: FaultInjector,
        policy: Optional[RecoveryPolicy] = None,
        *,
        planner_solver: str = "heuristic",
    ) -> None:
        if pager not in ("blanket", "heuristic", "adaptive"):
            raise SimulationError(f"unknown base pager {pager!r}")
        self._pager = pager
        self._injector = injector
        self._policy = policy if policy is not None else DEFAULT_RECOVERY
        # Non-blanket plans come from the solver registry by name, so a
        # deployment can swap the planning policy without touching this class.
        self._planner = get_solver(planner_solver)

    @property
    def policy(self) -> RecoveryPolicy:
        return self._policy

    def _plan(
        self,
        priors: Sequence[np.ndarray],
        candidate_cells: Sequence[int],
        rounds: int,
    ) -> Tuple[Strategy, Tuple[int, ...]]:
        cells = tuple(int(cell) for cell in candidate_cells)
        if self._pager == "blanket":
            if not cells:
                raise SimulationError("cannot page an empty candidate set")
            return Strategy.single_round(len(cells)), cells
        instance, cells = build_sub_instance(priors, candidate_cells, rounds)
        return self._planner(instance).strategy, cells

    def search(
        self,
        priors: Sequence[np.ndarray],
        candidate_cells: Sequence[int],
        true_cells: Sequence[int],
        max_rounds: int,
        num_cells: int,
        *,
        time: int = 0,
    ) -> PagingOutcome:
        policy = self._policy
        budget = policy.budget(max_rounds)
        strategy, cells = self._plan(
            priors, candidate_cells, policy.planning_rounds(max_rounds)
        )
        injector = self._injector
        remaining = {device: int(cell) for device, cell in enumerate(true_cells)}
        found: Dict[int, int] = {}
        paged = 0
        rounds = 0
        retries = 0

        # Phase 1 — the planned strategy, one round per group, under faults.
        for group in strategy.groups:
            if not remaining or rounds >= budget:
                break
            rounds += 1
            paged += len(group)
            delivered = {
                cells[j]
                for j in sorted(group)
                if injector.page_delivered(cells[j], time)
            }
            _collect_answers(remaining, found, delivered)

        # Phase 2 — bounded re-page retries with exponential backoff; each
        # retry blankets the candidate set (a lost page says nothing about
        # where the device is, so no cell can be ruled out).
        candidate_set = set(cells)
        for attempt in range(1, policy.max_retries + 1):
            if not remaining:
                break
            wait = policy.backoff(attempt)
            if rounds + wait + 1 > budget:
                break  # the retry would overrun the delay constraint
            rounds += wait + 1
            retries += 1
            targets = sorted(candidate_set)
            paged += len(targets)
            delivered = {
                cell for cell in targets if injector.page_delivered(cell, time)
            }
            _collect_answers(remaining, found, delivered)

        # Phase 3 — the system-wide fallback sweep for devices the registry
        # mislaid entirely, if (and only if) it still fits the budget.
        used_fallback = False
        if (
            remaining
            and rounds < budget
            and any(cell not in candidate_set for cell in remaining.values())
        ):
            sweep = sorted(set(range(num_cells)) - candidate_set)
            if sweep:
                rounds += 1
                used_fallback = True
                paged += len(sweep)
                delivered = {
                    cell for cell in sweep if injector.page_delivered(cell, time)
                }
                _collect_answers(remaining, found, delivered)

        # Phase 4 — graceful degradation: the conference proceeds without
        # whoever is still missing once the budget is exhausted.
        return PagingOutcome(
            found_cells=found,
            cells_paged=paged,
            rounds_used=rounds,
            used_fallback=used_fallback,
            failed_devices=tuple(sorted(remaining)),
            retries_used=retries,
        )
