"""Numeric checks of the approximation-proof inequalities (Section 4).

* **Proposition 4.1** — for ``1 <= x <= 2`` and ``a_i, b_i >= 0`` with
  ``a_i + b_i <= 1`` and ``a_1 + a_2 >= x - (b_1 + b_2)``:
  ``(a_1 + b_1)(a_2 + b_2) >= x - 1``.
* **Lemma 4.4** — the ``m``-fold generalization:
  ``prod_i (a_i + b_i) >= x - m + 1`` under the analogous constraints.
* **Proposition 4.2** — for ``0 < s <= c`` and ``1 <= x <= 2``:
  ``c - s(x - 1) <= (4/3)(c - s (x/2)^2)``.
* **Lemma 4.5** — the e/(e-1) analogue over cubes ``[m-1, m]^k``.

Each check samples the constraint set (densely and adversarially at the
boundary, where the strictly-convex bound functions attain their maxima) and
reports the worst margin; the tests assert the margins are non-negative.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

E_FACTOR = math.e / (math.e - 1.0)


@dataclass(frozen=True)
class InequalityCheck:
    """Worst observed margin of an inequality over its sampled domain."""

    worst_margin: float
    worst_point: Tuple[float, ...]
    samples: int

    @property
    def holds(self) -> bool:
        return self.worst_margin >= -1e-9


def check_proposition41(
    *, samples: int = 50_000, rng: Optional[np.random.Generator] = None
) -> InequalityCheck:
    """Sample the Proposition 4.1 constraint set; margin = product - (x - 1)."""
    if rng is None:
        rng = np.random.default_rng(41)
    worst = np.inf
    worst_point: Tuple[float, ...] = ()
    count = 0
    for _ in range(samples):
        b = rng.uniform(0.0, 1.0, size=2)
        a = rng.uniform(0.0, 1.0 - b)
        x = float(rng.uniform(1.0, 2.0))
        if a.sum() < x - b.sum():
            # Project onto the binding constraint, as the proof does: shrink x
            # so that a_1 + a_2 >= x - (b_1 + b_2) holds with equality.
            x = float(a.sum() + b.sum())
            if x < 1.0:
                continue
        count += 1
        margin = float((a[0] + b[0]) * (a[1] + b[1]) - (x - 1.0))
        if margin < worst:
            worst = margin
            worst_point = (float(a[0]), float(a[1]), float(b[0]), float(b[1]), x)
    return InequalityCheck(worst_margin=worst, worst_point=worst_point, samples=count)


def check_lemma44(
    num_devices: int,
    *,
    samples: int = 50_000,
    rng: Optional[np.random.Generator] = None,
) -> InequalityCheck:
    """Sample the Lemma 4.4 constraint set; margin = product - (x - m + 1)."""
    m = num_devices
    if m < 2:
        raise ValueError("Lemma 4.4 requires m >= 2")
    if rng is None:
        rng = np.random.default_rng(44)
    worst = np.inf
    worst_point: Tuple[float, ...] = ()
    count = 0
    for _ in range(samples):
        b = rng.uniform(0.0, 1.0, size=m)
        a = rng.uniform(0.0, 1.0 - b)
        x = float(rng.uniform(m - 1.0, m))
        if a.sum() < x - b.sum():
            x = float(a.sum() + b.sum())
            if x < m - 1.0:
                continue
        count += 1
        margin = float(np.prod(a + b) - (x - m + 1.0))
        if margin < worst:
            worst = margin
            worst_point = tuple(float(v) for v in a) + tuple(float(v) for v in b) + (x,)
    return InequalityCheck(worst_margin=worst, worst_point=worst_point, samples=count)


def proposition42_margin(s: float, x: float, c: float) -> float:
    """``(4/3)(c - s (x/2)^2) - (c - s(x - 1))`` — non-negative by Prop 4.2."""
    return (4.0 / 3.0) * (c - s * (x / 2.0) ** 2) - (c - s * (x - 1.0))


def check_proposition42(
    *, num_cells: float = 10.0, grid: int = 400
) -> InequalityCheck:
    """Grid the Proposition 4.2 domain ``0 < s <= c, 1 <= x <= 2``."""
    c = float(num_cells)
    worst = np.inf
    worst_point: Tuple[float, ...] = ()
    count = 0
    for s in np.linspace(c / grid, c, grid):
        xs = np.linspace(1.0, 2.0, grid)
        margins = (4.0 / 3.0) * (c - s * (xs / 2.0) ** 2) - (c - s * (xs - 1.0))
        count += len(xs)
        index = int(np.argmin(margins))
        if margins[index] < worst:
            worst = float(margins[index])
            worst_point = (float(s), float(xs[index]))
    return InequalityCheck(worst_margin=worst, worst_point=worst_point, samples=count)


def lemma45_margin(
    xs: Tuple[float, ...],
    sizes: Tuple[float, ...],
    num_devices: int,
    num_cells: float,
) -> float:
    """``e/(e-1) * RHS - LHS`` of Lemma 4.5 for one point (non-negative).

    ``xs = (x_1..x_k)`` with ``m-1 <= x_i <= m`` and ``sizes = (s_2..s_d)``
    positive with sum at most ``c``; ``k <= d - 1``.
    """
    m, c = num_devices, float(num_cells)
    k = len(xs)
    left = c - sum(sizes[r] * (xs[r] - m + 1.0) for r in range(k))
    tail = sum(sizes[k:])  # sizes[0] holds s_2, so s_{k+2} starts at index k
    right = c - sum(sizes[r] * (xs[r] / m) ** m for r in range(k)) - tail / math.e
    return E_FACTOR * right - left


def check_lemma45(
    num_devices: int,
    num_rounds: int,
    *,
    num_cells: float = 20.0,
    samples: int = 20_000,
    rng: Optional[np.random.Generator] = None,
) -> InequalityCheck:
    """Sample random (x, s) configurations plus all boundary corners."""
    m, d, c = num_devices, num_rounds, float(num_cells)
    if rng is None:
        rng = np.random.default_rng(45)
    worst = np.inf
    worst_point: Tuple[float, ...] = ()
    count = 0
    for k in range(1, d):
        # Boundary corners x_i in {m-1, m} dominate by strict convexity.
        for corner in itertools.product((m - 1.0, float(m)), repeat=k):
            sizes = tuple(float(v) for v in rng.uniform(0.1, 1.0, size=d - 1))
            scale = c / max(sum(sizes), 1e-12)
            sizes = tuple(v * min(1.0, scale) for v in sizes)
            margin = lemma45_margin(corner, sizes, m, c)
            count += 1
            if margin < worst:
                worst = margin
                worst_point = corner + sizes
        for _ in range(samples // max(1, d - 1)):
            xs = tuple(float(v) for v in rng.uniform(m - 1.0, m, size=k))
            sizes = tuple(float(v) for v in rng.uniform(0.01, 1.0, size=d - 1))
            scale = c / max(sum(sizes), 1e-12)
            sizes = tuple(v * min(1.0, scale) for v in sizes)
            margin = lemma45_margin(xs, sizes, m, c)
            count += 1
            if margin < worst:
                worst = margin
                worst_point = xs + sizes
    return InequalityCheck(worst_margin=worst, worst_point=worst_point, samples=count)
