"""Numeric verification of the paper's analysis and ratio measurement.

Covers the Section 3 extremum lemmas (Lemma 3.1, Lemma 3.4), the Section 4
inequalities (Propositions 4.1/4.2, Lemmas 4.4/4.5), heuristic-vs-optimal
ratio sweeps, and the §1.2 stationarity assumption probe.
"""

from __future__ import annotations

from .convexity import (
    ExtremumCheck,
    alpha_monotonicity,
    grid_check_lemma31,
    grid_check_lemma34,
    lemma31_stationarity_residual,
    lemma34_claimed_chain,
    refine_lemma31_with_scipy,
    refine_lemma34_with_scipy,
)
from .propositions import (
    E_FACTOR,
    InequalityCheck,
    check_lemma44,
    check_lemma45,
    check_proposition41,
    check_proposition42,
    lemma45_margin,
    proposition42_margin,
)
from .sensitivity import (
    MovementSensitivityResult,
    measure_movement_sensitivity,
    simulate_search_with_movement,
)
from .ratio import (
    RatioSample,
    RatioSummary,
    compare_strategies,
    measure_ratio,
    measure_special_case_ratio,
    ratio_sweep_summary,
    sweep_ratios,
)

__all__ = [
    "E_FACTOR",
    "ExtremumCheck",
    "InequalityCheck",
    "MovementSensitivityResult",
    "RatioSample",
    "RatioSummary",
    "alpha_monotonicity",
    "check_lemma44",
    "check_lemma45",
    "check_proposition41",
    "check_proposition42",
    "compare_strategies",
    "grid_check_lemma31",
    "grid_check_lemma34",
    "lemma31_stationarity_residual",
    "lemma34_claimed_chain",
    "lemma45_margin",
    "measure_movement_sensitivity",
    "measure_ratio",
    "measure_special_case_ratio",
    "simulate_search_with_movement",
    "proposition42_margin",
    "ratio_sweep_summary",
    "refine_lemma31_with_scipy",
    "refine_lemma34_with_scipy",
    "sweep_ratios",
]
