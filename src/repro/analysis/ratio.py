"""Empirical approximation-ratio measurement (experiments E3, E16).

Theorem 4.8 guarantees ``EP_heuristic / EP_optimal <= e/(e-1)`` and Section
4.3 shows the ratio can reach ``320/317``.  This harness sweeps instance
families, solves each instance both heuristically and exactly, and aggregates
the observed ratios so the benchmarks can report where the heuristic actually
lands between those two bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exact import optimal_strategy
from ..core.expected_paging import expected_paging_float
from ..core.heuristic import conference_call_heuristic
from ..core.instance import PagingInstance
from ..core.special_case import two_device_two_round_heuristic

InstanceFactory = Callable[[np.random.Generator], PagingInstance]


@dataclass(frozen=True)
class RatioSample:
    """One instance's heuristic-vs-optimal comparison."""

    heuristic_value: float
    optimal_value: float
    num_devices: int
    num_cells: int
    max_rounds: int

    @property
    def ratio(self) -> float:
        if self.optimal_value <= 0:
            return 1.0
        return self.heuristic_value / self.optimal_value


@dataclass(frozen=True)
class RatioSummary:
    """Aggregate over many :class:`RatioSample` values."""

    count: int
    mean_ratio: float
    max_ratio: float
    quantile95: float
    worst_sample: Optional[RatioSample]

    @classmethod
    def from_samples(cls, samples: Sequence[RatioSample]) -> "RatioSummary":
        if not samples:
            return cls(0, 1.0, 1.0, 1.0, None)
        ratios = np.array([sample.ratio for sample in samples])
        worst = samples[int(np.argmax(ratios))]
        return cls(
            count=len(samples),
            mean_ratio=float(ratios.mean()),
            max_ratio=float(ratios.max()),
            quantile95=float(np.quantile(ratios, 0.95)),
            worst_sample=worst,
        )


def measure_ratio(instance: PagingInstance) -> RatioSample:
    """Heuristic vs exact optimal EP for one instance."""
    heuristic = conference_call_heuristic(instance)
    optimal = optimal_strategy(instance)
    return RatioSample(
        heuristic_value=float(heuristic.expected_paging),
        optimal_value=float(optimal.expected_paging),
        num_devices=instance.num_devices,
        num_cells=instance.num_cells,
        max_rounds=instance.max_rounds,
    )


def measure_special_case_ratio(instance: PagingInstance) -> RatioSample:
    """Section 4.1 scan vs exact optimal for ``m = 2, d = 2`` instances."""
    split = two_device_two_round_heuristic(instance)
    optimal = optimal_strategy(instance)
    return RatioSample(
        heuristic_value=float(split.expected_paging),
        optimal_value=float(optimal.expected_paging),
        num_devices=instance.num_devices,
        num_cells=instance.num_cells,
        max_rounds=instance.max_rounds,
    )


def sweep_ratios(
    factory: InstanceFactory,
    *,
    trials: int,
    rng: np.random.Generator,
    measurer: Callable[[PagingInstance], RatioSample] = measure_ratio,
) -> List[RatioSample]:
    """Draw instances from ``factory`` and measure each one."""
    return [measurer(factory(rng)) for _ in range(trials)]


def ratio_sweep_summary(
    factory: InstanceFactory,
    *,
    trials: int,
    rng: np.random.Generator,
    measurer: Callable[[PagingInstance], RatioSample] = measure_ratio,
) -> RatioSummary:
    """Convenience wrapper: sweep then aggregate."""
    return RatioSummary.from_samples(
        sweep_ratios(factory, trials=trials, rng=rng, measurer=measurer)
    )


def compare_strategies(
    instance: PagingInstance,
    strategies: Iterable[Tuple[str, "object"]],
) -> List[Tuple[str, float]]:
    """Evaluate labeled strategies on one instance (sorted by EP).

    Float instances score the whole stack in one call to
    :func:`repro.core.batch.expected_paging_batch`; exact instances keep the
    scalar Fraction evaluation per strategy.
    """
    pairs = list(strategies)
    if not pairs:
        return []
    if instance.is_exact:
        out = [
            (label, expected_paging_float(instance, strategy))  # type: ignore[arg-type]
            for label, strategy in pairs
        ]
    else:
        from ..core.batch import expected_paging_batch

        values = expected_paging_batch(
            instance, [strategy for _, strategy in pairs]  # type: ignore[misc]
        )
        out = [(label, float(value)) for (label, _), value in zip(pairs, values)]
    return sorted(out, key=lambda pair: pair[1])
