"""Sensitivity to the stationarity assumption (experiment E21).

The model of Section 1.2 assumes devices do not move during the search.
Real searches take a few paging rounds, and a fast device can slip from an
unpaged cell into an already-paged one (the search then exhausts the
strategy without finding it and must fall back to a sweep).

This module simulates searches where each device, between rounds, moves to a
uniformly random neighbor cell with probability ``mobility`` (on a cell
graph, or to any cell when none is given), and measures

* how often the strategy misses a device, and
* the realized paging cost including a whole-area fallback sweep.

This quantifies how quickly the paper's optimization degrades as the
stationarity assumption weakens — and shows that the delay budget ``d``
itself is the exposure knob (longer searches give devices more chances to
escape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.instance import PagingInstance
from ..core.strategy import Strategy


@dataclass(frozen=True)
class MovementSensitivityResult:
    """Monte-Carlo outcome of searching a moving population."""

    mobility: float
    trials: int
    mean_cells_paged: float
    miss_rate: float
    stationary_expectation: float

    @property
    def cost_inflation(self) -> float:
        """Realized cost relative to the stationary model's promise."""
        if self.stationary_expectation <= 0:
            return 1.0
        return self.mean_cells_paged / self.stationary_expectation


def _move(
    cell: int,
    num_cells: int,
    mobility: float,
    rng: np.random.Generator,
    neighbors: Optional[Sequence[Sequence[int]]],
) -> int:
    if rng.random() >= mobility:
        return cell
    if neighbors is not None:
        options = neighbors[cell]
        if not options:
            return cell
        return int(options[rng.integers(len(options))])
    return int(rng.integers(num_cells))


def simulate_search_with_movement(
    instance: PagingInstance,
    strategy: Strategy,
    mobility: float,
    rng: np.random.Generator,
    *,
    neighbors: Optional[Sequence[Sequence[int]]] = None,
    locations: Optional[Sequence[int]] = None,
) -> tuple:
    """One search against a moving population.

    Returns ``(cells_paged, missed)`` where ``missed`` indicates that the
    strategy finished without locating every device and a fallback sweep of
    the remaining cells was billed (as a real system would page system-wide).
    ``locations`` optionally supplies the initial device cells (so callers
    can draw all trials in one batched kernel); by default one joint outcome
    is sampled from ``rng``.
    """
    c = instance.num_cells
    if locations is None:
        locations = list(instance.sample_locations(rng))
    else:
        locations = [int(cell) for cell in locations]
    remaining = set(range(instance.num_devices))
    paged_cells: set = set()
    paged = 0
    for round_index, group in enumerate(strategy.groups):
        if round_index > 0:
            for device in list(remaining):
                locations[device] = _move(
                    locations[device], c, mobility, rng, neighbors
                )
        paged += len(group)
        paged_cells |= group
        for device in list(remaining):
            if locations[device] in group:
                remaining.discard(device)
        if not remaining:
            return paged, False
    # The strategy was exhausted: devices moved into already-paged cells, so
    # the system falls back to one blanket sweep of the whole area.
    paged += c
    return paged, True


def measure_movement_sensitivity(
    instance: PagingInstance,
    strategy: Strategy,
    mobility: float,
    *,
    trials: int,
    rng: np.random.Generator,
    neighbors: Optional[Sequence[Sequence[int]]] = None,
) -> MovementSensitivityResult:
    """Monte-Carlo sweep of :func:`simulate_search_with_movement`.

    Initial locations for all trials are drawn with the batched sampler
    (:func:`repro.core.batch.sample_locations_batch`); the per-round movement
    draws remain inside each trial's simulation.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    from ..core.batch import sample_locations_batch
    from ..core.expected_paging import expected_paging_float

    initial = sample_locations_batch(instance, trials, rng)
    total = 0
    misses = 0
    for k in range(trials):
        cost, missed = simulate_search_with_movement(
            instance,
            strategy,
            mobility,
            rng,
            neighbors=neighbors,
            locations=initial[:, k],
        )
        total += cost
        misses += int(missed)
    return MovementSensitivityResult(
        mobility=mobility,
        trials=trials,
        mean_cells_paged=total / trials,
        miss_rate=misses / trials,
        stationary_expectation=expected_paging_float(instance, strategy),
    )
