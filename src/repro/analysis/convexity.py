"""Numeric verification of the convex-analysis lemmas (Sections 2-3).

The NP-hardness proofs hinge on two extremum claims:

* **Lemma 3.1** — ``f(x, y) = (c - y)((1 - 3/(2c)) y + x)(y - x)`` on
  ``[0, 1] x [0, c]`` attains its unique global maximum at ``(1/2, 2c/3)``
  with value ``4c^3/27 - 2c^2/9 + c/12``.
* **Lemma 3.4** — over chains ``0 <= b_1 <= ... <= b_d = c`` the sum
  ``sum_r (b_{r+1} - b_r) b_r^m`` is maximized at the ``alpha/b`` recursion
  point, which is the unique interior stationary point.

Both are checked here by dense grid search, stationarity of the closed-form
point, and (when scipy is importable) numeric optimization — the reproduction
of experiments E4 and E5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.bounds import (
    b_sequence,
    lemma31_function,
    lemma31_maximum,
    lemma34_objective,
)


@dataclass(frozen=True)
class ExtremumCheck:
    """Result of comparing a claimed maximum against a numeric search."""

    claimed_point: Tuple[float, ...]
    claimed_value: float
    best_found_point: Tuple[float, ...]
    best_found_value: float

    @property
    def claim_holds(self) -> bool:
        """True when no searched point beats the claimed maximum."""
        return self.best_found_value <= self.claimed_value + 1e-9


def grid_check_lemma31(num_cells: int, *, grid: int = 200) -> ExtremumCheck:
    """Dense grid search of ``f`` against the ``(1/2, 2c/3)`` closed form."""
    c = float(num_cells)
    xs = np.linspace(0.0, 1.0, grid + 1)
    ys = np.linspace(0.0, c, grid + 1)
    best_value = -np.inf
    best_point = (0.0, 0.0)
    for x in xs:
        values = (c - ys) * ((1 - 1.5 / c) * ys + x) * (ys - x)
        index = int(np.argmax(values))
        if values[index] > best_value:
            best_value = float(values[index])
            best_point = (float(x), float(ys[index]))
    return ExtremumCheck(
        claimed_point=(0.5, 2.0 * c / 3.0),
        claimed_value=float(lemma31_maximum(num_cells)),
        best_found_point=best_point,
        best_found_value=best_value,
    )


def refine_lemma31_with_scipy(num_cells: int) -> Optional[ExtremumCheck]:
    """Local maximization from many starts (None when scipy is unavailable)."""
    try:
        from scipy.optimize import minimize
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return None
    c = float(num_cells)

    def negative_f(point: np.ndarray) -> float:
        return -float(lemma31_function(point[0], point[1], c))

    best_value = -np.inf
    best_point = (0.0, 0.0)
    rng = np.random.default_rng(0)
    starts = [(0.5, 2 * c / 3)] + [
        (float(rng.uniform(0, 1)), float(rng.uniform(0, c))) for _ in range(20)
    ]
    for start in starts:
        result = minimize(
            negative_f,
            np.array(start),
            bounds=[(0.0, 1.0), (0.0, c)],
            method="L-BFGS-B",
        )
        if -result.fun > best_value:
            best_value = float(-result.fun)
            best_point = (float(result.x[0]), float(result.x[1]))
    return ExtremumCheck(
        claimed_point=(0.5, 2.0 * c / 3.0),
        claimed_value=float(lemma31_maximum(num_cells)),
        best_found_point=best_point,
        best_found_value=best_value,
    )


def lemma31_stationarity_residual(num_cells: int) -> Tuple[float, float]:
    """Numeric gradient of ``f`` at the claimed maximum (should vanish)."""
    c = float(num_cells)
    x0, y0 = 0.5, 2.0 * c / 3.0
    h = 1e-6
    df_dx = (
        float(lemma31_function(x0 + h, y0, c)) - float(lemma31_function(x0 - h, y0, c))
    ) / (2 * h)
    df_dy = (
        float(lemma31_function(x0, y0 + h, c)) - float(lemma31_function(x0, y0 - h, c))
    ) / (2 * h)
    return df_dx, df_dy


def lemma34_claimed_chain(
    num_devices: int, num_rounds: int, num_cells: float
) -> Tuple[float, ...]:
    """``(b_1, ..., b_d)`` from the alpha recursion (the claimed maximizer)."""
    return tuple(float(v) for v in b_sequence(num_devices, num_rounds, num_cells)[1:])


def grid_check_lemma34(
    num_devices: int,
    num_rounds: int,
    num_cells: float,
    *,
    samples: int = 200_000,
    rng: Optional[np.random.Generator] = None,
) -> ExtremumCheck:
    """Random chains vs. the alpha-recursion chain for the Lemma 3.4 sum."""
    m, d, c = num_devices, num_rounds, float(num_cells)
    if rng is None:
        rng = np.random.default_rng(1234)
    claimed = lemma34_claimed_chain(m, d, c)
    claimed_value = float(lemma34_objective(list(claimed), m))
    # Random monotone chains b_1 <= ... <= b_d = c.
    draws = np.sort(rng.uniform(0.0, c, size=(samples, d - 1)), axis=1)
    chains = np.concatenate([draws, np.full((samples, 1), c)], axis=1)
    diffs = np.diff(np.concatenate([np.zeros((samples, 1)), chains], axis=1), axis=1)
    # objective = sum_{r=1}^{d-1} (b_{r+1} - b_r) b_r^m
    values = np.einsum("ij,ij->i", diffs[:, 1:], chains[:, :-1] ** m)
    index = int(np.argmax(values))
    return ExtremumCheck(
        claimed_point=claimed,
        claimed_value=claimed_value,
        best_found_point=tuple(float(v) for v in chains[index]),
        best_found_value=float(values[index]),
    )


def refine_lemma34_with_scipy(
    num_devices: int, num_rounds: int, num_cells: float
) -> Optional[ExtremumCheck]:
    """Constrained maximization of the chain sum (None without scipy)."""
    try:
        from scipy.optimize import minimize
    except ImportError:  # pragma: no cover
        return None
    m, d, c = num_devices, num_rounds, float(num_cells)
    claimed = lemma34_claimed_chain(m, d, c)
    claimed_value = float(lemma34_objective(list(claimed), m))

    def negative(objective_point: np.ndarray) -> float:
        chain = np.concatenate([np.sort(objective_point), [c]])
        return -float(lemma34_objective(list(chain), m))

    best_value = -np.inf
    best_chain: Sequence[float] = claimed
    rng = np.random.default_rng(7)
    starts = [np.array(claimed[:-1])] + [
        np.sort(rng.uniform(0, c, size=d - 1)) for _ in range(10)
    ]
    for start in starts:
        result = minimize(
            negative, start, bounds=[(0.0, c)] * (d - 1), method="L-BFGS-B"
        )
        if -result.fun > best_value:
            best_value = float(-result.fun)
            best_chain = tuple(float(v) for v in np.sort(result.x)) + (c,)
    return ExtremumCheck(
        claimed_point=claimed,
        claimed_value=claimed_value,
        best_found_point=tuple(best_chain),
        best_found_value=best_value,
    )


def alpha_monotonicity(num_devices: int, num_rounds: int) -> bool:
    """Lemma 3.4's side claim: ``m/(m+1) = alpha_1 < ... < alpha_{d-1} < 1``."""
    from ..core.bounds import alpha_sequence

    alphas = alpha_sequence(num_devices, num_rounds)
    ordered = all(alphas[i] < alphas[i + 1] for i in range(len(alphas) - 1))
    return ordered and alphas[0] == num_devices / (num_devices + 1) and alphas[-1] < 1
