"""Command-line interface: ``repro <command>``.

The commands cover the library's workflows:

* ``repro plan`` — read a probability matrix from JSON and print a paging
  strategy (heuristic, exact, or adaptive value).
* ``repro solve`` — run any solver from the ``repro.solvers`` registry on a
  JSON instance by name (``--solver NAME``, see ``repro solvers``).
* ``repro solvers`` — list the solver registry: name, kind, capability
  flags, approximation factor, and paper anchor per entry.
* ``repro simulate`` — run the cellular-network simulation and print the
  link-usage summary.
* ``repro experiments`` — regenerate experiment tables (all or by id),
  optionally fanned out over worker processes with ``--jobs``.
* ``repro gadget`` — run the Lemma 3.2 NP-hardness reduction on a list of
  sizes and report whether the optimum hits the lower bound.
* ``repro lint`` — domain-aware static analysis (exact-arithmetic,
  reproducibility, and paper-traceability rules; see docs/linting.md).
* ``repro bench`` — time the batched/parallel kernels on pinned seeds and
  record a ``BENCH_<n>.json`` trajectory snapshot (see docs/performance.md).
* ``repro serve-bench`` — drive a synthetic closed-loop workload through
  the ``repro.service`` paging controller and report throughput, cache
  hit rates, and batching behavior (see docs/service.md).
* ``repro trace`` — summarize a ``trace.jsonl`` produced by the global
  ``--trace PATH`` flag (see docs/observability.md).

``repro --trace PATH <command> ...`` runs any command under a JSONL tracer:
spans, counters, and paging histograms land in ``PATH`` for ``repro trace``
to read.

JSON input format for ``plan``::

    {"probabilities": [[0.5, 0.3, 0.2], [0.1, 0.4, 0.5]], "max_rounds": 2}
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction
from typing import Optional, Sequence

import numpy as np


#: One line per subcommand — rendered in the ``--help`` epilog and asserted
#: against the README command table by ``tests/test_cli.py``.
COMMAND_SUMMARY: "dict[str, str]" = {
    "plan": "plan a paging strategy from a JSON instance",
    "solve": "run any registered solver on a JSON instance by name",
    "solvers": "list the solver registry (kind, capabilities, factor)",
    "simulate": "run the cellular-network simulation (optionally with faults)",
    "experiments": "regenerate experiment tables (--jobs N, --checkpoint/--resume)",
    "gadget": "run the Lemma 3.2 NP-hardness reduction",
    "render": "ASCII map of a network's areas or a plan",
    "lint": "domain-aware static analysis (RPL001-RPL010, --deep dataflow)",
    "bench": "record or diff BENCH_<n>.json performance snapshots",
    "serve-bench": "closed-loop throughput benchmark of the paging service",
    "timevary": "run the joint paging/registration (HMY) iteration",
    "contention": "sweep blocking vs offered load on shared paging channels",
    "trace": "summarize a trace.jsonl written by --trace",
}


def _build_parser() -> argparse.ArgumentParser:
    epilog_lines = ["commands:"] + [
        f"  repro {name:<12} {summary}" for name, summary in COMMAND_SUMMARY.items()
    ]
    epilog_lines.append(
        "\nany command accepts a leading `--trace PATH` to record spans, "
        "counters,\nand paging histograms as JSON lines (docs/observability.md)."
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conference Call paging under delay constraints "
        "(Bar-Noy & Malewicz, PODC 2002)",
        epilog="\n".join(epilog_lines),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="run the command under a JSONL tracer writing to PATH "
        "(read it back with `repro trace PATH`)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser("plan", help="plan a paging strategy from JSON")
    plan.add_argument("input", help="path to a JSON instance file, or '-' for stdin")
    plan.add_argument(
        "--solver",
        choices=("heuristic", "exact", "adaptive"),
        default="heuristic",
        help="heuristic (Fig. 1), exact (subset DP), or adaptive value",
    )
    plan.add_argument("--rounds", type=int, default=None, help="override the delay d")
    plan.add_argument(
        "--bandwidth", type=int, default=None, help="max cells paged per round"
    )
    plan.add_argument(
        "--output", default=None, help="write the planned strategy to a JSON file"
    )
    plan.add_argument(
        "--fast",
        action="store_true",
        help="use the vectorized planner (large instances, heuristic only)",
    )

    solve = commands.add_parser(
        "solve", help="run any registered solver on a JSON instance"
    )
    solve.add_argument("input", help="path to a JSON instance file, or '-' for stdin")
    solve.add_argument(
        "--solver",
        default="heuristic",
        metavar="NAME",
        help="registry name (list them with `repro solvers`)",
    )
    solve.add_argument("--rounds", type=int, default=None, help="override the delay d")
    solve.add_argument(
        "--bandwidth",
        type=int,
        default=None,
        help="max cells paged per round (solvers with the bandwidth capability)",
    )
    solve.add_argument(
        "--quorum",
        type=int,
        default=None,
        help="devices that must be found (signature/quorum solvers)",
    )
    solve.add_argument(
        "--order",
        default=None,
        metavar="J0,J1,...",
        help="explicit cell order (solvers with the ordered capability)",
    )
    solve.add_argument(
        "--costs",
        default=None,
        metavar="W0,W1,...",
        help="per-cell paging costs (solvers with the weighted capability)",
    )
    solve.add_argument(
        "--output", default=None, help="write the planned strategy to a JSON file"
    )
    solve.add_argument(
        "--json", action="store_true", help="emit the result as JSON on stdout"
    )

    solvers = commands.add_parser(
        "solvers", help="list the solver registry as a capabilities table"
    )
    solvers.add_argument(
        "--kind",
        choices=("exact", "heuristic", "dp", "variant"),
        default=None,
        help="only solvers of this kind",
    )
    solvers.add_argument(
        "--capability",
        default=None,
        metavar="FLAG",
        help="only solvers carrying this capability flag",
    )
    solvers.add_argument(
        "--json", action="store_true", help="emit the registry as JSON on stdout"
    )

    simulate = commands.add_parser("simulate", help="run the cellular simulation")
    simulate.add_argument("--radius", type=int, default=3, help="hex disk radius")
    simulate.add_argument("--devices", type=int, default=6)
    simulate.add_argument("--areas", type=int, default=4, help="location areas")
    simulate.add_argument("--horizon", type=int, default=500, help="time steps")
    simulate.add_argument("--call-rate", type=float, default=0.08)
    simulate.add_argument(
        "--pager", choices=("blanket", "heuristic", "adaptive"), default="heuristic"
    )
    simulate.add_argument(
        "--reporting",
        choices=("never", "always", "la", "distance", "timer"),
        default="la",
    )
    simulate.add_argument("--rounds", type=int, default=3, help="paging delay budget")
    simulate.add_argument(
        "--prior-mode",
        choices=("online", "uniform", "conditional"),
        default="online",
        help="device prior: learned profile, uniform, or belief evolved "
        "from the last successful report (docs/timevary.md)",
    )
    simulate.add_argument(
        "--distance-threshold",
        type=int,
        default=2,
        help="hops that trigger a distance report (with --reporting distance)",
    )
    simulate.add_argument("--seed", type=int, default=2002)
    simulate.add_argument(
        "--page-loss",
        type=float,
        default=0.0,
        help="probability a downlink page is lost (enables the fault engine)",
    )
    simulate.add_argument(
        "--update-loss",
        type=float,
        default=0.0,
        help="probability an uplink location update is lost",
    )
    simulate.add_argument(
        "--stale-after",
        type=int,
        default=None,
        metavar="STEPS",
        help="distrust confirmed registry fixes older than STEPS",
    )
    simulate.add_argument(
        "--outage",
        action="append",
        default=None,
        metavar="CELL:START:END",
        help="schedule a cell outage (repeatable)",
    )
    simulate.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-page retries under faults (exponential backoff, within --rounds)",
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate experiment tables"
    )
    experiments.add_argument(
        "ids", nargs="*", help="experiment ids (default: run everything)"
    )
    experiments.add_argument(
        "--list", action="store_true", help="list known experiment ids and exit"
    )
    experiments.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (default 1 = serial; output is byte-identical "
        "either way)",
    )
    experiments.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist each finished table to DIR (manifest + per-task files) "
        "so an interrupted run can be resumed",
    )
    experiments.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed tables from --checkpoint DIR and run only "
        "what is missing (byte-identical to an uninterrupted run)",
    )
    experiments.add_argument(
        "--task-retries",
        type=int,
        default=1,
        metavar="N",
        help="automatic in-process retries of failed tasks/workers",
    )

    gadget = commands.add_parser(
        "gadget", help="run the Lemma 3.2 reduction on comma-separated sizes"
    )
    gadget.add_argument("sizes", help="e.g. 3,1,2,2,1,3 (count divisible by 3)")

    render = commands.add_parser(
        "render", help="ASCII map of a hexagonal network's areas or a plan"
    )
    render.add_argument("--radius", type=int, default=3, help="hex disk radius")
    render.add_argument("--areas", type=int, default=4, help="location areas")
    render.add_argument(
        "--plan",
        default=None,
        help="optionally: JSON instance file; renders its heuristic strategy",
    )
    render.add_argument("--rounds", type=int, default=3)
    render.add_argument("--seed", type=int, default=2002)

    from .lint.engine import add_lint_arguments

    lint = commands.add_parser(
        "lint", help="run the domain-aware static-analysis rules (RPL001-RPL007)"
    )
    add_lint_arguments(lint)

    from .bench import add_bench_arguments

    bench = commands.add_parser(
        "bench", help="record a BENCH_<n>.json performance-trajectory snapshot"
    )
    add_bench_arguments(bench)

    serve_bench = commands.add_parser(
        "serve-bench",
        help="drive a closed-loop workload through the repro.service controller",
    )
    serve_bench.add_argument(
        "--requests", type=int, default=20000, help="stream length"
    )
    serve_bench.add_argument(
        "--areas", type=int, default=64, help="distinct location areas"
    )
    serve_bench.add_argument(
        "--devices", type=int, default=3, help="devices per call (matrix rows)"
    )
    serve_bench.add_argument(
        "--cells", type=int, default=40, help="cells per area (matrix columns)"
    )
    serve_bench.add_argument(
        "--rounds", type=int, default=3, help="delay budget d"
    )
    serve_bench.add_argument(
        "--profiles-per-area",
        type=int,
        default=8,
        help="recurring profiles per area (the hot pool)",
    )
    serve_bench.add_argument(
        "--hot-fraction",
        type=float,
        default=0.97,
        help="probability a request re-asks a pooled profile",
    )
    serve_bench.add_argument(
        "--seed", type=int, default=20060, help="workload stream seed"
    )
    serve_bench.add_argument(
        "--shards", type=int, default=4, help="controller shard count"
    )
    serve_bench.add_argument(
        "--cache-size", type=int, default=8192, help="LRU capacity per shard"
    )
    serve_bench.add_argument(
        "--quantization-step",
        type=float,
        default=0.0,
        help="cache-key probability bucket width (0 = bit-exact keys)",
    )
    serve_bench.add_argument(
        "--solver",
        default="heuristic-batch",
        metavar="NAME",
        help="registry solver answering the requests",
    )
    serve_bench.add_argument(
        "--window", type=int, default=64, help="batch accumulation window size"
    )
    serve_bench.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )

    timevary = commands.add_parser(
        "timevary",
        help="alternate registration and re-planned paging to a fixed point",
    )
    timevary.add_argument("--radius", type=int, default=3, help="hex disk radius")
    timevary.add_argument(
        "--kind",
        choices=("timer", "distance"),
        default="timer",
        help="registration policy family to optimize",
    )
    timevary.add_argument(
        "--candidates",
        default=None,
        metavar="T1,T2,...",
        help="threshold candidates (default 2,5,10,20 timer / 1,2,3,4 distance)",
    )
    timevary.add_argument(
        "--model",
        choices=("walk", "gravity", "waypoint"),
        default="gravity",
        help="mobility model whose kernel drives belief propagation",
    )
    timevary.add_argument(
        "--stay", type=float, default=0.4, help="random-walk stay probability"
    )
    timevary.add_argument("--rounds", type=int, default=3, help="paging delay budget")
    timevary.add_argument("--call-rate", type=float, default=0.08)
    timevary.add_argument(
        "--report-cost",
        type=float,
        default=1.0,
        help="uplink cost of one location update, relative to one page",
    )
    timevary.add_argument(
        "--planner",
        default="heuristic-batch",
        metavar="NAME",
        help="registry solver that re-plans paging from conditional priors",
    )
    timevary.add_argument(
        "--samples",
        type=int,
        default=20_000,
        help="trace length for empirically-estimated kernels (waypoint)",
    )
    timevary.add_argument("--seed", type=int, default=2026)

    contention = commands.add_parser(
        "contention",
        help="heavy-traffic sweep: concurrent call setups on finite channels",
    )
    contention.add_argument(
        "--radius", type=int, default=2, help="hex disk radius"
    )
    contention.add_argument(
        "--devices", type=int, default=8, help="devices in the network"
    )
    contention.add_argument(
        "--areas", type=int, default=3, help="location areas"
    )
    contention.add_argument(
        "--horizon", type=int, default=400, help="steps to simulate per point"
    )
    contention.add_argument(
        "--loads",
        default="0.25,0.5,1.0,1.5",
        metavar="R1,R2,...",
        help="offered loads (Poisson call arrivals per step)",
    )
    contention.add_argument(
        "--carriers",
        default="1,2,4",
        metavar="K1,K2,...",
        help="paging carriers per cell to sweep",
    )
    contention.add_argument(
        "--capacity",
        type=int,
        default=1,
        help="page slots per cell per round per carrier",
    )
    contention.add_argument(
        "--max-wait",
        type=int,
        default=8,
        help="starved steps before a pending call is blocked",
    )
    contention.add_argument(
        "--rounds", type=int, default=3, help="paging delay budget per call"
    )
    contention.add_argument("--seed", type=int, default=29)

    from .obs.report import add_trace_arguments

    trace = commands.add_parser(
        "trace", help="summarize a trace.jsonl produced by `repro --trace PATH`"
    )
    add_trace_arguments(trace)

    return parser


def _load_instance(path: str):
    from .core import PagingInstance

    if path == "-":
        payload = json.load(sys.stdin)
    else:
        with open(path) as handle:
            payload = json.load(handle)
    if "probabilities" not in payload:
        raise SystemExit("input JSON needs a 'probabilities' matrix")
    matrix = np.asarray(payload["probabilities"], dtype=float)
    max_rounds = int(payload.get("max_rounds", min(2, matrix.shape[1])))
    return PagingInstance.from_array(matrix, max_rounds, allow_zero=True)


def _command_plan(args: argparse.Namespace) -> int:
    from .core.serialization import save
    from .solvers import get_solver

    instance = _load_instance(args.input)
    if args.rounds is not None:
        instance = instance.with_max_rounds(args.rounds)
    print(
        f"instance: m={instance.num_devices} devices, c={instance.num_cells} "
        f"cells, d={instance.max_rounds} rounds"
    )
    if args.solver == "adaptive":
        result = get_solver("adaptive")(instance)
        print(
            f"adaptive replanning expected paging: "
            f"{result.expected_paging_float:.4f} cells"
        )
        return 0
    if args.solver == "exact":
        result = get_solver("exact")(instance, max_group_size=args.bandwidth)
        label = "exact optimal"
    else:
        planner = get_solver("heuristic-fast" if args.fast else "heuristic")
        result = planner(instance, max_group_size=args.bandwidth)
        label = "e/(e-1) heuristic"
    strategy = result.strategy
    for round_index, group in enumerate(strategy.groups, start=1):
        print(f"  round {round_index}: page cells {sorted(group)}")
    print(
        f"{label} expected paging: {result.expected_paging_float:.4f} "
        f"of {instance.num_cells} cells"
    )
    if args.output:
        save(strategy, args.output)
        print(f"strategy written to {args.output}")
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    from .core.serialization import save
    from .solvers import UnknownSolverError, get_solver

    try:
        solver = get_solver(args.solver)
    except UnknownSolverError as error:
        raise SystemExit(str(error))
    instance = _load_instance(args.input)
    if args.rounds is not None:
        instance = instance.with_max_rounds(args.rounds)
    options: "dict[str, object]" = {}
    if args.bandwidth is not None:
        options["max_group_size"] = args.bandwidth
    if args.quorum is not None:
        options["quorum"] = args.quorum
    if args.order is not None:
        try:
            options["order"] = tuple(int(part) for part in args.order.split(","))
        except ValueError:
            raise SystemExit(f"--order wants comma-separated integers, got {args.order!r}")
    if args.costs is not None:
        try:
            options["costs"] = tuple(float(part) for part in args.costs.split(","))
        except ValueError:
            raise SystemExit(f"--costs wants comma-separated numbers, got {args.costs!r}")
    try:
        result = solver(instance, **options)
    except TypeError as error:
        raise SystemExit(str(error))
    spec = solver.spec
    groups = None
    if result.strategy is not None:
        groups = [sorted(group) for group in result.strategy.groups]
    if args.json:
        exact = result.expected_paging_fraction
        payload = {
            "schema": "repro-solve/1",
            "solver": spec.name,
            "kind": spec.kind,
            "capabilities": sorted(spec.capabilities),
            "expected_paging": result.expected_paging_float,
            "expected_paging_exact": None if exact is None else str(exact),
            "wall_time_s": result.wall_time_s,
            "groups": groups,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"instance: m={instance.num_devices} devices, c={instance.num_cells} "
            f"cells, d={instance.max_rounds} rounds"
        )
        print(f"solver: {spec.name} ({spec.kind}) — {spec.summary}")
        if groups is not None:
            for round_index, group in enumerate(groups, start=1):
                print(f"  round {round_index}: page cells {group}")
        objective = result.extras.get("objective", "expected paging")
        print(
            f"{objective}: {result.expected_paging_float:.4f}"
            + ("" if result.expected_paging_fraction is None
               else f" (= {result.expected_paging_fraction})")
        )
    if args.output:
        if result.strategy is None:
            raise SystemExit(
                f"solver {spec.name!r} returns a value, not a strategy; "
                "nothing to write"
            )
        save(result.strategy, args.output)
        if not args.json:
            print(f"strategy written to {args.output}")
    return 0


def _command_solvers(args: argparse.Namespace) -> int:
    from .solvers import list_solvers

    specs = list_solvers(kind=args.kind, capability=args.capability)
    if args.json:
        payload = {
            "schema": "repro-solvers/1",
            "count": len(specs),
            "solvers": [spec.to_json() for spec in specs],
        }
        print(json.dumps(payload, indent=2))
        return 0
    if not specs:
        print("no registered solvers match the filters")
        return 1
    rows = []
    for spec in specs:
        requires = ",".join(spec.required) or "-"
        caps = ",".join(sorted(spec.capabilities)) or "-"
        factor = f"{spec.factor:.4f}" if spec.factor is not None else "-"
        rows.append((spec.name, spec.kind, caps, factor, requires, spec.anchor))
    header = ("name", "kind", "capabilities", "factor", "requires", "anchor")
    widths = [
        max(len(header[i]), max(len(row[i]) for row in rows))
        for i in range(len(header) - 1)
    ]
    def fmt(row):
        lead = "  ".join(row[i].ljust(widths[i]) for i in range(len(widths)))
        return f"{lead}  {row[-1]}"
    print(fmt(header))
    for row in rows:
        print(fmt(row))
    print(f"\n{len(specs)} solvers (details: `repro solvers --json`)")
    return 0


def _parse_outages(specs):
    from .cellnet import CellOutage

    outages = []
    for spec in specs or ():
        parts = spec.split(":")
        if len(parts) != 3:
            raise SystemExit(f"--outage wants CELL:START:END, got {spec!r}")
        try:
            cell, start, end = (int(part) for part in parts)
        except ValueError:
            raise SystemExit(f"--outage wants integers, got {spec!r}")
        outages.append(CellOutage(cell=cell, start=start, end=end))
    return tuple(outages)


def _command_simulate(args: argparse.Namespace) -> int:
    from .cellnet import (
        CellTopology,
        CellularSimulator,
        FaultModel,
        GravityMobility,
        LocationAreaPlan,
        RecoveryPolicy,
        SimulationConfig,
    )

    rng = np.random.default_rng(args.seed)
    topology = CellTopology.hexagonal_disk(args.radius)
    plan = LocationAreaPlan.by_bfs(topology, args.areas)
    attraction = np.random.default_rng(args.seed + 1).uniform(
        0.5, 3.0, size=topology.num_cells
    )
    models = [GravityMobility(topology, attraction) for _ in range(args.devices)]
    faults = FaultModel(
        page_loss=args.page_loss,
        update_loss=args.update_loss,
        stale_after=args.stale_after,
        outages=_parse_outages(args.outage),
    )
    config = SimulationConfig(
        horizon=args.horizon,
        call_rate=args.call_rate,
        max_paging_rounds=args.rounds,
        reporting=args.reporting,
        pager=args.pager,
        prior_mode=args.prior_mode,
        distance_threshold=args.distance_threshold,
        faults=None if faults.is_zero else faults,
        recovery=None if faults.is_zero else RecoveryPolicy(max_retries=args.retries),
    )
    simulator = CellularSimulator(topology, plan, models, config, rng=rng)
    report = simulator.run()
    print(
        f"network: {topology.num_cells} cells, {args.areas} location areas, "
        f"{args.devices} devices, horizon {args.horizon}"
    )
    for key, value in report.summary().items():
        print(f"  {key:>20}: {value:.2f}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, main as run

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint DIR")
    print(
        run(
            args.ids or None,
            jobs=args.jobs,
            checkpoint_dir=args.checkpoint,
            resume=args.resume,
            task_retries=args.task_retries,
        )
    )
    return 0


def _command_gadget(args: argparse.Namespace) -> int:
    from .hardness import (
        reduce_quasipartition1_to_conference_call,
        solve_quasipartition1,
    )
    from .solvers import get_solver

    try:
        sizes = [Fraction(part.strip()) for part in args.sizes.split(",")]
    except ValueError as error:
        raise SystemExit(f"could not parse sizes: {error}")
    witness = solve_quasipartition1(sizes)
    reduction = reduce_quasipartition1_to_conference_call(sizes)
    optimum = get_solver("exact")(reduction.instance)
    hits = optimum.expected_paging == reduction.lower_bound
    print(f"sizes: {[str(size) for size in sizes]}")
    print(f"quasipartition witness: {witness}")
    print(f"lower bound LB = {reduction.lower_bound} ({float(reduction.lower_bound):.6f})")
    print(f"optimal EP     = {optimum.expected_paging} ({float(optimum.expected_paging):.6f})")
    print(f"EP == LB (iff a quasipartition exists): {hits}")
    if hits:
        print(f"first paged group encodes the subset: {reduction.witness_from_strategy(optimum.strategy)}")
    return 0


def _command_render(args: argparse.Namespace) -> int:
    from .cellnet import (
        CellTopology,
        LocationAreaPlan,
        render_location_areas,
        render_strategy,
        strategy_summary,
    )

    topology = CellTopology.hexagonal_disk(args.radius)
    plan = LocationAreaPlan.by_bfs(topology, args.areas)
    print(f"network: {topology.num_cells} cells in a radius-{args.radius} hex disk")
    print(render_location_areas(topology, plan))
    if args.plan is not None:
        from .solvers import get_solver

        instance = _load_instance(args.plan)
        if instance.num_cells != topology.num_cells:
            raise SystemExit(
                f"instance has {instance.num_cells} cells; the rendered network "
                f"has {topology.num_cells} (adjust --radius)"
            )
        result = get_solver("heuristic")(
            instance.with_max_rounds(min(args.rounds, instance.num_cells))
        )
        print()
        print(render_strategy(topology, result.strategy))
        print()
        print(strategy_summary(result.strategy))
        print(f"expected paging: {float(result.expected_paging):.4f} cells")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from .lint.engine import run_from_args

    return run_from_args(args)


def _command_bench(args: argparse.Namespace) -> int:
    from .bench import run_from_args

    return run_from_args(args)


def _command_serve_bench(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, WorkloadConfig, serve_bench

    try:
        workload = WorkloadConfig(
            requests=args.requests,
            areas=args.areas,
            devices=args.devices,
            cells=args.cells,
            rounds=args.rounds,
            profiles_per_area=args.profiles_per_area,
            hot_fraction=args.hot_fraction,
            seed=args.seed,
        )
        config = ServiceConfig(
            num_shards=args.shards,
            cache_size=args.cache_size,
            quantization_step=args.quantization_step,
            solver=args.solver,
            batch_window=args.window,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    report = serve_bench(config, workload)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(
        f"workload: {args.requests} requests over {args.areas} areas "
        f"(m={args.devices}, c={args.cells}, d={args.rounds}, "
        f"hot={args.hot_fraction:g})"
    )
    print(
        f"service: solver={args.solver}, shards={args.shards}, "
        f"cache={args.cache_size}/shard, step={args.quantization_step:g}, "
        f"window={args.window}"
    )
    for regime in ("cold", "warm"):
        pass_report = report[regime]
        print(
            f"{regime:>5}: {pass_report['throughput_rps']:>10.0f} req/s  "
            f"hit-rate {pass_report['hit_rate']:.1%}  "
            f"batches {pass_report['batches']}  "
            f"mean batch {pass_report['mean_batch_size']:.1f}  "
            f"shed {pass_report['sheds']}"
        )
    return 0


def _command_timevary(args: argparse.Namespace) -> int:
    from .cellnet import (
        CellTopology,
        GravityMobility,
        RandomWalk,
        RandomWaypoint,
        hmy_fixed_point,
        transition_matrix,
    )

    topology = CellTopology.hexagonal_disk(args.radius)
    rng = np.random.default_rng(args.seed)
    if args.model == "walk":
        model = RandomWalk(topology, stay_probability=args.stay)
    elif args.model == "gravity":
        attraction = np.random.default_rng(args.seed + 1).uniform(
            0.5, 3.0, size=topology.num_cells
        )
        model = GravityMobility(topology, attraction)
    else:
        model = RandomWaypoint(topology)
    matrix = transition_matrix(
        model, topology, rng=rng, samples=args.samples
    )
    if args.candidates is not None:
        try:
            candidates = [int(part) for part in args.candidates.split(",")]
        except ValueError as error:
            raise SystemExit(f"could not parse candidates: {error}")
    elif args.kind == "timer":
        candidates = [2, 5, 10, 20]
    else:
        candidates = [1, 2, 3, 4]
    result = hmy_fixed_point(
        topology,
        matrix,
        kind=args.kind,
        candidates=candidates,
        max_rounds=args.rounds,
        call_rate=args.call_rate,
        report_cost=args.report_cost,
        planner=args.planner,
    )
    print(
        f"network: {topology.num_cells} cells  mobility: {args.model}  "
        f"policy: {args.kind} over {candidates}"
    )
    for step in result.trajectory:
        print(
            f"  iter {step.iteration} ({step.phase:>12}): threshold "
            f"{step.evaluation.threshold:>3}  cost {step.evaluation.combined_cost:.6f}  "
            f"(paging/call {step.evaluation.paging_per_call:.3f}, "
            f"report-rate {step.evaluation.report_rate:.4f})"
        )
    status = "converged" if result.converged else "iteration cap reached"
    print(
        f"fixed point: {args.kind} threshold {result.threshold} at combined "
        f"cost {result.evaluation.combined_cost:.6f} ({status})"
    )
    return 0


def _command_contention(args: argparse.Namespace) -> int:
    from .experiments import run_e29_contention

    def parse_list(text, cast, flag):
        try:
            return [cast(part) for part in text.split(",") if part.strip()]
        except ValueError as error:
            raise SystemExit(f"could not parse {flag}: {error}")

    loads = parse_list(args.loads, float, "--loads")
    carriers = parse_list(args.carriers, int, "--carriers")
    if not loads or not carriers:
        raise SystemExit("--loads and --carriers each need at least one value")
    table = run_e29_contention(
        loads,
        carriers,
        radius=args.radius,
        num_devices=args.devices,
        num_areas=args.areas,
        horizon=args.horizon,
        channel_capacity=args.capacity,
        max_rounds=args.rounds,
        max_wait=args.max_wait,
        seed=args.seed,
    )
    print(table.render())
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from .obs.report import run_from_args

    return run_from_args(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (also installed as the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "plan": _command_plan,
        "solve": _command_solve,
        "solvers": _command_solvers,
        "simulate": _command_simulate,
        "experiments": _command_experiments,
        "gadget": _command_gadget,
        "render": _command_render,
        "lint": _command_lint,
        "bench": _command_bench,
        "serve-bench": _command_serve_bench,
        "timevary": _command_timevary,
        "contention": _command_contention,
        "trace": _command_trace,
    }
    handler = handlers[args.command]
    if args.trace is not None:
        from .obs import JsonlSink, Tracer, use_tracer

        with use_tracer(Tracer(JsonlSink(args.trace))):
            status = handler(args)
        print(f"trace written to {args.trace}", file=sys.stderr)
        return status
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
