"""Command-line interface: ``repro <command>``.

Four commands cover the library's workflows:

* ``repro plan`` — read a probability matrix from JSON and print a paging
  strategy (heuristic, exact, or adaptive value).
* ``repro simulate`` — run the cellular-network simulation and print the
  link-usage summary.
* ``repro experiments`` — regenerate experiment tables (all or by id),
  optionally fanned out over worker processes with ``--jobs``.
* ``repro gadget`` — run the Lemma 3.2 NP-hardness reduction on a list of
  sizes and report whether the optimum hits the lower bound.
* ``repro lint`` — domain-aware static analysis (exact-arithmetic,
  reproducibility, and paper-traceability rules; see docs/linting.md).
* ``repro bench`` — time the batched/parallel kernels on pinned seeds and
  record a ``BENCH_<n>.json`` trajectory snapshot (see docs/performance.md).
* ``repro trace`` — summarize a ``trace.jsonl`` produced by the global
  ``--trace PATH`` flag (see docs/observability.md).

``repro --trace PATH <command> ...`` runs any command under a JSONL tracer:
spans, counters, and paging histograms land in ``PATH`` for ``repro trace``
to read.

JSON input format for ``plan``::

    {"probabilities": [[0.5, 0.3, 0.2], [0.1, 0.4, 0.5]], "max_rounds": 2}
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction
from typing import Optional, Sequence

import numpy as np


#: One line per subcommand — rendered in the ``--help`` epilog and asserted
#: against the README command table by ``tests/test_cli.py``.
COMMAND_SUMMARY: "dict[str, str]" = {
    "plan": "plan a paging strategy from a JSON instance",
    "simulate": "run the cellular-network simulation (optionally with faults)",
    "experiments": "regenerate experiment tables (--jobs N, --checkpoint/--resume)",
    "gadget": "run the Lemma 3.2 NP-hardness reduction",
    "render": "ASCII map of a network's areas or a plan",
    "lint": "domain-aware static analysis (RPL001-RPL006)",
    "bench": "record a BENCH_<n>.json performance snapshot",
    "trace": "summarize a trace.jsonl written by --trace",
}


def _build_parser() -> argparse.ArgumentParser:
    epilog_lines = ["commands:"] + [
        f"  repro {name:<12} {summary}" for name, summary in COMMAND_SUMMARY.items()
    ]
    epilog_lines.append(
        "\nany command accepts a leading `--trace PATH` to record spans, "
        "counters,\nand paging histograms as JSON lines (docs/observability.md)."
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conference Call paging under delay constraints "
        "(Bar-Noy & Malewicz, PODC 2002)",
        epilog="\n".join(epilog_lines),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="run the command under a JSONL tracer writing to PATH "
        "(read it back with `repro trace PATH`)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser("plan", help="plan a paging strategy from JSON")
    plan.add_argument("input", help="path to a JSON instance file, or '-' for stdin")
    plan.add_argument(
        "--solver",
        choices=("heuristic", "exact", "adaptive"),
        default="heuristic",
        help="heuristic (Fig. 1), exact (subset DP), or adaptive value",
    )
    plan.add_argument("--rounds", type=int, default=None, help="override the delay d")
    plan.add_argument(
        "--bandwidth", type=int, default=None, help="max cells paged per round"
    )
    plan.add_argument(
        "--output", default=None, help="write the planned strategy to a JSON file"
    )
    plan.add_argument(
        "--fast",
        action="store_true",
        help="use the vectorized planner (large instances, heuristic only)",
    )

    simulate = commands.add_parser("simulate", help="run the cellular simulation")
    simulate.add_argument("--radius", type=int, default=3, help="hex disk radius")
    simulate.add_argument("--devices", type=int, default=6)
    simulate.add_argument("--areas", type=int, default=4, help="location areas")
    simulate.add_argument("--horizon", type=int, default=500, help="time steps")
    simulate.add_argument("--call-rate", type=float, default=0.08)
    simulate.add_argument(
        "--pager", choices=("blanket", "heuristic", "adaptive"), default="heuristic"
    )
    simulate.add_argument(
        "--reporting",
        choices=("never", "always", "la", "distance", "timer"),
        default="la",
    )
    simulate.add_argument("--rounds", type=int, default=3, help="paging delay budget")
    simulate.add_argument("--seed", type=int, default=2002)
    simulate.add_argument(
        "--page-loss",
        type=float,
        default=0.0,
        help="probability a downlink page is lost (enables the fault engine)",
    )
    simulate.add_argument(
        "--update-loss",
        type=float,
        default=0.0,
        help="probability an uplink location update is lost",
    )
    simulate.add_argument(
        "--stale-after",
        type=int,
        default=None,
        metavar="STEPS",
        help="distrust confirmed registry fixes older than STEPS",
    )
    simulate.add_argument(
        "--outage",
        action="append",
        default=None,
        metavar="CELL:START:END",
        help="schedule a cell outage (repeatable)",
    )
    simulate.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-page retries under faults (exponential backoff, within --rounds)",
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate experiment tables"
    )
    experiments.add_argument(
        "ids", nargs="*", help="experiment ids (default: run everything)"
    )
    experiments.add_argument(
        "--list", action="store_true", help="list known experiment ids and exit"
    )
    experiments.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (default 1 = serial; output is byte-identical "
        "either way)",
    )
    experiments.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist each finished table to DIR (manifest + per-task files) "
        "so an interrupted run can be resumed",
    )
    experiments.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed tables from --checkpoint DIR and run only "
        "what is missing (byte-identical to an uninterrupted run)",
    )
    experiments.add_argument(
        "--task-retries",
        type=int,
        default=1,
        metavar="N",
        help="automatic in-process retries of failed tasks/workers",
    )

    gadget = commands.add_parser(
        "gadget", help="run the Lemma 3.2 reduction on comma-separated sizes"
    )
    gadget.add_argument("sizes", help="e.g. 3,1,2,2,1,3 (count divisible by 3)")

    render = commands.add_parser(
        "render", help="ASCII map of a hexagonal network's areas or a plan"
    )
    render.add_argument("--radius", type=int, default=3, help="hex disk radius")
    render.add_argument("--areas", type=int, default=4, help="location areas")
    render.add_argument(
        "--plan",
        default=None,
        help="optionally: JSON instance file; renders its heuristic strategy",
    )
    render.add_argument("--rounds", type=int, default=3)
    render.add_argument("--seed", type=int, default=2002)

    from .lint.engine import add_lint_arguments

    lint = commands.add_parser(
        "lint", help="run the domain-aware static-analysis rules (RPL001-RPL006)"
    )
    add_lint_arguments(lint)

    from .bench import add_bench_arguments

    bench = commands.add_parser(
        "bench", help="record a BENCH_<n>.json performance-trajectory snapshot"
    )
    add_bench_arguments(bench)

    from .obs.report import add_trace_arguments

    trace = commands.add_parser(
        "trace", help="summarize a trace.jsonl produced by `repro --trace PATH`"
    )
    add_trace_arguments(trace)

    return parser


def _load_instance(path: str):
    from .core import PagingInstance

    if path == "-":
        payload = json.load(sys.stdin)
    else:
        with open(path) as handle:
            payload = json.load(handle)
    if "probabilities" not in payload:
        raise SystemExit("input JSON needs a 'probabilities' matrix")
    matrix = np.asarray(payload["probabilities"], dtype=float)
    max_rounds = int(payload.get("max_rounds", min(2, matrix.shape[1])))
    return PagingInstance.from_array(matrix, max_rounds, allow_zero=True)


def _command_plan(args: argparse.Namespace) -> int:
    from .core import (
        adaptive_expected_paging,
        conference_call_heuristic,
        conference_call_heuristic_fast,
        optimal_strategy,
    )
    from .core.serialization import save

    instance = _load_instance(args.input)
    if args.rounds is not None:
        instance = instance.with_max_rounds(args.rounds)
    print(
        f"instance: m={instance.num_devices} devices, c={instance.num_cells} "
        f"cells, d={instance.max_rounds} rounds"
    )
    if args.solver == "adaptive":
        value = adaptive_expected_paging(instance)
        print(f"adaptive replanning expected paging: {float(value):.4f} cells")
        return 0
    if args.solver == "exact":
        result = optimal_strategy(instance, max_group_size=args.bandwidth)
        strategy = result.strategy
        value = result.expected_paging
        label = "exact optimal"
    else:
        planner = (
            conference_call_heuristic_fast if args.fast else conference_call_heuristic
        )
        result = planner(instance, max_group_size=args.bandwidth)
        strategy = result.strategy
        value = result.expected_paging
        label = "e/(e-1) heuristic"
    for round_index, group in enumerate(strategy.groups, start=1):
        print(f"  round {round_index}: page cells {sorted(group)}")
    print(f"{label} expected paging: {float(value):.4f} of {instance.num_cells} cells")
    if args.output:
        save(strategy, args.output)
        print(f"strategy written to {args.output}")
    return 0


def _parse_outages(specs):
    from .cellnet import CellOutage

    outages = []
    for spec in specs or ():
        parts = spec.split(":")
        if len(parts) != 3:
            raise SystemExit(f"--outage wants CELL:START:END, got {spec!r}")
        try:
            cell, start, end = (int(part) for part in parts)
        except ValueError:
            raise SystemExit(f"--outage wants integers, got {spec!r}")
        outages.append(CellOutage(cell=cell, start=start, end=end))
    return tuple(outages)


def _command_simulate(args: argparse.Namespace) -> int:
    from .cellnet import (
        CellTopology,
        CellularSimulator,
        FaultModel,
        GravityMobility,
        LocationAreaPlan,
        RecoveryPolicy,
        SimulationConfig,
    )

    rng = np.random.default_rng(args.seed)
    topology = CellTopology.hexagonal_disk(args.radius)
    plan = LocationAreaPlan.by_bfs(topology, args.areas)
    attraction = np.random.default_rng(args.seed + 1).uniform(
        0.5, 3.0, size=topology.num_cells
    )
    models = [GravityMobility(topology, attraction) for _ in range(args.devices)]
    faults = FaultModel(
        page_loss=args.page_loss,
        update_loss=args.update_loss,
        stale_after=args.stale_after,
        outages=_parse_outages(args.outage),
    )
    config = SimulationConfig(
        horizon=args.horizon,
        call_rate=args.call_rate,
        max_paging_rounds=args.rounds,
        reporting=args.reporting,
        pager=args.pager,
        faults=None if faults.is_zero else faults,
        recovery=None if faults.is_zero else RecoveryPolicy(max_retries=args.retries),
    )
    simulator = CellularSimulator(topology, plan, models, config, rng=rng)
    report = simulator.run()
    print(
        f"network: {topology.num_cells} cells, {args.areas} location areas, "
        f"{args.devices} devices, horizon {args.horizon}"
    )
    for key, value in report.summary().items():
        print(f"  {key:>20}: {value:.2f}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, main as run

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint DIR")
    print(
        run(
            args.ids or None,
            jobs=args.jobs,
            checkpoint_dir=args.checkpoint,
            resume=args.resume,
            task_retries=args.task_retries,
        )
    )
    return 0


def _command_gadget(args: argparse.Namespace) -> int:
    from .core import optimal_strategy
    from .hardness import (
        reduce_quasipartition1_to_conference_call,
        solve_quasipartition1,
    )

    try:
        sizes = [Fraction(part.strip()) for part in args.sizes.split(",")]
    except ValueError as error:
        raise SystemExit(f"could not parse sizes: {error}")
    witness = solve_quasipartition1(sizes)
    reduction = reduce_quasipartition1_to_conference_call(sizes)
    optimum = optimal_strategy(reduction.instance)
    hits = optimum.expected_paging == reduction.lower_bound
    print(f"sizes: {[str(size) for size in sizes]}")
    print(f"quasipartition witness: {witness}")
    print(f"lower bound LB = {reduction.lower_bound} ({float(reduction.lower_bound):.6f})")
    print(f"optimal EP     = {optimum.expected_paging} ({float(optimum.expected_paging):.6f})")
    print(f"EP == LB (iff a quasipartition exists): {hits}")
    if hits:
        print(f"first paged group encodes the subset: {reduction.witness_from_strategy(optimum.strategy)}")
    return 0


def _command_render(args: argparse.Namespace) -> int:
    from .cellnet import (
        CellTopology,
        LocationAreaPlan,
        render_location_areas,
        render_strategy,
        strategy_summary,
    )

    topology = CellTopology.hexagonal_disk(args.radius)
    plan = LocationAreaPlan.by_bfs(topology, args.areas)
    print(f"network: {topology.num_cells} cells in a radius-{args.radius} hex disk")
    print(render_location_areas(topology, plan))
    if args.plan is not None:
        from .core import conference_call_heuristic

        instance = _load_instance(args.plan)
        if instance.num_cells != topology.num_cells:
            raise SystemExit(
                f"instance has {instance.num_cells} cells; the rendered network "
                f"has {topology.num_cells} (adjust --radius)"
            )
        result = conference_call_heuristic(
            instance.with_max_rounds(min(args.rounds, instance.num_cells))
        )
        print()
        print(render_strategy(topology, result.strategy))
        print()
        print(strategy_summary(result.strategy))
        print(f"expected paging: {float(result.expected_paging):.4f} cells")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from .lint.engine import run_from_args

    return run_from_args(args)


def _command_bench(args: argparse.Namespace) -> int:
    from .bench import run_from_args

    return run_from_args(args)


def _command_trace(args: argparse.Namespace) -> int:
    from .obs.report import run_from_args

    return run_from_args(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (also installed as the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "plan": _command_plan,
        "simulate": _command_simulate,
        "experiments": _command_experiments,
        "gadget": _command_gadget,
        "render": _command_render,
        "lint": _command_lint,
        "bench": _command_bench,
        "trace": _command_trace,
    }
    handler = handlers[args.command]
    if args.trace is not None:
        from .obs import JsonlSink, Tracer, use_tracer

        with use_tracer(Tracer(JsonlSink(args.trace))):
            status = handler(args)
        print(f"trace written to {args.trace}", file=sys.stderr)
        return status
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
