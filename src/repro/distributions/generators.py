"""Synthetic location-probability distributions.

The paper models each mobile device as a probability vector over the cells of
a location area and cites profile-based estimation work [15, 16] for where
those vectors come from.  This module supplies the synthetic families used by
the benchmarks: uniform, Zipf-like, geometric, Dirichlet, hotspot (a home
cell plus decaying neighborhood), and two-tier home/roam mixtures — all
normalized, strictly positive unless asked otherwise, and reproducible via an
injected :class:`numpy.random.Generator`.
"""

from __future__ import annotations


import numpy as np

from ..core.instance import PagingInstance
from ..errors import InvalidInstanceError


def _normalize_rows(matrix: np.ndarray, floor: float) -> np.ndarray:
    if floor < 0:
        raise InvalidInstanceError("probability floor must be non-negative")
    matrix = np.asarray(matrix, dtype=float) + floor
    totals = matrix.sum(axis=1, keepdims=True)
    if np.any(totals <= 0):
        raise InvalidInstanceError("every row needs positive total mass")
    return matrix / totals


def uniform_instance(
    num_devices: int, num_cells: int, max_rounds: int
) -> PagingInstance:
    """All devices uniform over all cells."""
    return PagingInstance.uniform(num_devices, num_cells, max_rounds)


def dirichlet_instance(
    num_devices: int,
    num_cells: int,
    max_rounds: int,
    *,
    rng: np.random.Generator,
    concentration: float = 1.0,
) -> PagingInstance:
    """Rows drawn from a symmetric Dirichlet; low concentration = skewed."""
    if concentration <= 0:
        raise InvalidInstanceError("concentration must be positive")
    matrix = rng.dirichlet(np.full(num_cells, concentration), size=num_devices)
    return PagingInstance.from_array(_normalize_rows(matrix, 0.0), max_rounds)


def zipf_instance(
    num_devices: int,
    num_cells: int,
    max_rounds: int,
    *,
    rng: np.random.Generator,
    exponent: float = 1.0,
) -> PagingInstance:
    """Zipf-decaying cell popularity, independently permuted per device.

    Each device has its own favorite-cell ranking, producing the skewed but
    heterogeneous profiles that make the conference-call trade-off
    interesting (devices disagree on which cells are likely).
    """
    if exponent < 0:
        raise InvalidInstanceError("exponent must be non-negative")
    base = 1.0 / np.arange(1, num_cells + 1, dtype=float) ** exponent
    rows = []
    for _ in range(num_devices):
        ranking = rng.permutation(num_cells)
        row = np.empty(num_cells)
        row[ranking] = base
        rows.append(row)
    return PagingInstance.from_array(_normalize_rows(np.array(rows), 0.0), max_rounds)


def geometric_instance(
    num_devices: int,
    num_cells: int,
    max_rounds: int,
    *,
    rng: np.random.Generator,
    decay: float = 0.7,
) -> PagingInstance:
    """Geometrically decaying mass from a random per-device anchor cell."""
    if not 0 < decay < 1:
        raise InvalidInstanceError("decay must lie strictly between 0 and 1")
    rows = []
    for _ in range(num_devices):
        anchor = int(rng.integers(num_cells))
        distance = np.abs(np.arange(num_cells) - anchor)
        rows.append(decay**distance)
    return PagingInstance.from_array(_normalize_rows(np.array(rows), 0.0), max_rounds)


def hotspot_instance(
    num_devices: int,
    num_cells: int,
    max_rounds: int,
    *,
    rng: np.random.Generator,
    home_mass: float = 0.6,
    floor: float = 1e-6,
) -> PagingInstance:
    """A dominant home cell per device; the rest spread uniformly.

    The classic location-management profile: a commuter is most likely at
    home/work and rarely elsewhere.  ``floor`` keeps probabilities positive
    as the paper's model requires.
    """
    if not 0 < home_mass < 1:
        raise InvalidInstanceError("home_mass must lie strictly between 0 and 1")
    rows = []
    for _ in range(num_devices):
        row = np.full(num_cells, (1.0 - home_mass) / max(1, num_cells - 1))
        home = int(rng.integers(num_cells))
        row[home] = home_mass
        rows.append(row)
    return PagingInstance.from_array(_normalize_rows(np.array(rows), floor), max_rounds)


def two_tier_instance(
    num_devices: int,
    num_cells: int,
    max_rounds: int,
    *,
    rng: np.random.Generator,
    home_cells: int = 3,
    home_mass: float = 0.8,
    floor: float = 1e-6,
) -> PagingInstance:
    """Mass split between a small home zone and the roaming remainder.

    Mirrors the GSM location-area intuition: a device is usually inside a
    few registered cells and occasionally roaming anywhere else.
    """
    if not 1 <= home_cells <= num_cells:
        raise InvalidInstanceError("home_cells must lie between 1 and num_cells")
    rows = []
    for _ in range(num_devices):
        zone = rng.choice(num_cells, size=home_cells, replace=False)
        row = np.full(num_cells, (1.0 - home_mass) / num_cells)
        row[zone] += home_mass / home_cells
        rows.append(row)
    return PagingInstance.from_array(_normalize_rows(np.array(rows), floor), max_rounds)


def clustered_instance(
    num_devices: int,
    num_cells: int,
    max_rounds: int,
    *,
    rng: np.random.Generator,
    num_levels: int = 3,
) -> PagingInstance:
    """Cells share one of a few probability levels (the Section 5 subclass).

    Designed for the clustered exhaustive scheme (experiment E15): the
    probability values per device take at most ``num_levels`` distinct
    values, and cells are grouped so whole columns repeat.
    """
    if num_levels < 1:
        raise InvalidInstanceError("need at least one level")
    level_values = np.sort(rng.uniform(0.2, 1.0, size=num_levels))[::-1]
    column_levels = rng.integers(num_levels, size=num_cells)
    matrix = np.empty((num_devices, num_cells))
    for device in range(num_devices):
        # All devices share the column structure so columns cluster exactly.
        matrix[device] = level_values[column_levels] * (device + 1)
    return PagingInstance.from_array(_normalize_rows(matrix, 0.0), max_rounds)


def adversarial_instance(
    num_cells: int,
    max_rounds: int,
    *,
    rng: np.random.Generator,
    noise: float = 0.02,
) -> PagingInstance:
    """A randomized relative of the Section 4.3 lower-bound gadget.

    Two devices: one concentrates extra mass on a cell the other avoids, so
    the weight ordering is misled exactly as in the 320/317 example; noise
    varies the gadget across draws.
    """
    if num_cells < 4:
        raise InvalidInstanceError("the gadget needs at least 4 cells")
    c = num_cells
    device_one = np.full(c, 1.0 / c)
    device_two = np.full(c, 1.0 / c)
    heavy = int(rng.integers(c // 2))
    avoided = c - 1 - int(rng.integers(c // 4))
    device_one[heavy] += device_one[avoided]
    device_one[avoided] = 0.0
    device_two[heavy] = 0.0
    device_two += rng.uniform(0.0, noise, size=c)
    device_one += rng.uniform(0.0, noise, size=c)
    device_one[avoided] = 1e-9
    device_two[heavy] = 1e-9
    matrix = np.vstack([device_one, device_two])
    return PagingInstance.from_array(
        _normalize_rows(matrix, 0.0), max_rounds, allow_zero=True
    )


def instance_family(
    name: str,
    num_devices: int,
    num_cells: int,
    max_rounds: int,
    *,
    rng: np.random.Generator,
) -> PagingInstance:
    """Dispatch by family name — the benchmarks' single entry point."""
    factories = {
        "uniform": lambda: uniform_instance(num_devices, num_cells, max_rounds),
        "dirichlet": lambda: dirichlet_instance(
            num_devices, num_cells, max_rounds, rng=rng
        ),
        "skewed-dirichlet": lambda: dirichlet_instance(
            num_devices, num_cells, max_rounds, rng=rng, concentration=0.3
        ),
        "zipf": lambda: zipf_instance(num_devices, num_cells, max_rounds, rng=rng),
        "geometric": lambda: geometric_instance(
            num_devices, num_cells, max_rounds, rng=rng
        ),
        "hotspot": lambda: hotspot_instance(
            num_devices, num_cells, max_rounds, rng=rng
        ),
        "two-tier": lambda: two_tier_instance(
            num_devices, num_cells, max_rounds, rng=rng
        ),
        "clustered": lambda: clustered_instance(
            num_devices, num_cells, max_rounds, rng=rng
        ),
        "adversarial": lambda: adversarial_instance(num_cells, max_rounds, rng=rng),
    }
    if name not in factories:
        raise InvalidInstanceError(
            f"unknown family {name!r}; choose from {sorted(factories)}"
        )
    return factories[name]()


#: The family names accepted by :func:`instance_family`.
FAMILY_NAMES = (
    "uniform",
    "dirichlet",
    "skewed-dirichlet",
    "zipf",
    "geometric",
    "hotspot",
    "two-tier",
    "clustered",
    "adversarial",
)
