"""Correlated device locations: stressing the independence assumption.

The paper's model assumes device locations are independent (Section 1.2).
Conference-call participants, however, often travel together — colleagues in
one building, a family in one car.  This module generates *correlated* joint
location distributions with prescribed marginals so the optimizer (which
only sees marginals) can be evaluated against the truth:

* :class:`AnchoredPopulation` — with probability ``cohesion`` a trial is
  "anchored": every device sits in one common cell drawn from the anchor
  distribution; otherwise devices draw independently from their own
  distributions.  The marginal of device ``i`` is then
  ``cohesion * anchor + (1 - cohesion) * individual_i``, which
  :meth:`AnchoredPopulation.marginal_instance` hands to the planner.

Expected paging under the true joint law is computed exactly by mixing the
two regimes (the anchored regime stops at the round containing the common
cell), so experiment E24 can chart model error as cohesion grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.instance import PagingInstance
from ..core.strategy import Strategy
from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class AnchoredPopulation:
    """A cohesion-mixture joint distribution over device locations."""

    anchor: Tuple[float, ...]
    individual: Tuple[Tuple[float, ...], ...]
    cohesion: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.cohesion <= 1.0:
            raise InvalidInstanceError("cohesion must lie in [0, 1]")
        if abs(sum(self.anchor) - 1.0) > 1e-9:
            raise InvalidInstanceError("anchor distribution must sum to 1")
        for row in self.individual:
            if len(row) != len(self.anchor):
                raise InvalidInstanceError("all distributions need equal length")
            if abs(sum(row) - 1.0) > 1e-9:
                raise InvalidInstanceError("individual rows must sum to 1")

    @property
    def num_devices(self) -> int:
        return len(self.individual)

    @property
    def num_cells(self) -> int:
        return len(self.anchor)

    # ------------------------------------------------------------------
    def marginal_instance(self, max_rounds: int) -> PagingInstance:
        """What the system believes: the (correct) marginals, assumed independent."""
        rows = []
        for row in self.individual:
            rows.append(
                [
                    self.cohesion * a + (1.0 - self.cohesion) * p
                    for a, p in zip(self.anchor, row)
                ]
            )
        return PagingInstance(rows, max_rounds, allow_zero=True)

    def sample_locations(self, rng: np.random.Generator) -> Tuple[int, ...]:
        """Draw one joint outcome from the true (correlated) law."""
        cells = np.arange(self.num_cells)
        if rng.random() < self.cohesion:
            common = int(rng.choice(cells, p=np.asarray(self.anchor)))
            return tuple(common for _ in range(self.num_devices))
        return tuple(
            int(rng.choice(cells, p=np.asarray(row))) for row in self.individual
        )

    # ------------------------------------------------------------------
    def true_expected_paging(self, strategy: Strategy) -> float:
        """Exact EP under the correlated law (mixture of the two regimes).

        Anchored regime: all devices share one cell, so the search stops at
        the round paging that cell — ``EP = sum_j anchor_j * L(j)``.
        Independent regime: the standard Lemma 2.1 product form with the
        individual distributions.
        """
        c = self.num_cells
        prefix_cost = {}
        cumulative = 0
        for group in strategy.groups:
            cumulative += len(group)
            for cell in group:
                prefix_cost[cell] = cumulative
        anchored = sum(
            probability * prefix_cost[cell]
            for cell, probability in enumerate(self.anchor)
        )
        independent_instance = PagingInstance(
            [list(row) for row in self.individual],
            strategy.length,
            allow_zero=True,
        )
        from ..core.expected_paging import expected_paging_float

        independent = expected_paging_float(independent_instance, strategy)
        return self.cohesion * anchored + (1.0 - self.cohesion) * independent


def anchored_population(
    num_devices: int,
    num_cells: int,
    cohesion: float,
    *,
    rng: np.random.Generator,
    anchor_concentration: float = 0.5,
    individual_concentration: float = 1.0,
) -> AnchoredPopulation:
    """A random anchored population with Dirichlet components."""
    if num_devices < 1 or num_cells < 1:
        raise InvalidInstanceError("need at least one device and one cell")
    anchor = rng.dirichlet(np.full(num_cells, anchor_concentration))
    individual = rng.dirichlet(
        np.full(num_cells, individual_concentration), size=num_devices
    )
    return AnchoredPopulation(
        anchor=tuple(float(p) for p in anchor),
        individual=tuple(tuple(float(p) for p in row) for row in individual),
        cohesion=cohesion,
    )


def model_error(
    population: AnchoredPopulation, strategy: Strategy, max_rounds: int
) -> Tuple[float, float]:
    """``(believed_ep, true_ep)`` for a strategy planned on the marginals."""
    believed_instance = population.marginal_instance(max_rounds)
    from ..core.expected_paging import expected_paging_float

    believed = expected_paging_float(believed_instance, strategy)
    true = population.true_expected_paging(strategy)
    return believed, true
