"""Estimating location distributions from observed mobility traces.

The paper points to profile-based methods [15, 16] for obtaining the
per-device probability vectors its optimizer consumes.  We implement the
standard empirical estimator: count visits per cell over a trace window and
Laplace-smooth so every probability stays positive (as the model requires),
plus an exponentially-weighted variant that favors recent behavior and
divergence helpers for judging estimation quality in the end-to-end
simulation experiments.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.instance import PagingInstance
from ..errors import InvalidInstanceError


def empirical_distribution(
    trace: Sequence[int], num_cells: int, *, smoothing: float = 1.0
) -> np.ndarray:
    """Visit frequencies with additive (Laplace) smoothing.

    ``smoothing > 0`` guarantees strictly positive probabilities even for
    never-visited cells — matching the paper's positivity assumption and
    avoiding pathological zero-probability prefixes in the optimizer.
    """
    if num_cells < 1:
        raise InvalidInstanceError("need at least one cell")
    if smoothing < 0:
        raise InvalidInstanceError("smoothing must be non-negative")
    counts = np.full(num_cells, smoothing, dtype=float)
    for cell in trace:
        if not 0 <= cell < num_cells:
            raise InvalidInstanceError(f"trace visits unknown cell {cell}")
        counts[cell] += 1.0
    total = counts.sum()
    if total <= 0:
        raise InvalidInstanceError("empty trace with zero smoothing")
    return counts / total


def recency_weighted_distribution(
    trace: Sequence[int],
    num_cells: int,
    *,
    half_life: float = 50.0,
    smoothing: float = 1.0,
) -> np.ndarray:
    """Exponentially discounted visit frequencies (recent cells count more)."""
    if half_life <= 0:
        raise InvalidInstanceError("half_life must be positive")
    decay = 0.5 ** (1.0 / half_life)
    counts = np.full(num_cells, smoothing, dtype=float)
    weight = 1.0
    for cell in reversed(list(trace)):
        if not 0 <= cell < num_cells:
            raise InvalidInstanceError(f"trace visits unknown cell {cell}")
        counts[cell] += weight
        weight *= decay
    return counts / counts.sum()


def instance_from_traces(
    traces: Sequence[Sequence[int]],
    num_cells: int,
    max_rounds: int,
    *,
    smoothing: float = 1.0,
    half_life: Optional[float] = None,
) -> PagingInstance:
    """Build a :class:`PagingInstance` from one trace per device."""
    rows = []
    for trace in traces:
        if half_life is None:
            rows.append(empirical_distribution(trace, num_cells, smoothing=smoothing))
        else:
            rows.append(
                recency_weighted_distribution(
                    trace, num_cells, half_life=half_life, smoothing=smoothing
                )
            )
    return PagingInstance.from_array(np.array(rows), max_rounds)


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """``(1/2) sum |p - q|`` — the estimation-error metric of the experiments."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise InvalidInstanceError("distributions must have matching shapes")
    return 0.5 * float(np.abs(p - q).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``sum p log(p/q)`` with the usual ``0 log 0 = 0`` convention."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise InvalidInstanceError("distributions must have matching shapes")
    if np.any(q <= 0):
        raise InvalidInstanceError("q must be strictly positive")
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def estimation_report(
    true_rows: Sequence[np.ndarray], estimated_rows: Sequence[np.ndarray]
) -> Dict[str, float]:
    """Mean / max total-variation and KL over matched device rows."""
    tvs = [total_variation(p, q) for p, q in zip(true_rows, estimated_rows)]
    kls = [kl_divergence(p, q) for p, q in zip(true_rows, estimated_rows)]
    return {
        "mean_tv": float(np.mean(tvs)),
        "max_tv": float(np.max(tvs)),
        "mean_kl": float(np.mean(kls)),
        "max_kl": float(np.max(kls)),
    }
