"""Synthetic location distributions and trace-based estimation."""

from __future__ import annotations

from .correlated import (
    AnchoredPopulation,
    anchored_population,
    model_error,
)
from .estimation import (
    empirical_distribution,
    estimation_report,
    instance_from_traces,
    kl_divergence,
    recency_weighted_distribution,
    total_variation,
)
from .generators import (
    FAMILY_NAMES,
    adversarial_instance,
    clustered_instance,
    dirichlet_instance,
    geometric_instance,
    hotspot_instance,
    instance_family,
    two_tier_instance,
    uniform_instance,
    zipf_instance,
)

__all__ = [
    "AnchoredPopulation",
    "FAMILY_NAMES",
    "adversarial_instance",
    "anchored_population",
    "model_error",
    "clustered_instance",
    "dirichlet_instance",
    "empirical_distribution",
    "estimation_report",
    "geometric_instance",
    "hotspot_instance",
    "instance_family",
    "instance_from_traces",
    "kl_divergence",
    "recency_weighted_distribution",
    "total_variation",
    "two_tier_instance",
    "uniform_instance",
    "zipf_instance",
]
