"""The performance trajectory: ``repro bench`` → ``BENCH_<n>.json``.

Every optimization PR should be able to show its speedup against a recorded
baseline.  This module times the named kernel pairs on pinned seeds —

* scalar vs vectorized Monte Carlo (:mod:`repro.core.expected_paging` vs
  :mod:`repro.core.batch`) on an E22-scale instance,
* the reference Lemma 4.7 planner (:mod:`repro.core.dp` via the Fig. 1
  heuristic) vs the numpy planner (:mod:`repro.core.fast`),
* scalar strategy scoring vs :func:`repro.core.batch.expected_paging_batch`,
* the serial vs parallel experiment runner,
* a sweep over the ``repro.solvers`` registry: every no-required-option
  solver that supports the pinned instance is timed under its registry
  name (heuristic kinds on a large instance, exact/variant kinds on a
  small one),
* the ``repro.service`` paging controller under a seeded closed-loop
  workload, in two regimes: ``service_cold_cache`` (a fresh controller
  per repeat — cache population plus batched planning) and
  ``service_warm_cache`` (replaying the stream against warmed caches —
  the steady-state hot path); per-pass hit rates land in the row params —

and appends one schema'd snapshot (min/median per benchmark plus machine
info) to the repo root as ``BENCH_<n>.json``, where ``n`` counts up from 0.
The committed ``BENCH_0.json`` is the trajectory's origin; future PRs add
``BENCH_1.json``, ``BENCH_2.json``, ... so regressions and wins stay
visible in-tree.

The ``smoke`` profile shrinks every size so CI can validate the pipeline in
seconds; its timings are not comparable across machines and exist only to
prove the trajectory machinery works.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

SCHEMA = "repro-bench/1"

#: Pinned seeds: the trajectory must time the same workload in every PR.
INSTANCE_SEED = 22
STRATEGY_SEED = 220
MONTE_CARLO_SEED = 2002

_BENCH_FILE = re.compile(r"^BENCH_(\d+)\.json$")

#: Size knobs per profile.  ``full`` is the recorded trajectory; ``smoke``
#: exists so CI can exercise the whole pipeline in a few seconds.
PROFILES: Dict[str, Dict[str, object]] = {
    "full": {
        "monte_carlo": {"devices": 4, "cells": 800, "rounds": 5, "trials": 100_000},
        "planner": {"devices": 4, "cells": 250, "rounds": 5},
        "batch_plan": {"devices": 4, "cells": 250, "rounds": 5, "batch": 1024},
        "batch_eval": {"devices": 4, "cells": 200, "rounds": 5, "strategies": 64},
        "runner": {"experiments": ["E1", "E2", "E4", "E5", "E8"], "jobs": 4},
        "solvers": {
            "large": {"devices": 4, "cells": 250, "rounds": 5, "kinds": ["heuristic"]},
            "small": {"devices": 3, "cells": 9, "rounds": 3, "kinds": ["exact", "variant"]},
        },
        "service": {
            "requests": 20000, "areas": 64, "devices": 3, "cells": 40,
            "rounds": 3, "profiles_per_area": 8, "hot_fraction": 0.97,
            "seed": 20060, "shards": 4, "cache_size": 8192, "window": 64,
        },
        "timevary": {
            "radius": 3, "kind": "distance", "threshold": 2,
            "candidates": [1, 2, 3], "rounds": 3, "call_rate": 0.08,
            "stay": 0.4,
        },
        "contention": {
            "radius": 3, "devices": 10, "areas": 4, "horizon": 1200,
            "call_rate": 2.0, "capacity": 1, "carriers": 2, "rounds": 3,
            "max_wait": 8, "seed": 29,
        },
        "repeats": 5,
    },
    "smoke": {
        "monte_carlo": {"devices": 3, "cells": 24, "rounds": 3, "trials": 400},
        "planner": {"devices": 3, "cells": 24, "rounds": 3},
        "batch_plan": {"devices": 3, "cells": 24, "rounds": 3, "batch": 16},
        "batch_eval": {"devices": 3, "cells": 16, "rounds": 3, "strategies": 6},
        "runner": {"experiments": ["E1", "E4"], "jobs": 2},
        "solvers": {
            "large": {"devices": 3, "cells": 24, "rounds": 3, "kinds": ["heuristic"]},
            "small": {"devices": 2, "cells": 7, "rounds": 2, "kinds": ["exact", "variant"]},
        },
        "service": {
            "requests": 1500, "areas": 8, "devices": 3, "cells": 12,
            "rounds": 3, "profiles_per_area": 4, "hot_fraction": 0.95,
            "seed": 20060, "shards": 2, "cache_size": 512, "window": 16,
        },
        "timevary": {
            "radius": 2, "kind": "distance", "threshold": 2,
            "candidates": [1, 2], "rounds": 3, "call_rate": 0.08,
            "stay": 0.4,
        },
        "contention": {
            "radius": 2, "devices": 6, "areas": 3, "horizon": 150,
            "call_rate": 0.8, "capacity": 1, "carriers": 1, "rounds": 3,
            "max_wait": 8, "seed": 29,
        },
        "repeats": 2,
    },
}


@dataclass
class BenchmarkTiming:
    """Repeated wall-clock timings of one named benchmark."""

    name: str
    params: Dict[str, object]
    times_s: List[float] = field(default_factory=list)

    @property
    def min_s(self) -> float:
        return min(self.times_s)

    @property
    def median_s(self) -> float:
        return float(np.median(self.times_s))

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "params": self.params,
            "repeats": len(self.times_s),
            "times_s": self.times_s,
            "min_s": self.min_s,
            "median_s": self.median_s,
        }


def _time(
    function: Callable[[], object],
    *,
    repeats: int,
    warmup: bool = True,
) -> List[float]:
    """Wall-clock ``function()`` ``repeats`` times (plus an untimed warmup)."""
    if warmup:
        function()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return times


def machine_info() -> Dict[str, object]:
    """The hardware/software context a timing is only comparable within."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _bench_instance(devices: int, cells: int, rounds: int) -> "object":
    from .core import PagingInstance

    rng = np.random.default_rng(INSTANCE_SEED)
    matrix = rng.dirichlet(np.ones(cells), size=devices)
    return PagingInstance.from_array(matrix, max_rounds=rounds)


def _random_strategies(cells: int, rounds: int, count: int) -> List["object"]:
    from .core import Strategy

    rng = np.random.default_rng(STRATEGY_SEED)
    strategies = []
    for _ in range(count):
        order = tuple(int(j) for j in rng.permutation(cells))
        cuts = np.sort(rng.choice(np.arange(1, cells), size=rounds - 1, replace=False))
        bounds = [0, *(int(cut) for cut in cuts), cells]
        sizes = tuple(bounds[i + 1] - bounds[i] for i in range(rounds))
        strategies.append(Strategy.from_order_and_sizes(order, sizes))
    return strategies


def _bench_monte_carlo(config: Dict[str, int], repeats: int) -> List[BenchmarkTiming]:
    from .core import (
        conference_call_heuristic_fast,
        expected_paging_monte_carlo,
        expected_paging_monte_carlo_fast,
    )

    instance = _bench_instance(
        int(config["devices"]), int(config["cells"]), int(config["rounds"])
    )
    strategy = conference_call_heuristic_fast(instance).strategy
    trials = int(config["trials"])
    params = dict(config)

    def scalar() -> float:
        return expected_paging_monte_carlo(
            instance, strategy, trials=trials, rng=np.random.default_rng(MONTE_CARLO_SEED)
        )

    def fast() -> float:
        return expected_paging_monte_carlo_fast(
            instance, strategy, trials=trials, rng=np.random.default_rng(MONTE_CARLO_SEED)
        )

    # The scalar loop reference is timed once, without warmup: at the full
    # profile's 100k trials it is tens of seconds per repetition, and the
    # vectorized kernel's speedup dwarfs any timer noise.
    scalar_times = _time(scalar, repeats=1, warmup=False)
    fast_times = _time(fast, repeats=repeats)
    return [
        BenchmarkTiming("monte_carlo_scalar", params, scalar_times),
        BenchmarkTiming("monte_carlo_fast", params, fast_times),
    ]


def _bench_planner(config: Dict[str, int], repeats: int) -> List[BenchmarkTiming]:
    from .core import conference_call_heuristic, conference_call_heuristic_fast

    instance = _bench_instance(
        int(config["devices"]), int(config["cells"]), int(config["rounds"])
    )
    params = dict(config)
    # The two planners are cheap (ms-scale) and sensitive to slow
    # environment drift (CPU frequency, cache state, container neighbors),
    # so their repeats are interleaved rather than timed as back-to-back
    # blocks: drift lands on both rows instead of biasing whichever block
    # ran second.  The BENCH_0 -> BENCH_1 planner_reference ~18 ms ->
    # ~24 ms "regression" was exactly that bias (docs/performance.md).
    reference = lambda: conference_call_heuristic(instance)  # noqa: E731
    fast = lambda: conference_call_heuristic_fast(instance)  # noqa: E731
    reference()
    fast()
    reference_times: List[float] = []
    fast_times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        reference()
        reference_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        fast()
        fast_times.append(time.perf_counter() - start)
    return [
        BenchmarkTiming("planner_reference", params, reference_times),
        BenchmarkTiming("planner_fast", params, fast_times),
    ]


def _bench_batch_plan(config: Dict[str, int], repeats: int) -> List[BenchmarkTiming]:
    """One ``plan_batch`` row per available backend, same shape as planner.

    The derived ``planner_batch_speedup`` is *per instance*: the scalar
    ``planner_fast`` time divided by the batched time over ``batch``.
    """
    from .core import available_backends, plan_batch

    batch = int(config["batch"])
    rng = np.random.default_rng(INSTANCE_SEED)
    matrices = rng.dirichlet(
        np.ones(int(config["cells"])), size=(batch, int(config["devices"]))
    )
    rounds = int(config["rounds"])
    timings = []
    for backend in available_backends():
        times = _time(
            lambda: plan_batch(matrices, rounds, backend=backend), repeats=repeats
        )
        params = dict(config)
        params["backend"] = backend
        timings.append(BenchmarkTiming(f"planner_batch_{backend}", params, times))
    return timings


def _bench_batch_eval(config: Dict[str, int], repeats: int) -> List[BenchmarkTiming]:
    from .core import expected_paging_batch, expected_paging_float

    instance = _bench_instance(
        int(config["devices"]), int(config["cells"]), int(config["rounds"])
    )
    strategies = _random_strategies(
        int(config["cells"]), int(config["rounds"]), int(config["strategies"])
    )
    params = dict(config)

    def scalar() -> List[float]:
        return [expected_paging_float(instance, strategy) for strategy in strategies]

    scalar_times = _time(scalar, repeats=repeats)
    batch_times = _time(
        lambda: expected_paging_batch(instance, strategies), repeats=repeats
    )
    return [
        BenchmarkTiming("batch_eval_scalar", params, scalar_times),
        BenchmarkTiming("batch_eval_batch", params, batch_times),
    ]


def _bench_runner(config: Dict[str, object], repeats: int) -> List[BenchmarkTiming]:
    from .experiments import run_experiments

    names = list(config["experiments"])  # type: ignore[arg-type]
    jobs = int(config["jobs"])  # type: ignore[arg-type]
    params = {"experiments": names, "jobs": jobs}
    serial_times = _time(
        lambda: run_experiments(names, jobs=1), repeats=max(1, repeats - 1), warmup=False
    )
    parallel_times = _time(
        lambda: run_experiments(names, jobs=jobs),
        repeats=max(1, repeats - 1),
        warmup=False,
    )
    return [
        BenchmarkTiming("runner_serial", params, serial_times),
        BenchmarkTiming("runner_parallel", params, parallel_times),
    ]


def _bench_solvers(
    config: Dict[str, Dict[str, object]], repeats: int
) -> List[BenchmarkTiming]:
    """Time every parameter-free registered solver that fits the instance.

    The registry is the source of truth: any solver added later shows up in
    the next trajectory snapshot automatically, timed under its registry
    name.  Solvers with required options (orders, quorums, cost vectors)
    and solvers whose ``supports`` predicate rejects the pinned instance
    are skipped — the sweep never fabricates inputs.
    """
    from .solvers import get_solver, list_solvers

    timings: List[BenchmarkTiming] = []
    for scale in ("large", "small"):
        cfg = dict(config[scale])
        kinds = set(cfg["kinds"])  # type: ignore[arg-type]
        instance = _bench_instance(
            int(cfg["devices"]), int(cfg["cells"]), int(cfg["rounds"])  # type: ignore[arg-type]
        )
        for spec in list_solvers():
            if spec.kind not in kinds or spec.required:
                continue
            solver = get_solver(spec.name)
            if not solver.supports(instance):
                continue
            times = _time(lambda: solver(instance), repeats=repeats)
            params = dict(cfg)
            params.update({"solver": spec.name, "kind": spec.kind})
            timings.append(BenchmarkTiming(f"solver_{spec.name}", params, times))
    return timings


def _bench_service(config: Dict[str, object], repeats: int) -> List[BenchmarkTiming]:
    """Closed-loop service throughput in the cold- and warm-cache regimes.

    *Cold* builds a fresh controller per repeat, so each timed pass pays
    cache population and the batched planning of every distinct profile;
    its hit rate is what workload recurrence alone buys.  *Warm* replays
    the same stream against one already-populated controller — the
    steady-state regime the >=10k req/s ROADMAP target speaks about.
    Per-pass hit rates are recorded in the row params so the trajectory
    captures quality of service, not just speed.
    """
    from .service import (
        PagingController,
        ServiceConfig,
        WorkloadConfig,
        build_requests,
        run_closed_loop,
    )

    workload = WorkloadConfig(
        requests=int(config["requests"]),
        areas=int(config["areas"]),
        devices=int(config["devices"]),
        cells=int(config["cells"]),
        rounds=int(config["rounds"]),
        profiles_per_area=int(config["profiles_per_area"]),
        hot_fraction=float(config["hot_fraction"]),
        seed=int(config["seed"]),
    )
    service = ServiceConfig(
        num_shards=int(config["shards"]),
        cache_size=int(config["cache_size"]),
        batch_window=int(config["window"]),
    )
    requests = build_requests(workload)

    cold_report = run_closed_loop(PagingController(service), requests)
    cold_times = _time(
        lambda: run_closed_loop(PagingController(service), requests),
        repeats=repeats,
        warmup=False,
    )
    warm_controller = PagingController(service)
    run_closed_loop(warm_controller, requests)
    warm_report = run_closed_loop(warm_controller, requests)
    warm_times = _time(
        lambda: run_closed_loop(warm_controller, requests),
        repeats=repeats,
        warmup=False,
    )
    params = dict(config)
    cold_params = dict(params)
    cold_params["hit_rate"] = round(float(cold_report["hit_rate"]), 4)
    cold_params["throughput_rps"] = round(float(cold_report["throughput_rps"]), 1)
    warm_params = dict(params)
    warm_params["hit_rate"] = round(float(warm_report["hit_rate"]), 4)
    warm_params["throughput_rps"] = round(float(warm_report["throughput_rps"]), 1)
    return [
        BenchmarkTiming("service_cold_cache", cold_params, cold_times),
        BenchmarkTiming("service_warm_cache", warm_params, warm_times),
    ]


def _bench_timevary(config: Dict[str, object], repeats: int) -> List[BenchmarkTiming]:
    """Conditional-prior re-planning and the HMY fixed-point iteration.

    ``timevary_evaluate`` times one full registration-policy evaluation —
    every reachable report age of every start cell re-planned through the
    batched Fig. 1 kernel; it is the per-candidate cost the joint
    iteration pays.  ``timevary_hmy`` times the whole alternation to its
    fixed point over the candidate thresholds; the reached threshold,
    cost, and convergence flag are recorded in the row params so the
    trajectory tracks answer quality alongside speed.
    """
    from .cellnet import (
        CellTopology,
        RandomWalk,
        evaluate_registration,
        hmy_fixed_point,
        random_walk_transition_matrix,
    )

    topology = CellTopology.hexagonal_disk(int(config["radius"]))
    walk = RandomWalk(topology, stay_probability=float(config["stay"]))
    matrix = random_walk_transition_matrix(walk, topology)
    kind = str(config["kind"])
    threshold = int(config["threshold"])
    candidates = [int(value) for value in config["candidates"]]  # type: ignore[union-attr]
    rounds = int(config["rounds"])
    call_rate = float(config["call_rate"])

    evaluation = evaluate_registration(
        topology,
        matrix,
        kind=kind,
        threshold=threshold,
        max_rounds=rounds,
        call_rate=call_rate,
    )
    evaluate_times = _time(
        lambda: evaluate_registration(
            topology,
            matrix,
            kind=kind,
            threshold=threshold,
            max_rounds=rounds,
            call_rate=call_rate,
        ),
        repeats=repeats,
    )
    result = hmy_fixed_point(
        topology,
        matrix,
        kind=kind,
        candidates=candidates,
        max_rounds=rounds,
        call_rate=call_rate,
    )
    hmy_times = _time(
        lambda: hmy_fixed_point(
            topology,
            matrix,
            kind=kind,
            candidates=candidates,
            max_rounds=rounds,
            call_rate=call_rate,
        ),
        repeats=repeats,
    )
    params = dict(config)
    evaluate_params = dict(params)
    evaluate_params["plans"] = evaluation.plans
    evaluate_params["batched"] = evaluation.batched
    hmy_params = dict(params)
    hmy_params["fixed_point_threshold"] = result.threshold
    hmy_params["fixed_point_cost"] = round(result.evaluation.combined_cost, 6)
    hmy_params["converged"] = result.converged
    return [
        BenchmarkTiming("timevary_evaluate", evaluate_params, evaluate_times),
        BenchmarkTiming("timevary_hmy", hmy_params, hmy_times),
    ]


def _bench_contention(
    config: Dict[str, object], repeats: int
) -> List[BenchmarkTiming]:
    """The event-driven engine: contended setup and legacy-path overhead.

    ``contention_engine`` times a heavy-traffic run — Poisson arrivals on
    finite per-cell channels, every setup queued through the
    :class:`~repro.cellnet.engine.ChannelScheduler` — and records the run's
    blocking probability in the row params so throughput is never read
    apart from the loss it came with.  ``contention_legacy_path`` times the
    *same* network with ``channel_capacity=None``: the engine façade
    replaying the historic step loop, i.e. the refactor's overhead on every
    pre-existing configuration.
    """
    from .cellnet import (
        CellTopology,
        CellularSimulator,
        LocationAreaPlan,
        RandomWalk,
        SimulationConfig,
    )

    radius = int(config["radius"])
    devices = int(config["devices"])
    seed = int(config["seed"])

    def run(contended: bool):
        rng = np.random.default_rng(seed)
        topology = CellTopology.hexagonal_disk(radius)
        plan = LocationAreaPlan.by_bfs(topology, int(config["areas"]))
        models = [
            RandomWalk(topology, stay_probability=0.3) for _ in range(devices)
        ]
        sim_config = SimulationConfig(
            horizon=int(config["horizon"]),
            call_rate=float(config["call_rate"]) if contended else 0.1,
            max_paging_rounds=int(config["rounds"]),
            channel_capacity=int(config["capacity"]) if contended else None,
            carriers=int(config["carriers"]) if contended else 1,
            max_wait=int(config["max_wait"]),
            arrival_mode="poisson" if contended else "bernoulli",
            record_calls=False,
        )
        simulator = CellularSimulator(
            topology, plan, models, sim_config, rng=rng
        )
        return simulator.run()

    engine_report = run(contended=True)
    engine_times = _time(lambda: run(contended=True), repeats=repeats)
    legacy_times = _time(lambda: run(contended=False), repeats=repeats)
    engine_params = dict(config)
    metrics = engine_report.metrics
    engine_params["offered_calls"] = metrics.offered_calls
    engine_params["blocked_calls"] = metrics.blocked_calls
    engine_params["blocking_probability"] = round(
        metrics.blocking_probability, 6
    )
    engine_params["latency_p95"] = metrics.setup_latency_percentile(95)
    legacy_params = dict(config)
    legacy_params["call_rate"] = 0.1
    legacy_params["capacity"] = None
    return [
        BenchmarkTiming("contention_engine", engine_params, engine_times),
        BenchmarkTiming("contention_legacy_path", legacy_params, legacy_times),
    ]


def _speedup(results: Dict[str, BenchmarkTiming], slow: str, fast: str) -> float:
    return results[slow].min_s / max(results[fast].min_s, 1e-12)


def run_benchmarks(profile: str = "full") -> Dict[str, object]:
    """Time every benchmark pair and assemble the trajectory payload."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; known: {sorted(PROFILES)}")
    sizes = PROFILES[profile]
    repeats = int(sizes["repeats"])  # type: ignore[arg-type]
    timings: List[BenchmarkTiming] = []
    timings += _bench_monte_carlo(sizes["monte_carlo"], repeats)  # type: ignore[arg-type]
    timings += _bench_planner(sizes["planner"], repeats)  # type: ignore[arg-type]
    batch_plan_timings = _bench_batch_plan(sizes["batch_plan"], repeats)  # type: ignore[arg-type]
    timings += batch_plan_timings
    timings += _bench_batch_eval(sizes["batch_eval"], repeats)  # type: ignore[arg-type]
    timings += _bench_runner(sizes["runner"], repeats)  # type: ignore[arg-type]
    solver_timings = _bench_solvers(sizes["solvers"], repeats)  # type: ignore[arg-type]
    timings += solver_timings
    service_timings = _bench_service(sizes["service"], repeats)  # type: ignore[arg-type]
    timings += service_timings
    timevary_timings = _bench_timevary(sizes["timevary"], repeats)  # type: ignore[arg-type]
    timings += timevary_timings
    contention_timings = _bench_contention(sizes["contention"], repeats)  # type: ignore[arg-type]
    timings += contention_timings
    by_name = {timing.name: timing for timing in timings}
    # Per-instance speedup of the best batched backend over planner_fast.
    best_per_instance = min(
        timing.min_s / int(timing.params["batch"]) for timing in batch_plan_timings
    )
    planner_batch_speedup = by_name["planner_fast"].min_s / max(
        best_per_instance, 1e-12
    )
    return {
        "schema": SCHEMA,
        "profile": profile,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": machine_info(),
        "benchmarks": [timing.to_json() for timing in timings],
        "derived": {
            "monte_carlo_speedup": _speedup(
                by_name, "monte_carlo_scalar", "monte_carlo_fast"
            ),
            "planner_speedup": _speedup(by_name, "planner_reference", "planner_fast"),
            "planner_batch_speedup": planner_batch_speedup,
            "batch_eval_speedup": _speedup(
                by_name, "batch_eval_scalar", "batch_eval_batch"
            ),
            "runner_speedup": _speedup(by_name, "runner_serial", "runner_parallel"),
            "solvers_timed": float(len(solver_timings)),
            # steady-state requests/sec of the paging controller (warm cache)
            "service_throughput": int(sizes["service"]["requests"])  # type: ignore[index]
            / max(by_name["service_warm_cache"].min_s, 1e-12),
            # conditional-prior re-plans per second inside one policy
            # evaluation (the inner loop of the HMY iteration)
            "timevary_replans_per_s": int(
                by_name["timevary_evaluate"].params["plans"]  # type: ignore[arg-type]
            )
            / max(by_name["timevary_evaluate"].min_s, 1e-12),
            # contended call setups pushed through the shared channels per
            # second of engine wall time (blocking recorded in row params)
            "contention_setups_per_s": int(
                by_name["contention_engine"].params["offered_calls"]  # type: ignore[arg-type]
            )
            / max(by_name["contention_engine"].min_s, 1e-12),
        },
    }


# ---------------------------------------------------------------------------
# Trajectory files
# ---------------------------------------------------------------------------

def next_bench_index(root: Path) -> int:
    """The next free ``n`` for ``BENCH_<n>.json`` under ``root``."""
    taken = [-1]
    for entry in root.iterdir() if root.is_dir() else ():
        match = _BENCH_FILE.match(entry.name)
        if match:
            taken.append(int(match.group(1)))
    return max(taken) + 1


def write_trajectory(
    payload: Dict[str, object],
    *,
    root: Optional[Path] = None,
    path: Optional[Path] = None,
) -> Path:
    """Persist one trajectory snapshot.

    With ``path`` the payload goes exactly there; otherwise it becomes the
    next ``BENCH_<n>.json`` at ``root`` (default: the project root found
    from the current directory).  The chosen index is recorded in the
    payload itself.
    """
    if path is None:
        if root is None:
            from .lint import find_project_root

            root = find_project_root(Path.cwd()) or Path.cwd()
        index = next_bench_index(root)
        path = root / f"BENCH_{index}.json"
    else:
        match = _BENCH_FILE.match(Path(path).name)
        index = int(match.group(1)) if match else None
    payload = dict(payload)
    payload["index"] = index
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def validate_payload(payload: object) -> List[str]:
    """Schema-check one trajectory payload; returns the list of problems."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    if payload.get("profile") not in PROFILES:
        problems.append(f"unknown profile {payload.get('profile')!r}")
    machine = payload.get("machine")
    if not isinstance(machine, dict) or "python" not in machine:
        problems.append("machine info missing (needs at least 'python')")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        problems.append("benchmarks must be a non-empty list")
        benchmarks = []
    for entry in benchmarks:
        if not isinstance(entry, dict):
            problems.append("benchmark entry is not an object")
            continue
        name = entry.get("name", "<unnamed>")
        for key in ("name", "params", "repeats", "times_s", "min_s", "median_s"):
            if key not in entry:
                problems.append(f"benchmark {name}: missing key {key!r}")
        times = entry.get("times_s")
        if isinstance(times, list) and times:
            if entry.get("repeats") != len(times):
                problems.append(f"benchmark {name}: repeats does not match times_s")
            lo, hi = min(times), max(times)
            min_s, median_s = entry.get("min_s"), entry.get("median_s")
            if not isinstance(min_s, (int, float)) or not lo <= min_s <= hi:
                problems.append(f"benchmark {name}: min_s outside observed times")
            if not isinstance(median_s, (int, float)) or not lo <= median_s <= hi:
                problems.append(f"benchmark {name}: median_s outside observed times")
        else:
            problems.append(f"benchmark {name}: times_s must be a non-empty list")
    derived = payload.get("derived")
    if not isinstance(derived, dict):
        problems.append("derived speedups missing")
    else:
        for key, value in derived.items():
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"derived {key}: must be a positive number")
    return problems


# ---------------------------------------------------------------------------
# Trajectory diffing
# ---------------------------------------------------------------------------

#: A benchmark (or derived speedup) counts as regressed past this ratio.
REGRESSION_THRESHOLD = 0.20


def _benchmark_mins(payload: Dict[str, object]) -> Dict[str, float]:
    mins: Dict[str, float] = {}
    for entry in payload.get("benchmarks", ()):  # type: ignore[union-attr]
        if isinstance(entry, dict) and isinstance(entry.get("min_s"), (int, float)):
            mins[str(entry["name"])] = float(entry["min_s"])
    return mins


def diff_payloads(
    previous: Dict[str, object],
    current: Dict[str, object],
    *,
    threshold: float = REGRESSION_THRESHOLD,
) -> Dict[str, object]:
    """Compare two trajectory snapshots metric by metric.

    Benchmarks regress when ``min_s`` grows by more than ``threshold``
    (20% by default); derived speedups regress when they *shrink* by more
    than the threshold.  Metrics present in only one snapshot are listed
    but never counted as regressions — a new solver is not a slowdown.
    """
    rows: List[Dict[str, object]] = []
    prev_mins, curr_mins = _benchmark_mins(previous), _benchmark_mins(current)
    for name in sorted(set(prev_mins) | set(curr_mins)):
        prev, curr = prev_mins.get(name), curr_mins.get(name)
        if prev is None or curr is None:
            rows.append(
                {"name": name, "prev_min_s": prev, "curr_min_s": curr,
                 "ratio": None, "regression": False,
                 "note": "only in one snapshot"}
            )
            continue
        ratio = curr / max(prev, 1e-12)
        rows.append(
            {"name": name, "prev_min_s": prev, "curr_min_s": curr,
             "ratio": ratio, "regression": ratio > 1.0 + threshold}
        )
    derived_rows: List[Dict[str, object]] = []
    prev_derived = previous.get("derived") or {}
    curr_derived = current.get("derived") or {}
    for name in sorted(set(prev_derived) & set(curr_derived)):  # type: ignore[arg-type]
        prev, curr = prev_derived[name], curr_derived[name]  # type: ignore[index]
        if not isinstance(prev, (int, float)) or not isinstance(curr, (int, float)):
            continue
        ratio = float(curr) / max(float(prev), 1e-12)
        derived_rows.append(
            {"name": name, "prev": float(prev), "curr": float(curr),
             "ratio": ratio, "regression": ratio < 1.0 - threshold}
        )
    regressions = [
        str(row["name"])
        for row in rows + derived_rows
        if row["regression"]
    ]
    return {
        "schema": "repro-bench-diff/1",
        "threshold": threshold,
        "prev_index": previous.get("index"),
        "curr_index": current.get("index"),
        "benchmarks": rows,
        "derived": derived_rows,
        "regressions": regressions,
    }


def render_diff(diff: Dict[str, object]) -> str:
    """Human-readable report for one :func:`diff_payloads` result."""
    lines = [
        f"bench diff (threshold {float(diff['threshold']) * 100:.0f}%): "  # type: ignore[arg-type]
        f"BENCH_{diff.get('prev_index')} -> BENCH_{diff.get('curr_index')}"
    ]
    for row in diff["benchmarks"]:  # type: ignore[union-attr]
        if row["ratio"] is None:
            lines.append(f"  {row['name']}: {row['note']}")
            continue
        flag = "  REGRESSION" if row["regression"] else ""
        lines.append(
            f"  {row['name']}: {row['prev_min_s'] * 1e3:.3f}ms -> "
            f"{row['curr_min_s'] * 1e3:.3f}ms ({row['ratio']:.2f}x){flag}"
        )
    for row in diff["derived"]:  # type: ignore[union-attr]
        flag = "  REGRESSION" if row["regression"] else ""
        lines.append(
            f"  {row['name']}: {row['prev']:.2f} -> {row['curr']:.2f} "
            f"({row['ratio']:.2f}x){flag}"
        )
    regressions = diff["regressions"]
    lines.append(
        f"{len(regressions)} regression(s)"  # type: ignore[arg-type]
        + (f": {', '.join(regressions)}" if regressions else "")  # type: ignore[arg-type]
    )
    return "\n".join(lines)


def latest_bench_path(root: Path) -> Optional[Path]:
    """The highest-numbered ``BENCH_<n>.json`` under ``root``, if any."""
    best: Optional[Path] = None
    best_index = -1
    for entry in root.iterdir() if root.is_dir() else ():
        match = _BENCH_FILE.match(entry.name)
        if match and int(match.group(1)) > best_index:
            best_index = int(match.group(1))
            best = entry
    return best


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro bench`` options to an argparse parser."""
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="full",
        help="workload sizes: 'full' records the trajectory, 'smoke' is a "
        "seconds-long CI pipeline check",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: the next BENCH_<n>.json at the repo root)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root for auto-numbering (default: auto-detected)",
    )
    parser.add_argument(
        "--validate",
        default=None,
        metavar="PATH",
        help="validate an existing trajectory JSON and exit",
    )
    parser.add_argument(
        "--diff",
        default=None,
        metavar="PREV",
        help="compare PREV against the newest BENCH_<n>.json (or --against) "
        "and flag >20%% per-metric regressions; exits 1 when any regress",
    )
    parser.add_argument(
        "--against",
        default=None,
        metavar="CURR",
        help="the 'current' snapshot for --diff (default: newest BENCH_<n>)",
    )
    parser.add_argument(
        "--fail-rows",
        default=None,
        metavar="REGEX",
        help="with --diff: exit 1 only for regressed metrics matching REGEX "
        "(all rows are still reported); default: any regression exits 1",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a bench run described by parsed CLI arguments."""
    if args.diff is not None:
        root = Path(args.root).resolve() if args.root else None
        if root is None:
            from .lint import find_project_root

            root = find_project_root(Path.cwd()) or Path.cwd()
        current_path = (
            Path(args.against) if args.against else latest_bench_path(root)
        )
        if current_path is None:
            print(f"no BENCH_<n>.json found under {root}", file=sys.stderr)
            return 2
        try:
            previous = json.loads(Path(args.diff).read_text())
            current = json.loads(Path(current_path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read trajectory: {error}", file=sys.stderr)
            return 2
        diff = diff_payloads(previous, current)
        print(render_diff(diff))
        regressions = [str(name) for name in diff["regressions"]]  # type: ignore[union-attr]
        if args.fail_rows is not None:
            pattern = re.compile(args.fail_rows)
            fatal = [name for name in regressions if pattern.search(name)]
            if fatal:
                print(
                    f"fatal regression(s) matching {args.fail_rows!r}: "
                    + ", ".join(fatal),
                    file=sys.stderr,
                )
            return 1 if fatal else 0
        return 1 if regressions else 0
    if args.validate is not None:
        try:
            payload = json.loads(Path(args.validate).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read {args.validate}: {error}", file=sys.stderr)
            return 2
        problems = validate_payload(payload)
        for problem in problems:
            print(f"{args.validate}: {problem}", file=sys.stderr)
        print(
            f"{args.validate}: "
            + ("valid" if not problems else f"{len(problems)} problem(s)")
        )
        return 0 if not problems else 1
    payload = run_benchmarks(args.profile)
    root = Path(args.root).resolve() if args.root else None
    path = Path(args.out) if args.out else None
    written = write_trajectory(payload, root=root, path=path)
    derived = payload["derived"]
    print(f"trajectory written to {written}")
    for key in sorted(derived):  # type: ignore[union-attr]
        if key.endswith("_throughput") or key.endswith("_per_s"):
            print(f"  {key}: {derived[key]:.0f}/s")  # type: ignore[index]
        else:
            print(f"  {key}: {derived[key]:.1f}x")  # type: ignore[index]
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point: ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="time the batched/parallel kernels on pinned seeds and "
        "record one BENCH_<n>.json trajectory snapshot",
    )
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
