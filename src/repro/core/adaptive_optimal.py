"""The exact optimal ADAPTIVE strategy, by dynamic programming.

Section 5 of the paper raises adaptive strategies (choose each round's group
after seeing which devices answered) and leaves their analysis open.  For
small instances the optimal adaptive policy is computable exactly: the
decision-relevant state is ``(set of cells already paged, set of devices
still missing, rounds left)`` — the missing devices' conditional
distributions are their priors restricted to the unpaged cells, which the
mask determines.

The value recursion is

    V(mask, devices, t) = min over non-empty ext of the complement of
        |ext| + sum over proper subsets B of `devices`
                 Pr[exactly the devices of B miss ext] * V(mask|ext, B, t-1)

with ``V(mask, {}, t) = 0`` and the last round forced to page everything
left.  The resulting value is a true lower bound on every adaptive (and
hence every oblivious) strategy, so ``optimal_oblivious / optimal_adaptive``
measures the *adaptivity gap* — benchmark E19.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import SolverLimitError
from .instance import Number, PagingInstance

#: The state space is 3^c-flavored; keep instances small.
MAX_ADAPTIVE_CELLS = 12


@dataclass(frozen=True)
class AdaptiveOptimalResult:
    """The optimal adaptive expected paging, with the first-round group."""

    expected_paging: Number
    first_group: Tuple[int, ...]


def optimal_adaptive_expected_paging(
    instance: PagingInstance, *, max_rounds: Optional[int] = None
) -> AdaptiveOptimalResult:
    """Exact minimum expected paging over all adaptive policies.

    replint: solver
    """
    c = instance.num_cells
    if c > MAX_ADAPTIVE_CELLS:
        raise SolverLimitError(
            f"adaptive optimal solver limited to {MAX_ADAPTIVE_CELLS} cells"
        )
    m = instance.num_devices
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    d = min(d, c)
    exact = instance.is_exact
    zero: Number = Fraction(0) if exact else 0.0
    one: Number = Fraction(1) if exact else 1.0
    full = (1 << c) - 1
    popcount = [bin(mask).count("1") for mask in range(full + 1)]

    # Per-device subset sums P_i(mask).
    sums: List[List[Number]] = []
    for row in instance.rows:
        device_sums = [zero] * (full + 1)
        for mask in range(1, full + 1):
            low = mask & (-mask)
            device_sums[mask] = device_sums[mask ^ low] + row[low.bit_length() - 1]
        sums.append(device_sums)

    all_devices = frozenset(range(m))

    @lru_cache(maxsize=None)
    def value(mask: int, devices: FrozenSet[int], rounds_left: int) -> Number:
        if not devices:
            return zero
        complement = full ^ mask
        remaining_cells = popcount[complement]
        if rounds_left <= 1:
            return remaining_cells * one
        best: Optional[Number] = None
        best_is_all = False
        # Conditional hit probability of each missing device for a given ext:
        # q_i = P_i(ext) / P_i(complement).
        denominators = {i: sums[i][complement] for i in devices}
        sub = complement
        while sub:
            cost: Number = popcount[sub] * one
            if sub != complement:
                hit: Dict[int, Number] = {}
                degenerate = False
                for i in devices:
                    if float(denominators[i]) <= 0.0:
                        degenerate = True
                        break
                    hit[i] = sums[i][sub] / denominators[i]
                if not degenerate:
                    device_list = sorted(devices)
                    for pattern in itertools.product(
                        (False, True), repeat=len(device_list)
                    ):
                        missing = frozenset(
                            device
                            for device, found in zip(device_list, pattern)
                            if not found
                        )
                        if not missing:
                            continue
                        probability = one
                        for device, found in zip(device_list, pattern):
                            q = hit[device]
                            probability = probability * (q if found else one - q)
                        if float(probability) <= 0.0:
                            continue
                        cost = cost + probability * value(
                            mask | sub, missing, rounds_left - 1
                        )
            if best is None or cost < best:
                best = cost
                best_is_all = sub == complement
            sub = (sub - 1) & complement
        assert best is not None
        return best

    # Recover the optimal first group by re-evaluating the top level.
    best_value: Optional[Number] = None
    best_ext = full
    sub = full
    while sub:
        cost: Number = popcount[sub] * one
        if sub != full and d > 1:
            device_list = list(range(m))
            hit = {i: sums[i][sub] for i in device_list}  # P_i(full) = 1
            for pattern in itertools.product((False, True), repeat=m):
                missing = frozenset(
                    device
                    for device, found in zip(device_list, pattern)
                    if not found
                )
                if not missing:
                    continue
                probability = one
                for device, found in zip(device_list, pattern):
                    q = hit[device]
                    probability = probability * (q if found else one - q)
                if float(probability) <= 0.0:
                    continue
                cost = cost + probability * value(sub, missing, d - 1)
        elif sub != full:
            sub = (sub - 1) & full
            continue
        if best_value is None or cost < best_value:
            best_value = cost
            best_ext = sub
        sub = (sub - 1) & full
    assert best_value is not None
    first_group = tuple(j for j in range(c) if best_ext >> j & 1)
    return AdaptiveOptimalResult(expected_paging=best_value, first_group=first_group)


def adaptivity_gap(
    instance: PagingInstance, *, max_rounds: Optional[int] = None
) -> Tuple[Number, Number, float]:
    """``(optimal_oblivious, optimal_adaptive, ratio)`` for one instance.

    The ratio is at least 1; how large it can grow is the paper's open
    question, which benchmark E19 probes empirically.
    """
    from .exact import optimal_strategy

    oblivious = optimal_strategy(instance, max_rounds=max_rounds).expected_paging
    adaptive = optimal_adaptive_expected_paging(
        instance, max_rounds=max_rounds
    ).expected_paging
    ratio = float(oblivious) / float(adaptive) if float(adaptive) > 0 else 1.0
    return oblivious, adaptive, ratio
