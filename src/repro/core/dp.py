"""The dynamic program of Lemma 4.7 / Fig. 1 of the paper.

Given a fixed sequence of cells, the best strategy that pages cells in that
sequence is found by the recursion::

    E(1, k) = k
    E(l, k) = min_{1 <= x <= k-l+1}  x + (1 - F[c-k+x]) / (1 - F[c-k]) * E(l-1, k-x)

where ``F[j]`` is the probability that the search would already stop within
the first ``j`` cells of the sequence (for the Conference Call problem,
``F[j] = prod_i P_i(first j cells)``).  ``E(l, k)`` is the minimal expected
number of cells paged by an ``l``-round strategy over the last ``k`` cells,
conditioned on the search reaching them.  ``E(d, c)`` is the minimal expected
paging over the whole family, achieved by the group sizes recovered from the
argmin table — exactly the pseudocode of Fig. 1.

The implementation follows Theorem 4.8: ``O(c(m + dc))`` time.  It accepts an
optional per-round group-size cap (the bandwidth-limited model of Section 5)
and arbitrary prefix stopping probabilities (the Yellow Pages and Signature
variants), since the recursion only needs ``F`` to be a monotone prefix rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple

from ..errors import InfeasibleError
from ..obs.instrument import traced
from .expected_paging import expected_paging
from .instance import Number, PagingInstance
from .ordering import validate_order
from .strategy import Strategy


@dataclass(frozen=True)
class OrderedDPResult:
    """Outcome of optimizing cut points over a fixed cell sequence."""

    strategy: Strategy
    expected_paging: Number
    order: Tuple[int, ...]
    group_sizes: Tuple[int, ...]

    @property
    def num_rounds(self) -> int:
        return len(self.group_sizes)


@traced("core.dp")
def optimize_over_order(
    instance: PagingInstance,
    order: Sequence[int],
    *,
    max_rounds: Optional[int] = None,
    max_group_size: Optional[int] = None,
    prefix_stop_probabilities: Optional[Sequence[Number]] = None,
) -> OrderedDPResult:
    """Best strategy paging cells in the given sequence (Lemma 4.7).

    Parameters
    ----------
    instance:
        The problem data.  Exact instances produce exact (Fraction) values.
    order:
        A permutation of the cells; groups are consecutive runs of it.
    max_rounds:
        Overrides ``instance.max_rounds`` when given.
    max_group_size:
        Bandwidth limit ``b``: no round may page more than ``b`` cells
        (Section 5 extension).  Requires ``d * b >= c``.
    prefix_stop_probabilities:
        ``F[k]`` for ``k = 0..c`` — probability the search stops within the
        first ``k`` cells of ``order``.  Defaults to the Conference Call rule
        (all devices inside the prefix).  ``F[c]`` must equal 1.

    replint: solver
    """
    c = instance.num_cells
    order = validate_order(order, c)
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    if not 1 <= d <= c:
        raise InfeasibleError(f"number of rounds must satisfy 1 <= d <= {c}, got {d}")
    b = c if max_group_size is None else int(max_group_size)
    if b < 1:
        raise InfeasibleError("max_group_size must be at least 1")
    if d * b < c:
        raise InfeasibleError(
            f"cannot page {c} cells within {d} rounds of at most {b} cells each"
        )

    if prefix_stop_probabilities is None:
        finds = instance.prefix_find_probabilities(order)
    else:
        finds = tuple(prefix_stop_probabilities)
        if len(finds) != c + 1:
            raise ValueError(
                f"prefix_stop_probabilities needs {c + 1} entries, got {len(finds)}"
            )
    exact = instance.is_exact and all(isinstance(f, (int, Fraction)) for f in finds)
    one: Number = Fraction(1) if exact else 1.0

    # survivor[j] = probability the search continues past the first j cells.
    survivor = [one - f for f in finds]

    infinity = float("inf")
    # Row l of the DP: E[l][k] for k = 0..c (k < l unused).
    previous = [infinity] * (c + 1)
    for k in range(1, c + 1):
        previous[k] = k if k <= b else infinity
    # choices[l][k] = argmin x for E(l+1, k); row 0 is the base case.
    choices = [[k if k <= b else 0 for k in range(c + 1)]]

    for level in range(2, d + 1):
        current = [infinity] * (c + 1)
        current_choice = [0] * (c + 1)
        for k in range(level, c + 1):
            if k > level * b:
                continue  # even b-sized groups cannot cover k cells in `level` rounds
            denominator = survivor[c - k]
            best = infinity
            best_x = 0
            upper = min(k - level + 1, b)
            for x in range(1, upper + 1):
                tail = previous[k - x]
                if tail == infinity:
                    continue
                if float(denominator) <= 0.0:
                    # The search never reaches these cells; any feasible split
                    # works and contributes nothing upstream.
                    value: Number = x
                else:
                    value = x + (survivor[c - k + x] / denominator) * tail
                if value < best:
                    best = value
                    best_x = x
            current[k] = best
            current_choice[k] = best_x
        previous = current
        choices.append(current_choice)

    if previous[c] == infinity:
        raise InfeasibleError("no feasible strategy found (check group-size cap)")

    # Recover group sizes: walk the argmin table from (d, c) downwards.
    sizes = []
    k = c
    for level in range(d, 0, -1):
        x = choices[level - 1][k]
        sizes.append(x)
        k -= x
    if k != 0:
        raise AssertionError("dynamic program reconstruction did not consume all cells")

    strategy = Strategy.from_order_and_sizes(order, sizes)
    if prefix_stop_probabilities is None:
        value = expected_paging(instance, strategy)
    else:
        value = previous[c]
    return OrderedDPResult(
        strategy=strategy,
        expected_paging=value,
        order=order,
        group_sizes=tuple(sizes),
    )


def optimize_cuts(
    prefix_stop_probabilities: Sequence[Number],
    num_rounds: int,
    *,
    max_group_size: Optional[int] = None,
) -> Tuple[Tuple[int, ...], Number]:
    """Optimal cut points for ANY prefix-monotone stopping rule.

    Given ``F[j]`` — the probability that the search would stop within the
    first ``j`` cells of a fixed order (``F[c] = 1``) — the telescoped
    expected paging of cutting the order at ``0 < j_1 < ... < j_{d-1} < c``
    is ``c - sum_r (j_{r+1} - j_r) F[j_r]`` (with ``j_d = c``).  Each term
    couples only consecutive cuts, so a quadratic DP maximizes the bonus
    exactly.  Unlike the Lemma 4.7 recursion this needs no product-form
    conditioning, so it also covers the Signature stopping rule of Section 5.

    Returns ``(group_sizes, expected_paging)``.
    """
    finds = tuple(prefix_stop_probabilities)
    c = len(finds) - 1
    if c < 1:
        raise ValueError("need at least one cell")
    d = int(num_rounds)
    if not 1 <= d <= c:
        raise InfeasibleError(f"number of rounds must satisfy 1 <= d <= {c}, got {d}")
    b = c if max_group_size is None else int(max_group_size)
    if b < 1 or d * b < c:
        raise InfeasibleError(
            f"cannot page {c} cells within {d} rounds of at most {b} cells each"
        )
    minus_infinity = float("-inf")
    zero = 0 * finds[c]

    # best[j] = max bonus over strategies whose r-th cut lands at position j.
    best = [zero if j <= b else minus_infinity for j in range(c + 1)]
    best[0] = minus_infinity  # cuts are strictly increasing and start past 0
    parent = [[0] * (c + 1)]
    for _level in range(2, d + 1):
        new_best = [minus_infinity] * (c + 1)
        new_parent = [0] * (c + 1)
        for j in range(1, c + 1):
            for prev in range(max(1, j - b), j):
                tail = best[prev]
                if tail == minus_infinity:
                    continue
                value = tail + (j - prev) * finds[prev]
                if value > new_best[j]:
                    new_best[j] = value
                    new_parent[j] = prev
        best = new_best
        parent.append(new_parent)

    if best[c] == minus_infinity:
        raise InfeasibleError("no feasible cut sequence (check group-size cap)")
    cuts = [c]
    for level in range(d - 1, 0, -1):
        cuts.append(parent[level][cuts[-1]])
    cuts.append(0)
    cuts.reverse()
    sizes = tuple(cuts[r + 1] - cuts[r] for r in range(d))
    return sizes, c - best[c]


def dp_value_table(
    instance: PagingInstance,
    order: Sequence[int],
    *,
    max_rounds: Optional[int] = None,
) -> Tuple[Tuple[Number, ...], ...]:
    """The full ``E(l, k)`` table (for inspection and tests).

    Entry ``[l-1][k]`` is ``E(l, k)``; unreachable entries hold ``inf``.
    """
    c = instance.num_cells
    order = validate_order(order, c)
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    finds = instance.prefix_find_probabilities(order)
    exact = instance.is_exact
    one: Number = Fraction(1) if exact else 1.0
    survivor = [one - f for f in finds]
    infinity = float("inf")

    table = []
    row = [infinity] + [k for k in range(1, c + 1)]
    table.append(tuple(row))
    for level in range(2, d + 1):
        new_row = [infinity] * (c + 1)
        for k in range(level, c + 1):
            denominator = survivor[c - k]
            best = infinity
            for x in range(1, k - level + 2):
                tail = table[-1][k - x]
                if tail == infinity:
                    continue
                if float(denominator) <= 0.0:
                    value: Number = x
                else:
                    value = x + (survivor[c - k + x] / denominator) * tail
                if value < best:
                    best = value
            new_row[k] = best
        table.append(tuple(new_row))
    return tuple(table)
