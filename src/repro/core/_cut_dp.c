/* Batched Fig. 1 planner kernel: weight ordering + Lemma 4.7 cut DP.
 *
 * Bit-identity contract with the numpy reference (repro.core.fast):
 *  - weights are sequential per-cell sums over devices (same add order);
 *  - the descending stable argsort matches np.lexsort((arange, -w));
 *  - find probabilities are sequential prefix sums multiplied device-major;
 *  - every DP candidate is computed as best[prev] + (double)(j-prev)*F[prev]
 *    with no FP contraction (compile with -ffp-contract=off), and the level
 *    value is a max over that candidate set (order-independent);
 *  - the backtrack takes the first predecessor whose candidate equals the
 *    level value, matching np.argmax's first-occurrence rule.
 */
#include <stddef.h>
#include <stdint.h>
#include <stdlib.h>
#include <math.h>
#include <string.h>

#define BLK 32

/* ------------------------------------------------------------------ */
/* Stable descending argsort of non-negative, non-NaN doubles.         */
/* LSD byte radix on the raw IEEE bit patterns (monotone for non-      */
/* negative doubles): 8 stable counting passes from low byte to high,  */
/* each scattering digit 255 first, gives descending order with ties   */
/* in original index order — the exact permutation of a stable         */
/* descending mergesort (and of np.lexsort((arange(n), -w))).  Passes  */
/* whose byte is constant across all keys leave the order unchanged    */
/* and are skipped.                                                    */
/* ------------------------------------------------------------------ */
static void radix_argsort_desc(const double *w, ptrdiff_t *idx,
                               uint64_t *ka, uint64_t *kb,
                               ptrdiff_t *ia, ptrdiff_t *ib, ptrdiff_t n) {
    uint32_t hist[8][256];
    memset(hist, 0, sizeof(hist));
    for (ptrdiff_t i = 0; i < n; ++i) {
        uint64_t k;
        memcpy(&k, &w[i], 8);
        ka[i] = k;
        ia[i] = i;
        for (int pass = 0; pass < 8; ++pass)
            ++hist[pass][(k >> (8 * pass)) & 255u];
    }
    uint64_t *ksrc = ka, *kdst = kb;
    ptrdiff_t *isrc = ia, *idst = ib;
    for (int pass = 0; pass < 8; ++pass) {
        const uint32_t *h = hist[pass];
        int constant = 0;
        for (int v = 0; v < 256; ++v)
            if (h[v] == (uint32_t)n) { constant = 1; break; }
        if (constant) continue;
        uint32_t offsets[256];
        uint32_t run = 0;
        for (int v = 255; v >= 0; --v) { offsets[v] = run; run += h[v]; }
        const int shift = 8 * pass;
        for (ptrdiff_t i = 0; i < n; ++i) {
            uint64_t k = ksrc[i];
            uint32_t pos = offsets[(k >> shift) & 255u]++;
            kdst[pos] = k;
            idst[pos] = isrc[i];
        }
        uint64_t *kt = ksrc; ksrc = kdst; kdst = kt;
        ptrdiff_t *it = isrc; isrc = idst; idst = it;
    }
    memcpy(idx, isrc, (size_t)n * sizeof(ptrdiff_t));
}

/* ------------------------------------------------------------------ */
/* One DP level, register-blocked over 32 outputs.                     */
/*                                                                     */
/* next[j] = max over 1 <= g <= min(j, b) of prev[j-g] + g*F[j-g].     */
/* The prev row and F are stored with `pad` slots below index 0 filled */
/* with -inf and 0.0 respectively, so predecessors j-g < 0 contribute  */
/* -inf + g*0 = -inf and never win; slack above c is -inf/0.0 so       */
/* overshooting blocks stay -inf.  Each 32-wide block accumulates      */
/* across all gaps before storing, eliminating the per-diagonal        */
/* read-modify-write traffic of a (prev, j) sweep.                     */
/* ------------------------------------------------------------------ */
static void dp_level_blocked(const double *restrict prev_pad,
                             const double *restrict F_pad,
                             double *restrict next,
                             ptrdiff_t c, ptrdiff_t b) {
    for (ptrdiff_t j0 = 0; j0 <= c; j0 += BLK) {
        double acc[BLK];
        for (int k = 0; k < BLK; ++k) acc[k] = -INFINITY;
        ptrdiff_t ghi = j0 + BLK - 1 < b ? j0 + BLK - 1 : b;
        for (ptrdiff_t g = 1; g <= ghi; ++g) {
            const double gd = (double)g;
            const double *pb = prev_pad + j0 - g;
            const double *fp = F_pad + j0 - g;
            #pragma omp simd
            for (int k = 0; k < BLK; ++k) {
                double v = pb[k] + gd * fp[k];
                acc[k] = acc[k] > v ? acc[k] : v;
            }
        }
        for (int k = 0; k < BLK; ++k) next[j0 + k] = acc[k];
    }
    next[0] = -INFINITY;
}

/* Scratch layout: every DP row and the F array carry `pad` slots below
 * index 0 and BLK slots of slack above index c. */
typedef struct {
    ptrdiff_t c, d, pad, rowlen;
    double *F;       /* padded: F[-pad..c+BLK-1] */
    double *rows;    /* d padded rows */
    double *pd;      /* pd[p] = (double)p, 0..c */
    double *w;
    double *cum;
    uint64_t *ka, *kb;
    ptrdiff_t *ia, *ib;
} Scratch;

static int scratch_init(Scratch *s, ptrdiff_t c, ptrdiff_t d) {
    s->c = c; s->d = d;
    s->pad = c + 1;
    s->rowlen = s->pad + c + 1 + BLK;
    s->F = malloc((size_t)s->rowlen * sizeof(double));
    s->rows = malloc((size_t)(d * s->rowlen) * sizeof(double));
    s->pd = malloc((size_t)(c + 1) * sizeof(double));
    s->w = malloc((size_t)c * sizeof(double));
    s->cum = malloc((size_t)(c + 1) * sizeof(double));
    s->ka = malloc((size_t)c * sizeof(uint64_t));
    s->kb = malloc((size_t)c * sizeof(uint64_t));
    s->ia = malloc((size_t)c * sizeof(ptrdiff_t));
    s->ib = malloc((size_t)c * sizeof(ptrdiff_t));
    if (!s->F || !s->rows || !s->pd || !s->w || !s->cum
        || !s->ka || !s->kb || !s->ia || !s->ib)
        return -1;
    /* F: zeros below 0 and above c; rows: -inf below 0 and above c. */
    for (ptrdiff_t k = 0; k < s->pad; ++k) s->F[k] = 0.0;
    for (ptrdiff_t k = s->pad + c + 1; k < s->rowlen; ++k) s->F[k] = 0.0;
    for (ptrdiff_t lv = 0; lv < d; ++lv) {
        double *row = s->rows + lv * s->rowlen;
        for (ptrdiff_t k = 0; k < s->pad; ++k) row[k] = -INFINITY;
        for (ptrdiff_t k = s->pad + c + 1; k < s->rowlen; ++k) row[k] = -INFINITY;
    }
    for (ptrdiff_t p = 0; p <= c; ++p) s->pd[p] = (double)p;
    return 0;
}

static void scratch_free(Scratch *s) {
    free(s->F); free(s->rows); free(s->pd); free(s->w); free(s->cum);
    free(s->ka); free(s->kb); free(s->ia); free(s->ib);
}

static double *scratch_row(Scratch *s, ptrdiff_t level) {
    return s->rows + level * s->rowlen + s->pad;
}

static double *scratch_F(Scratch *s) {
    return s->F + s->pad;
}

/* Lemma 4.7 cut DP over the padded scratch rows; returns feasibility. */
static int cut_dp(Scratch *s, ptrdiff_t b, ptrdiff_t *sizes, double *value) {
    ptrdiff_t c = s->c, d = s->d;
    /* A group can never exceed c cells, so b > c plans identically to
     * b == c.  The clamp also keeps dp_level_blocked's gap loop (g up to
     * min(j0 + BLK - 1, b)) inside the pad = c + 1 slots below each row. */
    if (b > c) b = c;
    const double *F = scratch_F(s);
    double *base = scratch_row(s, 0);
    for (ptrdiff_t j = 0; j <= c; ++j)
        base[j] = (j >= 1 && j <= b) ? 0.0 : -INFINITY;
    for (ptrdiff_t level = 1; level < d; ++level)
        dp_level_blocked(scratch_row(s, level - 1), F,
                         scratch_row(s, level), c, b);
    double top = scratch_row(s, d - 1)[c];
    if (!isfinite(top)) return 0;
    *value = (double)c - top;
    ptrdiff_t cut = c;
    for (ptrdiff_t level = d - 1; level >= 1; --level) {
        const double *prev_best = scratch_row(s, level - 1);
        double target = scratch_row(s, level)[cut];
        const double cutd = (double)cut;
        ptrdiff_t lo = cut - b > 0 ? cut - b : 0;
        ptrdiff_t parent = 0;
        for (ptrdiff_t p = lo; p < cut; ++p) {
            double v = prev_best[p] + (cutd - s->pd[p]) * F[p];
            if (v == target) { parent = p; break; }
        }
        sizes[level] = cut - parent;
        cut = parent;
    }
    sizes[0] = cut;
    return 1;
}

/* Weights, stable descending order, and find-probability prefix (Fig. 1). */
static void prepare_instance(Scratch *s, const double *mat, ptrdiff_t m,
                             ptrdiff_t *order) {
    ptrdiff_t c = s->c;
    double *w = s->w, *cum = s->cum, *F = scratch_F(s);
    for (ptrdiff_t j = 0; j < c; ++j) w[j] = mat[j];
    for (ptrdiff_t dev = 1; dev < m; ++dev) {
        const double *row = mat + dev * c;
        for (ptrdiff_t j = 0; j < c; ++j) w[j] += row[j];
    }
    /* Canonicalize -0.0 to +0.0: the radix sort orders raw bit patterns,
     * where -0.0 (0x8000...) would sort before every positive weight,
     * while np.argsort treats -0.0 == 0.0 as a tie broken by index. */
    for (ptrdiff_t j = 0; j < c; ++j)
        if (w[j] == 0.0) w[j] = 0.0;
    radix_argsort_desc(w, order, s->ka, s->kb, s->ia, s->ib, c);
    for (ptrdiff_t dev = 0; dev < m; ++dev) {
        const double *row = mat + dev * c;
        double acc = 0.0;
        cum[0] = 0.0;
        for (ptrdiff_t k = 1; k <= c; ++k) {
            acc += row[order[k - 1]];
            cum[k] = acc;
        }
        if (dev == 0) memcpy(F, cum, (size_t)(c + 1) * sizeof(double));
        else { for (ptrdiff_t k = 0; k <= c; ++k) F[k] *= cum[k]; }
    }
}

static void mark_infeasible(ptrdiff_t *sizes, double *value, ptrdiff_t d) {
    *value = NAN;
    for (ptrdiff_t r = 0; r < d; ++r) sizes[r] = 0;
}

/* Full pipeline: matrices (batch, m, c) -> orders, group sizes, values. */
int repro_plan_batch(
    const double *matrices, ptrdiff_t batch, ptrdiff_t m, ptrdiff_t c,
    ptrdiff_t d, ptrdiff_t b,
    ptrdiff_t *orders, ptrdiff_t *sizes, double *values, unsigned char *feasible
) {
    Scratch s;
    if (scratch_init(&s, c, d) != 0) { scratch_free(&s); return -1; }
    for (ptrdiff_t i = 0; i < batch; ++i) {
        prepare_instance(&s, matrices + i * m * c, m, orders + i * c);
        feasible[i] = (unsigned char)cut_dp(&s, b, sizes + i * d, values + i);
        if (!feasible[i]) mark_infeasible(sizes + i * d, values + i, d);
    }
    scratch_free(&s);
    return 0;
}

/* Cut DP only: finds (batch, c+1) -> group sizes, values. */
int repro_optimize_cuts_batch(
    const double *finds, ptrdiff_t batch, ptrdiff_t c, ptrdiff_t d, ptrdiff_t b,
    ptrdiff_t *sizes, double *values, unsigned char *feasible
) {
    Scratch s;
    if (scratch_init(&s, c, d) != 0) { scratch_free(&s); return -1; }
    double *F = scratch_F(&s);
    for (ptrdiff_t i = 0; i < batch; ++i) {
        memcpy(F, finds + i * (c + 1), (size_t)(c + 1) * sizeof(double));
        feasible[i] = (unsigned char)cut_dp(&s, b, sizes + i * d, values + i);
        if (!feasible[i]) mark_infeasible(sizes + i * d, values + i, d);
    }
    scratch_free(&s);
    return 0;
}
