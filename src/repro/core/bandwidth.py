"""Bandwidth-limited paging: at most ``b`` cells per round (Section 5).

Real systems bound how many base stations can page simultaneously.  The paper
observes that its machinery survives the cap: Lemma 4.6 still yields an
approximate strategy in the restricted family, and the Lemma 4.7 dynamic
program simply restricts the range of the split variable ``x``.  This module
packages that restricted search, plus feasibility arithmetic.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import InfeasibleError
from .dp import OrderedDPResult, optimize_over_order
from .exact import ExactResult, optimal_strategy
from .instance import PagingInstance
from .ordering import by_expected_devices


def minimum_rounds(num_cells: int, max_group_size: int) -> int:
    """Fewest rounds that can cover ``c`` cells at ``b`` cells per round."""
    if max_group_size < 1:
        raise InfeasibleError("max_group_size must be at least 1")
    return math.ceil(num_cells / max_group_size)


def is_feasible(num_cells: int, num_rounds: int, max_group_size: int) -> bool:
    """Whether some strategy of length ``d`` obeys the per-round cap ``b``."""
    return (
        max_group_size >= 1
        and 1 <= num_rounds <= num_cells
        and num_rounds * max_group_size >= num_cells
    )


def bandwidth_limited_heuristic(
    instance: PagingInstance,
    max_group_size: int,
    *,
    max_rounds: Optional[int] = None,
) -> OrderedDPResult:
    """The Fig. 1 heuristic under a per-round paging cap.

    replint: solver
    """
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    if not is_feasible(instance.num_cells, d, max_group_size):
        raise InfeasibleError(
            f"no strategy pages {instance.num_cells} cells in {d} rounds of "
            f"at most {max_group_size}"
        )
    order = by_expected_devices(instance)
    return optimize_over_order(
        instance, order, max_rounds=d, max_group_size=max_group_size
    )


def bandwidth_limited_optimal(
    instance: PagingInstance,
    max_group_size: int,
    *,
    max_rounds: Optional[int] = None,
) -> ExactResult:
    """Exact optimum under the cap (small instances only).

    replint: solver
    """
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    if not is_feasible(instance.num_cells, d, max_group_size):
        raise InfeasibleError(
            f"no strategy pages {instance.num_cells} cells in {d} rounds of "
            f"at most {max_group_size}"
        )
    return optimal_strategy(instance, max_rounds=d, max_group_size=max_group_size)
