"""Adaptive search for the quorum problems (Yellow Pages / Signature).

Section 5's adaptive idea applied to its own generalizations: when the goal
is to find *k of m* devices, each round can replan using both the devices
already found and the cells already cleared.  After a round:

* devices found so far reduce the outstanding quorum;
* devices not yet found are conditionally distributed over the unpaged
  cells;

so the continuation is a smaller Signature problem (Yellow Pages when the
outstanding quorum is 1), replanned with the round budget left.  Expected
paging is computed exactly by the same found-subset tree recursion as the
Conference Call adaptive planner.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidInstanceError, InvalidStrategyError
from .instance import Number, PagingInstance
from .signature import SignatureResult, signature_heuristic

QuorumPlanner = Callable[[PagingInstance, int], SignatureResult]


@dataclass(frozen=True)
class AdaptiveQuorumTrace:
    """One adaptive quorum search run."""

    groups: Tuple[Tuple[int, ...], ...]
    cells_paged: int
    rounds_used: int
    devices_found: Tuple[int, ...]


def _plan_group(
    instance: PagingInstance,
    device_subset: Sequence[int],
    cell_subset: Sequence[int],
    quorum: int,
    rounds_left: int,
    planner: QuorumPlanner,
) -> Tuple[int, ...]:
    cells = tuple(cell_subset)
    if rounds_left <= 1 or len(cells) == 1:
        return cells
    effective_rounds = min(rounds_left, len(cells))
    sub, mapping = instance.restrict(device_subset, cells, effective_rounds)
    plan = planner(sub, quorum)
    first = plan.strategy.group(0)
    return tuple(sorted(mapping[j] for j in first))


def adaptive_quorum_search(
    instance: PagingInstance,
    quorum: int,
    locations: Sequence[int],
    *,
    planner: QuorumPlanner = signature_heuristic,
) -> AdaptiveQuorumTrace:
    """Run one adaptive search until ``quorum`` devices have answered."""
    m = instance.num_devices
    if not 1 <= quorum <= m:
        raise InvalidInstanceError(
            f"quorum must satisfy 1 <= k <= m={m}, got {quorum}"
        )
    if len(locations) != m:
        raise InvalidStrategyError(f"expected {m} locations, got {len(locations)}")
    remaining_devices = tuple(range(m))
    remaining_cells = tuple(range(instance.num_cells))
    outstanding = quorum
    rounds_left = instance.max_rounds
    paged = 0
    groups = []
    found: list = []
    while outstanding > 0:
        if rounds_left <= 0:
            raise InvalidStrategyError(
                "round budget exhausted before reaching the quorum"
            )
        group = _plan_group(
            instance,
            remaining_devices,
            remaining_cells,
            outstanding,
            rounds_left,
            planner,
        )
        groups.append(group)
        paged += len(group)
        group_set = set(group)
        hits = tuple(
            device for device in remaining_devices if locations[device] in group_set
        )
        found.extend(hits)
        outstanding -= len(hits)
        remaining_devices = tuple(
            device for device in remaining_devices if device not in hits
        )
        remaining_cells = tuple(j for j in remaining_cells if j not in group_set)
        rounds_left -= 1
    return AdaptiveQuorumTrace(
        groups=tuple(groups),
        cells_paged=paged,
        rounds_used=len(groups),
        devices_found=tuple(sorted(found)),
    )


def adaptive_quorum_expected_paging(
    instance: PagingInstance,
    quorum: int,
    *,
    planner: QuorumPlanner = signature_heuristic,
) -> Number:
    """Exact expected paging of the adaptive quorum policy.

    replint: solver
    """
    m = instance.num_devices
    if not 1 <= quorum <= m:
        raise InvalidInstanceError(
            f"quorum must satisfy 1 <= k <= m={m}, got {quorum}"
        )
    exact = instance.is_exact
    one: Number = Fraction(1) if exact else 1.0

    def recurse(
        device_subset: Tuple[int, ...],
        cell_subset: Tuple[int, ...],
        outstanding: int,
        rounds_left: int,
    ) -> Number:
        group = _plan_group(
            instance, device_subset, cell_subset, outstanding, rounds_left, planner
        )
        cost: Number = len(group) * one
        group_set = set(group)
        next_cells = tuple(j for j in cell_subset if j not in group_set)
        hit = []
        for device in device_subset:
            row = instance.row(device)
            mass = sum((row[j] for j in cell_subset), start=0 * one)
            inside = sum((row[j] for j in group), start=0 * one)
            hit.append(inside / mass)
        for pattern in itertools.product((False, True), repeat=len(device_subset)):
            hits = sum(1 for was_found in pattern if was_found)
            still_needed = outstanding - hits
            if still_needed <= 0:
                continue  # quorum reached on this branch: no further cost
            probability = one
            for was_found, q in zip(pattern, hit):
                probability = probability * (q if was_found else one - q)
            if float(probability) <= 0.0:
                continue
            missing = tuple(
                device
                for device, was_found in zip(device_subset, pattern)
                if not was_found
            )
            if not next_cells:
                raise InvalidStrategyError(
                    "cells exhausted before the quorum was reached"
                )
            cost = cost + probability * recurse(
                missing, next_cells, still_needed, rounds_left - 1
            )
        return cost

    return recurse(
        tuple(range(m)),
        tuple(range(instance.num_cells)),
        quorum,
        instance.max_rounds,
    )


def adaptive_quorum_monte_carlo(
    instance: PagingInstance,
    quorum: int,
    *,
    trials: int,
    rng: np.random.Generator,
    planner: QuorumPlanner = signature_heuristic,
) -> float:
    """Monte-Carlo estimate of the adaptive quorum policy's expected paging.

    All trial locations come from one batched draw
    (:func:`repro.core.batch.sample_locations_batch`); only the adaptive
    search itself remains per-trial.
    """
    from .batch import sample_locations_batch

    if trials <= 0:
        raise ValueError("trials must be positive")
    locations = sample_locations_batch(instance, trials, rng)
    total = 0
    for k in range(trials):
        total += adaptive_quorum_search(
            instance,
            quorum,
            tuple(int(cell) for cell in locations[:, k]),
            planner=planner,
        ).cells_paged
    return total / trials


#: Cell cap for the exact adaptive-quorum DP (3^c-flavored state space).
MAX_ADAPTIVE_CELLS = 12


def optimal_adaptive_quorum_expected_paging(
    instance: PagingInstance, quorum: int
) -> Number:
    """The exact optimal ADAPTIVE policy for the find-k-of-m objective.

    Dynamic program over ``(paged-cell mask, missing-device set, outstanding
    quorum, rounds left)`` — the quorum analogue of
    :func:`repro.core.adaptive_optimal.optimal_adaptive_expected_paging`.
    Small instances only.

    replint: solver
    """
    from functools import lru_cache

    from ..errors import SolverLimitError

    c = instance.num_cells
    if c > MAX_ADAPTIVE_CELLS:
        raise SolverLimitError(
            f"adaptive quorum solver limited to {MAX_ADAPTIVE_CELLS} cells"
        )
    m = instance.num_devices
    if not 1 <= quorum <= m:
        raise InvalidInstanceError(
            f"quorum must satisfy 1 <= k <= m={m}, got {quorum}"
        )
    d = min(instance.max_rounds, c)
    exact = instance.is_exact
    zero: Number = Fraction(0) if exact else 0.0
    one: Number = Fraction(1) if exact else 1.0
    full = (1 << c) - 1
    popcount = [bin(mask).count("1") for mask in range(full + 1)]

    sums = []
    for row in instance.rows:
        device_sums = [zero] * (full + 1)
        for mask in range(1, full + 1):
            low = mask & (-mask)
            device_sums[mask] = device_sums[mask ^ low] + row[low.bit_length() - 1]
        sums.append(device_sums)

    @lru_cache(maxsize=None)
    def value(
        mask: int, devices: frozenset, outstanding: int, rounds_left: int
    ) -> Number:
        if outstanding <= 0:
            return zero
        complement = full ^ mask
        if rounds_left <= 1:
            return popcount[complement] * one  # page everything left
        best: Optional[Number] = None
        denominators = {i: sums[i][complement] for i in devices}
        device_list = sorted(devices)
        sub = complement
        while sub:
            cost: Number = popcount[sub] * one
            if sub != complement:
                hit = {i: sums[i][sub] / denominators[i] for i in device_list}
                for pattern in itertools.product(
                    (False, True), repeat=len(device_list)
                ):
                    hits = sum(1 for was_found in pattern if was_found)
                    still_needed = outstanding - hits
                    if still_needed <= 0:
                        continue
                    probability = one
                    for device, was_found in zip(device_list, pattern):
                        q = hit[device]
                        probability = probability * (q if was_found else one - q)
                    if float(probability) <= 0.0:
                        continue
                    missing = frozenset(
                        device
                        for device, was_found in zip(device_list, pattern)
                        if not was_found
                    )
                    cost = cost + probability * value(
                        mask | sub, missing, still_needed, rounds_left - 1
                    )
            if best is None or cost < best:
                best = cost
            sub = (sub - 1) & complement
        assert best is not None
        return best

    return value(0, frozenset(range(m)), quorum, d)


def adaptive_yellow_pages_expected_paging(
    instance: PagingInstance,
    *,
    planner: Optional[QuorumPlanner] = None,
) -> Number:
    """Adaptive Yellow Pages: find any one device, replanning each round."""
    if planner is None:
        planner = signature_heuristic
    return adaptive_quorum_expected_paging(instance, 1, planner=planner)
