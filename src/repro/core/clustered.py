"""Exhaustive scheme for clustered probabilities (Section 5 of the paper).

The paper sketches an approximation scheme for the subclass of instances
whose probability values ``{p[i][j]}`` are covered by a constant number of
short real intervals: cells whose probability columns agree (up to the
interval resolution) are interchangeable, so a strategy is described by *how
many* cells of each cluster go to each round rather than *which* cells.  With
``T`` clusters and ``d`` rounds there are at most
``prod_t C(n_t + d - 1, d - 1)`` count matrices — polynomial for constant
``T`` and ``d`` — and the best of them can be found exhaustively.

We implement the scheme concretely: cluster columns on a quantization grid,
enumerate count matrices, realize each as a strategy (cells within a cluster
are handed out in index order), and return the best.  When every cluster is a
singleton this degenerates to full enumeration; the ``limit`` guard protects
against that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SolverLimitError
from .expected_paging import expected_paging
from .instance import Number, PagingInstance
from .strategy import Strategy


@dataclass(frozen=True)
class ClusteredResult:
    """Best cluster-symmetric strategy found by the exhaustive scheme."""

    strategy: Strategy
    expected_paging: Number
    clusters: Tuple[Tuple[int, ...], ...]
    count_matrix: Tuple[Tuple[int, ...], ...]


def cluster_cells(
    instance: PagingInstance, *, resolution: float = 1e-9
) -> Tuple[Tuple[int, ...], ...]:
    """Group cells whose probability columns agree up to ``resolution``.

    Returns clusters as tuples of cell indices (each sorted, clusters ordered
    by first member).  ``resolution`` is the interval length of the paper's
    subclass; exact instances cluster on exact equality when it is 0.
    """
    buckets: Dict[Tuple, List[int]] = {}
    for cell in range(instance.num_cells):
        if resolution > 0:
            key = tuple(
                round(float(row[cell]) / resolution) for row in instance.rows
            )
        else:
            key = tuple(row[cell] for row in instance.rows)
        buckets.setdefault(key, []).append(cell)
    clusters = sorted(buckets.values(), key=lambda cells: cells[0])
    return tuple(tuple(cells) for cells in clusters)


def _compositions(total: int, parts: int):
    """All ways to split ``total`` into ``parts`` non-negative integers."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def count_matrix_space(cluster_sizes: Sequence[int], num_rounds: int) -> int:
    """How many count matrices the exhaustive scheme will enumerate."""
    import math

    total = 1
    for size in cluster_sizes:
        total *= math.comb(size + num_rounds - 1, num_rounds - 1)
    return total


def interval_scheme_error_bound(
    num_devices: int, num_cells: int, width: float
) -> float:
    """Worst-case EP error of planning on interval-rounded probabilities.

    Rounding every probability by at most ``width/2`` moves each prefix mass
    ``P_i(L)`` by at most ``c * width / 2``, each ``m``-fold product by at
    most ``m c width / 2``, and the telescoped EP of ANY strategy by at most
    ``m c^2 width / 2``.  Solving exactly on the rounded instance therefore
    yields a strategy within ``m c^2 width`` of the true optimum — the
    approximation-scheme guarantee behind the Section 5 sketch (constant
    interval count keeps the search polynomial; the width controls the
    additive error).
    """
    return num_devices * num_cells**2 * width


def interval_scheme(
    instance: PagingInstance,
    width: float,
    *,
    max_rounds: Optional[int] = None,
    limit: int = 2_000_000,
) -> ClusteredResult:
    """The Section 5 approximation scheme for interval-covered probabilities.

    Rounds every probability onto a grid of pitch ``width`` (so the value
    set is covered by intervals of that length), solves the rounded instance
    exactly by cluster-symmetric enumeration, and returns that strategy
    *evaluated on the true instance*.  The returned EP is within
    :func:`interval_scheme_error_bound` of the true optimum.
    """
    if width <= 0:
        raise SolverLimitError("interval width must be positive")
    c = instance.num_cells
    rounded_rows = []
    for row in instance.rows:
        rounded = [round(float(p) / width) * width for p in row]
        total = sum(rounded)
        if total <= 0:
            raise SolverLimitError("interval width too coarse: a row vanished")
        rounded_rows.append([p / total for p in rounded])
    rounded_instance = PagingInstance(
        rounded_rows,
        instance.max_rounds if max_rounds is None else max_rounds,
        allow_zero=True,
    )
    rounded_result = clustered_exhaustive(
        rounded_instance, max_rounds=max_rounds, resolution=width / 4, limit=limit
    )
    true_value = expected_paging(instance, rounded_result.strategy)
    return ClusteredResult(
        strategy=rounded_result.strategy,
        expected_paging=true_value,
        clusters=rounded_result.clusters,
        count_matrix=rounded_result.count_matrix,
    )


def clustered_exhaustive(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
    resolution: float = 1e-9,
    limit: int = 2_000_000,
) -> ClusteredResult:
    """Best strategy that treats same-cluster cells as interchangeable.

    Exact on instances whose clusters are true equivalence classes (identical
    columns): some optimal strategy is then cluster-symmetric, because
    swapping two interchangeable cells never changes the expected paging.

    replint: solver
    """
    clusters = cluster_cells(instance, resolution=resolution)
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    d = min(d, instance.num_cells)
    space = count_matrix_space([len(cluster) for cluster in clusters], d)
    if space > limit:
        raise SolverLimitError(
            f"{space} count matrices exceed the enumeration limit {limit}"
        )

    best_value: Optional[Number] = None
    best: Optional[Tuple[Strategy, Tuple[Tuple[int, ...], ...]]] = None
    per_cluster = [list(_compositions(len(cluster), d)) for cluster in clusters]
    for counts in itertools.product(*per_cluster):
        round_sizes = [
            sum(counts[t][r] for t in range(len(clusters))) for r in range(d)
        ]
        if any(size == 0 for size in round_sizes):
            continue  # strategies need non-empty groups
        groups: List[List[int]] = [[] for _ in range(d)]
        for cluster, allocation in zip(clusters, counts):
            position = 0
            for r, amount in enumerate(allocation):
                groups[r].extend(cluster[position : position + amount])
                position += amount
        strategy = Strategy(groups)
        value = expected_paging(instance, strategy)
        if best_value is None or value < best_value:
            best_value = value
            best = (strategy, counts)
    if best is None or best_value is None:
        raise SolverLimitError("no feasible count matrix (fewer cells than rounds?)")
    strategy, counts = best
    return ClusteredResult(
        strategy=strategy,
        expected_paging=best_value,
        clusters=clusters,
        count_matrix=tuple(tuple(row) for row in counts),
    )
