"""Problem instances for the Conference Call paging problem.

A :class:`PagingInstance` bundles the data of the optimization problem from
Section 1.2 of the paper: ``c`` cells, ``m`` mobile devices, an ``m x c``
matrix of location probabilities (each row a distribution over cells), and the
delay constraint ``d`` (maximum number of paging rounds).

Entries may be floats (fast paths) or :class:`fractions.Fraction` values
(exact paths).  The paper assumes strictly positive probabilities; zeros are
permitted with ``allow_zero=True`` because the Section 4.3 lower-bound
instance uses them and every algorithm in this library remains correct when
some entries vanish.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import InvalidInstanceError

Number = Union[int, float, Fraction]

#: Tolerance used when validating float probability rows.
FLOAT_ROW_TOLERANCE = 1e-9


def _is_exact(value: Number) -> bool:
    return isinstance(value, (int, Fraction)) and not isinstance(value, bool)


class PagingInstance:
    """An instance of the Conference Call problem.

    Parameters
    ----------
    probabilities:
        ``m`` rows of length ``c``; row ``i`` is the distribution of device
        ``i`` over cells.  Rows must sum to 1 (exactly for Fraction rows,
        within :data:`FLOAT_ROW_TOLERANCE` for float rows).
    max_rounds:
        The delay constraint ``d`` with ``1 <= d <= c``.
    allow_zero:
        Permit zero entries (the paper's model requires positive entries, but
        zeros arise in its own Section 4.3 example and are harmless).
    """

    __slots__ = (
        "_rows",
        "_num_cells",
        "_num_devices",
        "_max_rounds",
        "_exact",
        "_float_rows",
        "_cumulative_rows",
    )

    def __init__(
        self,
        probabilities: Sequence[Sequence[Number]],
        max_rounds: int,
        *,
        allow_zero: bool = False,
        validate: bool = True,
    ) -> None:
        rows = tuple(tuple(row) for row in probabilities)
        if not rows or not rows[0]:
            raise InvalidInstanceError("instance needs at least one device and one cell")
        self._rows = rows
        self._num_devices = len(rows)
        self._num_cells = len(rows[0])
        self._max_rounds = int(max_rounds)
        self._exact = all(_is_exact(p) for row in rows for p in row)
        self._float_rows: Optional[np.ndarray] = None
        self._cumulative_rows: Optional[np.ndarray] = None
        if validate:
            self._validate(allow_zero)

    def _validate(self, allow_zero: bool) -> None:
        c = self._num_cells
        if not 1 <= self._max_rounds <= c:
            raise InvalidInstanceError(
                f"max_rounds must satisfy 1 <= d <= c={c}, got {self._max_rounds}"
            )
        for i, row in enumerate(self._rows):
            if len(row) != c:
                raise InvalidInstanceError(
                    f"row {i} has length {len(row)}, expected {c}"
                )
            total = sum(row)
            if self._exact:
                if total != 1:
                    raise InvalidInstanceError(f"row {i} sums to {total}, expected 1")
            elif abs(float(total) - 1.0) > FLOAT_ROW_TOLERANCE:
                raise InvalidInstanceError(
                    f"row {i} sums to {float(total)!r}, expected 1 within tolerance"
                )
            for j, p in enumerate(row):
                value = float(p)
                if value < 0 or (value == 0 and not allow_zero):
                    raise InvalidInstanceError(
                        f"probability p[{i}][{j}]={p!r} must be "
                        + ("non-negative" if allow_zero else "strictly positive")
                    )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """The number of cells ``c``."""
        return self._num_cells

    @property
    def num_devices(self) -> int:
        """The number of mobile devices ``m``."""
        return self._num_devices

    @property
    def max_rounds(self) -> int:
        """The delay constraint ``d``."""
        return self._max_rounds

    @property
    def is_exact(self) -> bool:
        """True when every probability is an ``int`` or ``Fraction``."""
        return self._exact

    @property
    def rows(self) -> Tuple[Tuple[Number, ...], ...]:
        """The probability matrix as a tuple of row tuples."""
        return self._rows

    def row(self, device: int) -> Tuple[Number, ...]:
        """The distribution of one device across cells."""
        return self._rows[device]

    def probability(self, device: int, cell: int) -> Number:
        """The probability that ``device`` is located in ``cell``."""
        return self._rows[device][cell]

    def float_rows(self) -> np.ndarray:
        """The probability matrix as a cached, read-only ``float64`` array.

        Built once per instance and shared by every float-arithmetic hot path
        (:func:`repro.core.expected_paging.all_found_probability`, the batch
        kernels in :mod:`repro.core.batch`, and location sampling), so
        repeated evaluations never re-convert the row tuples.  The array is
        marked read-only; use :meth:`as_array` for a private mutable copy.
        """
        if self._float_rows is None:
            rows = np.array(
                [[float(p) for p in row] for row in self._rows], dtype=np.float64
            )
            rows.setflags(write=False)
            self._float_rows = rows
        return self._float_rows

    def _cumulative_float_rows(self) -> np.ndarray:
        """Cached per-device cumulative distributions (rows normalized to 1)."""
        if self._cumulative_rows is None:
            cumulative = np.cumsum(self.float_rows(), axis=1)
            cumulative /= cumulative[:, -1:]
            cumulative.setflags(write=False)
            self._cumulative_rows = cumulative
        return self._cumulative_rows

    def as_array(self) -> np.ndarray:
        """The probability matrix as a fresh mutable ``float64`` numpy array."""
        return np.array(self.float_rows())

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def cell_weight(self, cell: int) -> Number:
        """Expected number of devices located in ``cell``: ``sum_i p[i][cell]``.

        This is the key used by the paper's heuristic ordering (Section 4).
        """
        return sum(row[cell] for row in self._rows)

    def cell_weights(self) -> Tuple[Number, ...]:
        """Expected device counts for every cell."""
        return tuple(self.cell_weight(j) for j in range(self._num_cells))

    def prefix_find_probabilities(self, order: Sequence[int]) -> Tuple[Number, ...]:
        """``F[k] = prod_i P_i(first k cells of order)`` for ``k = 0..c``.

        ``F[k]`` is the probability that *all* devices lie within the first
        ``k`` cells of ``order`` — the quantity driving the Lemma 4.7 dynamic
        program.  ``F[0] = 0`` for ``m >= 1`` (an empty prefix holds nobody)
        except in the degenerate sense; we return the true product, which is
        0 for ``k = 0``.
        """
        zero: Number = Fraction(0) if self._exact else 0.0
        one: Number = Fraction(1) if self._exact else 1.0
        sums = [zero] * self._num_devices
        out = []
        product = one if self._num_devices == 0 else zero
        out.append(zero if self._num_devices else one)
        for cell in order:
            product = one
            for i, row in enumerate(self._rows):
                sums[i] = sums[i] + row[cell]
                product = product * sums[i]
            out.append(product)
        return tuple(out)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_max_rounds(self, max_rounds: int) -> "PagingInstance":
        """A copy of this instance with a different delay constraint."""
        return PagingInstance(
            self._rows, max_rounds, allow_zero=True, validate=True
        )

    def restrict(
        self,
        devices: Iterable[int],
        cells: Sequence[int],
        max_rounds: int,
    ) -> Tuple["PagingInstance", Tuple[int, ...]]:
        """Condition on the given devices lying within ``cells``.

        Used by the adaptive planner of Section 5: after a round, the devices
        not yet found are known to reside in the unpaged cells, and their
        distributions renormalize over those cells.  Returns the conditioned
        sub-instance together with the tuple mapping new cell indices back to
        the original ones.

        Raises :class:`InvalidInstanceError` when some device has zero mass on
        ``cells`` (conditioning on a null event).
        """
        cells = tuple(cells)
        device_list = tuple(devices)
        if not device_list or not cells:
            raise InvalidInstanceError("restriction needs at least one device and cell")
        new_rows = []
        for i in device_list:
            row = self._rows[i]
            mass = sum(row[j] for j in cells)
            if float(mass) <= 0.0:
                raise InvalidInstanceError(
                    f"device {i} has zero probability of being in the remaining cells"
                )
            new_rows.append(tuple(row[j] / mass for j in cells))
        sub = PagingInstance(new_rows, max_rounds, allow_zero=True)
        return sub, cells

    def to_float(self) -> "PagingInstance":
        """A float-valued copy (useful to exit exact arithmetic fast paths)."""
        rows = [[float(p) for p in row] for row in self._rows]
        return PagingInstance(rows, self._max_rounds, allow_zero=True)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_locations(self, rng: np.random.Generator) -> Tuple[int, ...]:
        """Draw one joint location outcome: a cell index per device.

        Deliberately kept as the transparent per-device reference sampler
        (it preserves the historical random stream for a given seed); bulk
        draws should use :func:`repro.core.batch.sample_locations_batch`,
        which draws the same distribution vectorized over trials.
        """
        cells = np.arange(self._num_cells)
        out = []
        for row in self._rows:
            weights = np.array([float(p) for p in row])
            weights = weights / weights.sum()
            out.append(int(rng.choice(cells, p=weights)))
        return tuple(out)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls, num_devices: int, num_cells: int, max_rounds: int, *, exact: bool = False
    ) -> "PagingInstance":
        """Every device uniformly distributed over every cell."""
        if num_cells < 1:
            raise InvalidInstanceError("need at least one cell")
        p: Number = Fraction(1, num_cells) if exact else 1.0 / num_cells
        rows = [[p] * num_cells for _ in range(num_devices)]
        return cls(rows, max_rounds)

    @classmethod
    def single_device(
        cls, probabilities: Sequence[Number], max_rounds: int, *, allow_zero: bool = False
    ) -> "PagingInstance":
        """The classical one-device paging problem (``m = 1``)."""
        return cls([tuple(probabilities)], max_rounds, allow_zero=allow_zero)

    @classmethod
    def from_array(
        cls, matrix: np.ndarray, max_rounds: int, *, allow_zero: bool = False
    ) -> "PagingInstance":
        """Build from a numpy ``m x c`` matrix, renormalizing rows exactly."""
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2:
            raise InvalidInstanceError("matrix must be two-dimensional")
        rows = []
        for row in arr:
            total = float(row.sum())
            if total <= 0:
                raise InvalidInstanceError("each row must have positive total mass")
            rows.append([float(p) / total for p in row])
        return cls(rows, max_rounds, allow_zero=allow_zero)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PagingInstance(m={self._num_devices}, c={self._num_cells}, "
            f"d={self._max_rounds}, exact={self._exact})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PagingInstance):
            return NotImplemented
        return (
            self._rows == other._rows and self._max_rounds == other._max_rounds
        )

    def __hash__(self) -> int:
        return hash((self._rows, self._max_rounds))
