"""Exact (exponential-time) solvers for the Conference Call problem.

The problem is NP-hard (Section 3 of the paper), so exact solutions are only
tractable for small instances; they serve as ground truth when measuring the
heuristic's empirical approximation ratio and when verifying the NP-hardness
reductions.

Two solvers are provided:

* :func:`optimal_strategy` — a subset dynamic program over prefixes
  ``L_1 ⊂ L_2 ⊂ ... ⊂ L_d = [c]``.  By Lemma 2.1 the objective depends only
  on this chain, so the DP over ``(prefix mask, rounds used)`` with submask
  enumeration finds the optimum in ``O(d 3^c)`` time — far faster than the
  naive ``d^c`` enumeration and exact in Fraction arithmetic when requested.
* :func:`optimal_strategy_bruteforce` — a literal enumeration of every
  surjection of cells onto rounds, used to cross-check the subset DP in tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

from ..errors import SolverLimitError
from ..obs.instrument import traced
from .expected_paging import expected_paging
from .instance import Number, PagingInstance
from .strategy import Strategy

#: Largest cell count accepted by the subset DP (3^18 transitions is already
#: hundreds of millions of Python operations).
MAX_EXACT_CELLS = 18

#: How many per-instance ``F[mask]`` tables to keep memoized.  Each table has
#: ``2^c`` entries, so the cache is deliberately small; it exists so repeated
#: solves of the *same* instance (delay sweeps, bandwidth sweeps) pay for the
#: table once.
_FIND_TABLE_CACHE_SIZE = 8


if hasattr(int, "bit_count"):  # Python >= 3.10

    def _popcount_table(size: int) -> List[int]:
        """``popcount[mask]`` for every mask below ``size`` via int.bit_count."""
        return [mask.bit_count() for mask in range(size)]

else:  # pragma: no cover - exercised on the 3.9 CI floor

    def _popcount_table(size: int) -> List[int]:
        """Incremental fallback: ``popcount[m] = popcount[m >> 1] + (m & 1)``."""
        table = [0] * size
        for mask in range(1, size):
            table[mask] = table[mask >> 1] + (mask & 1)
        return table


@dataclass(frozen=True)
class ExactResult:
    """An optimal strategy together with its expected paging."""

    strategy: Strategy
    expected_paging: Number


@lru_cache(maxsize=_FIND_TABLE_CACHE_SIZE)
def _mask_find_probabilities(instance: PagingInstance) -> Tuple[Number, ...]:
    """``F[mask] = prod_i P_i(mask)`` for every subset of cells, via bit DP.

    Memoized per instance (instances are hashable): the table depends only
    on the probability rows, so delay/bandwidth sweeps such as
    :func:`optimal_value_by_round_budget` build the ``2^c`` table once and
    re-run only the chain DP.
    """
    c = instance.num_cells
    exact = instance.is_exact
    zero: Number = Fraction(0) if exact else 0.0
    one: Number = Fraction(1) if exact else 1.0
    size = 1 << c
    # Per-device prefix-free subset sums, built from the lowest set bit.
    sums: List[List[Number]] = []
    for row in instance.rows:
        device_sums = [zero] * size
        for mask in range(1, size):
            low = mask & (-mask)
            device_sums[mask] = device_sums[mask ^ low] + row[low.bit_length() - 1]
        sums.append(device_sums)
    finds = [one] * size
    for mask in range(size):
        value = one
        for device_sums in sums:
            value = value * device_sums[mask]
        finds[mask] = value
    return tuple(finds)


@traced("core.exact")
def optimal_strategy(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
    max_group_size: Optional[int] = None,
) -> ExactResult:
    """The minimum-expected-paging strategy, by subset dynamic programming.

    Maximizes the Lemma 2.1 bonus ``sum_r |S_{r+1}| F(L_r)`` over all chains
    of prefixes.  Supports the bandwidth-limited model via
    ``max_group_size``.  Raises :class:`SolverLimitError` above
    :data:`MAX_EXACT_CELLS` cells.

    replint: solver
    """
    c = instance.num_cells
    if c > MAX_EXACT_CELLS:
        raise SolverLimitError(
            f"exact solver limited to {MAX_EXACT_CELLS} cells, got {c}"
        )
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    d = min(d, c)
    b = c if max_group_size is None else int(max_group_size)
    finds = _mask_find_probabilities(instance)
    full = (1 << c) - 1
    popcount = _popcount_table(full + 1)

    minus_infinity = float("-inf")
    # bonus[mask] = best achievable sum of |S_{r+1}| * F(L_r) over the
    # remaining rounds, given prefix `mask` with `t` groups still to place.
    bonus = [0.0 if mask == full else minus_infinity for mask in range(full + 1)]
    bonus[full] = 0 * finds[0]  # exact zero in the instance's arithmetic
    choice: List[List[int]] = []

    for t in range(1, d + 1):
        new_bonus = [minus_infinity] * (full + 1)
        new_choice = [0] * (full + 1)
        for mask in range(full + 1):
            complement = full ^ mask
            remaining = popcount[complement]
            if remaining < t or remaining > t * b:
                continue
            find_here = finds[mask]
            best = minus_infinity
            best_ext = 0
            sub = complement
            while sub:
                if popcount[sub] <= b and popcount[complement ^ sub] <= (t - 1) * b:
                    tail = bonus[mask | sub]
                    if tail != minus_infinity:
                        # Every group except the first earns |S_{r+1}| F(L_r);
                        # the first has mask = 0 and finds[0] = 0, so the same
                        # expression covers it.
                        value = popcount[sub] * find_here + tail
                        if value > best:
                            best = value
                            best_ext = sub
                sub = (sub - 1) & complement
            if best != minus_infinity:
                new_bonus[mask] = best
                new_choice[mask] = best_ext
        bonus = new_bonus
        choice.append(new_choice)
        if t == d:
            break

    if bonus[0] == minus_infinity:
        raise SolverLimitError("no feasible chain found (check group-size cap)")

    # Reconstruct the chain from the empty prefix.  choice[t-1] holds the
    # extension chosen when t groups remain; the first group uses t = d.
    groups = []
    mask = 0
    for t in range(d, 0, -1):
        ext = choice[t - 1][mask]
        groups.append([j for j in range(c) if ext >> j & 1])
        mask |= ext
    strategy = Strategy(groups)
    return ExactResult(strategy=strategy, expected_paging=expected_paging(instance, strategy))


def enumerate_strategies(num_cells: int, num_rounds: int) -> Iterator[Strategy]:
    """Every strategy with exactly ``num_rounds`` groups (all surjections)."""
    for assignment in itertools.product(range(num_rounds), repeat=num_cells):
        if len(set(assignment)) != num_rounds:
            continue
        yield Strategy.from_assignment(assignment)


def optimal_strategy_bruteforce(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
    enumeration_limit: int = 2_000_000,
) -> ExactResult:
    """Literal enumeration of all strategies (ground truth for tiny instances).

    replint: solver
    """
    c = instance.num_cells
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    d = min(d, c)
    if d**c > enumeration_limit:
        raise SolverLimitError(
            f"{d}^{c} strategies exceed the enumeration limit {enumeration_limit}"
        )
    best: Optional[ExactResult] = None
    for strategy in enumerate_strategies(c, d):
        value = expected_paging(instance, strategy)
        if best is None or value < best.expected_paging:
            best = ExactResult(strategy=strategy, expected_paging=value)
    if best is None:
        raise SolverLimitError("no strategy enumerated; check parameters")
    return best


def optimal_value_by_round_budget(
    instance: PagingInstance, max_rounds_range: Tuple[int, int]
) -> Tuple[Number, ...]:
    """Optimal EP for each delay bound in an inclusive range (delay tradeoff)."""
    low, high = max_rounds_range
    out = []
    for d in range(low, high + 1):
        out.append(optimal_strategy(instance, max_rounds=d).expected_paging)
    return tuple(out)
