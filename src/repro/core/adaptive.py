"""Adaptive paging strategies (Section 5 of the paper).

The paper's heuristic extends naturally to an adaptive strategy: after each
round, compute the conditional location distributions of the devices not yet
found (they are known to lie in the unpaged cells), re-run the Fig. 1
algorithm on the conditioned sub-instance with the remaining round budget,
and page its first group.  The paper leaves the performance ratio of this
adaptive scheme open; this module makes it executable and measurable.

Expected paging of the adaptive policy is computed *exactly* by recursing
over the subsets of devices found in each round (devices are independent, so
outcome probabilities factor), and validated by Monte-Carlo simulation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Protocol, Sequence, Tuple

import numpy as np

from ..errors import InvalidStrategyError
from .heuristic import conference_call_heuristic
from .instance import Number, PagingInstance
from .strategy import Strategy


class _HasStrategy(Protocol):
    strategy: Strategy


Planner = Callable[[PagingInstance], _HasStrategy]


@dataclass(frozen=True)
class AdaptiveTrace:
    """One adaptive search run: per-round groups (original cell ids) and cost."""

    groups: Tuple[Tuple[int, ...], ...]
    cells_paged: int
    rounds_used: int


def _plan_first_group(
    instance: PagingInstance,
    device_subset: Sequence[int],
    cell_subset: Sequence[int],
    rounds_left: int,
    planner: Planner,
) -> Tuple[int, ...]:
    """The cells (original ids) the adaptive policy pages next."""
    cells = tuple(cell_subset)
    if rounds_left <= 1 or len(cells) == 1:
        return cells
    effective_rounds = min(rounds_left, len(cells))
    sub, mapping = instance.restrict(device_subset, cells, effective_rounds)
    plan = planner(sub)
    first = plan.strategy.group(0)
    return tuple(sorted(mapping[j] for j in first))


def adaptive_search(
    instance: PagingInstance,
    locations: Sequence[int],
    *,
    planner: Planner = conference_call_heuristic,
) -> AdaptiveTrace:
    """Run one adaptive search against fixed device locations."""
    if len(locations) != instance.num_devices:
        raise InvalidStrategyError(
            f"expected {instance.num_devices} locations, got {len(locations)}"
        )
    remaining_devices = tuple(range(instance.num_devices))
    remaining_cells = tuple(range(instance.num_cells))
    rounds_left = instance.max_rounds
    paged = 0
    groups = []
    while remaining_devices:
        if rounds_left <= 0:
            raise InvalidStrategyError("round budget exhausted before finding all devices")
        group = _plan_first_group(
            instance, remaining_devices, remaining_cells, rounds_left, planner
        )
        groups.append(group)
        paged += len(group)
        group_set = set(group)
        remaining_devices = tuple(
            i for i in remaining_devices if locations[i] not in group_set
        )
        remaining_cells = tuple(j for j in remaining_cells if j not in group_set)
        rounds_left -= 1
    return AdaptiveTrace(
        groups=tuple(groups), cells_paged=paged, rounds_used=len(groups)
    )


def adaptive_expected_paging(
    instance: PagingInstance,
    *,
    planner: Planner = conference_call_heuristic,
) -> Number:
    """Exact expected paging of the adaptive policy.

    Recurses over the found-device subsets after each round.  The branching is
    ``2^(remaining devices)`` per round, so this is intended for the small
    ``m`` regimes the paper targets (conference calls between a few parties).

    replint: solver
    """
    exact = instance.is_exact
    one: Number = Fraction(1) if exact else 1.0

    def recurse(
        device_subset: Tuple[int, ...],
        cell_subset: Tuple[int, ...],
        rounds_left: int,
    ) -> Number:
        group = _plan_first_group(
            instance, device_subset, cell_subset, rounds_left, planner
        )
        cost: Number = len(group) * one
        group_set = set(group)
        next_cells = tuple(j for j in cell_subset if j not in group_set)
        if not next_cells:
            return cost  # everything paged; all devices necessarily found
        # Conditional probability that each device is inside the paged group.
        hit = []
        for i in device_subset:
            row = instance.row(i)
            mass = sum((row[j] for j in cell_subset), start=0 * one)
            inside = sum((row[j] for j in group), start=0 * one)
            hit.append(inside / mass)
        for found_mask in itertools.product((False, True), repeat=len(device_subset)):
            missing = tuple(
                device
                for device, was_found in zip(device_subset, found_mask)
                if not was_found
            )
            if not missing:
                continue  # search stops; no further cost on this branch
            probability = one
            for was_found, q in zip(found_mask, hit):
                probability = probability * (q if was_found else one - q)
            if float(probability) <= 0.0:
                continue
            cost = cost + probability * recurse(missing, next_cells, rounds_left - 1)
        return cost

    return recurse(
        tuple(range(instance.num_devices)),
        tuple(range(instance.num_cells)),
        instance.max_rounds,
    )


def adaptive_monte_carlo(
    instance: PagingInstance,
    *,
    trials: int,
    rng: np.random.Generator,
    planner: Planner = conference_call_heuristic,
) -> float:
    """Monte-Carlo estimate of the adaptive policy's expected paging.

    Locations for all trials are drawn in one batched kernel
    (:func:`repro.core.batch.sample_locations_batch`); the adaptive search
    itself is inherently sequential per trial.
    """
    from .batch import sample_locations_batch

    if trials <= 0:
        raise ValueError("trials must be positive")
    locations = sample_locations_batch(instance, trials, rng)
    total = 0
    for k in range(trials):
        total += adaptive_search(
            instance, tuple(int(cell) for cell in locations[:, k]), planner=planner
        ).cells_paged
    return total / trials
