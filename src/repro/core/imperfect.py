"""Imperfect detection: paging a cell may miss a device that is there.

The last modeling extension of Section 5: a paged cell detects a present
device only with some probability, and that probability *decreases* with the
number of devices answering in the same cell (collision of response
signals).  Related search-theoretic treatments are [Awduche et al. 1996;
Stone 1975], which the paper cites.

We model oblivious *cyclic* strategies: page ``S_1, ..., S_d`` and repeat the
whole sweep until every device has answered.  For a single device with a
constant detection probability ``q`` the expected paging has a closed form::

    EP = c (1 - q) / q  +  sum_j p_j L(j)

(``L(j)`` = cells paged through the round containing ``j``): failures cost
whole sweeps, so the *ordering problem is unchanged* — the optimal strategy
under imperfect detection is the optimal strategy under perfect detection.
The multi-device collision model has no such form and is evaluated by
Monte-Carlo; benchmark E20 sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Protocol, Sequence, Tuple

import numpy as np

from ..errors import InvalidInstanceError, SimulationError
from .instance import PagingInstance
from .strategy import Strategy


class DetectionModel(Protocol):
    """Probability that one device answers, given cell congestion."""

    def detection_probability(self, devices_in_cell: int) -> float:
        """Chance a paged device is detected when ``devices_in_cell`` answer."""
        ...


@dataclass(frozen=True)
class ConstantDetection:
    """Every page detects a present device with fixed probability ``q``."""

    q: float

    def __post_init__(self) -> None:
        if not 0 < self.q <= 1:
            raise InvalidInstanceError("detection probability must lie in (0, 1]")

    def detection_probability(self, devices_in_cell: int) -> float:
        return self.q


@dataclass(frozen=True)
class CollisionDetection:
    """Detection degrades geometrically with co-located answering devices.

    ``q_k = q * collision_factor^(k-1)`` for ``k`` devices in the cell —
    the paper's "chances of finding out decrease with the number of devices
    in the cell".
    """

    q: float
    collision_factor: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.q <= 1:
            raise InvalidInstanceError("detection probability must lie in (0, 1]")
        if not 0 < self.collision_factor <= 1:
            raise InvalidInstanceError("collision_factor must lie in (0, 1]")

    def detection_probability(self, devices_in_cell: int) -> float:
        if devices_in_cell < 1:
            raise InvalidInstanceError("need at least one device in the cell")
        return self.q * self.collision_factor ** (devices_in_cell - 1)


@dataclass(frozen=True)
class ImperfectSearchOutcome:
    """One cyclic search under imperfect detection."""

    cells_paged: int
    sweeps_used: int
    rounds_used: int


def simulate_imperfect_search(
    instance: PagingInstance,
    strategy: Strategy,
    locations: Sequence[int],
    model: DetectionModel,
    rng: np.random.Generator,
    *,
    max_sweeps: int = 10_000,
) -> ImperfectSearchOutcome:
    """Cyclically page the strategy until every device answers."""
    if len(locations) != instance.num_devices:
        raise InvalidInstanceError(
            f"expected {instance.num_devices} locations, got {len(locations)}"
        )
    missing: Dict[int, int] = dict(enumerate(locations))
    paged = 0
    rounds = 0
    for sweep in range(1, max_sweeps + 1):
        for group in strategy.groups:
            rounds += 1
            paged += len(group)
            # Congestion is per cell: count missing devices in each paged cell.
            congestion: Dict[int, int] = {}
            for cell in missing.values():
                if cell in group:
                    congestion[cell] = congestion.get(cell, 0) + 1
            for device, cell in list(missing.items()):
                if cell not in group:
                    continue
                q = model.detection_probability(congestion[cell])
                if rng.random() < q:
                    del missing[device]
            if not missing:
                return ImperfectSearchOutcome(
                    cells_paged=paged, sweeps_used=sweep, rounds_used=rounds
                )
    raise SimulationError(
        f"search did not terminate within {max_sweeps} sweeps "
        "(detection probability too small?)"
    )


def expected_paging_imperfect_monte_carlo(
    instance: PagingInstance,
    strategy: Strategy,
    model: DetectionModel,
    *,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo expected paging of the cyclic strategy.

    The per-trial location draws are batched through
    :func:`repro.core.batch.sample_locations_batch`; the detection coin
    flips stay inside the per-trial sweep simulation.
    """
    from .batch import sample_locations_batch

    if trials <= 0:
        raise ValueError("trials must be positive")
    locations = sample_locations_batch(instance, trials, rng)
    total = 0
    for k in range(trials):
        total += simulate_imperfect_search(
            instance,
            strategy,
            tuple(int(cell) for cell in locations[:, k]),
            model,
            rng,
        ).cells_paged
    return total / trials


def expected_paging_imperfect_single(
    instance: PagingInstance, strategy: Strategy, q: float
) -> float:
    """Closed-form EP for one device under constant detection ``q``.

    Each sweep independently detects the device with probability ``q`` when
    its cell is paged, so the number of *failed* full sweeps is geometric
    with mean ``(1 - q)/q``, each costing ``c``; the successful sweep costs
    the prefix through the device's round.
    """
    if instance.num_devices != 1:
        raise InvalidInstanceError("the closed form applies to m = 1")
    if not 0 < q <= 1:
        raise InvalidInstanceError("detection probability must lie in (0, 1]")
    c = instance.num_cells
    prefix_cost = {}
    cumulative = 0
    for group in strategy.groups:
        cumulative += len(group)
        for cell in group:
            prefix_cost[cell] = cumulative
    success_sweep = sum(
        float(p) * prefix_cost[cell] for cell, p in enumerate(instance.row(0))
    )
    return c * (1.0 - q) / q + success_sweep


def imperfect_ordering_invariance(
    instance: PagingInstance, strategy_a: Strategy, strategy_b: Strategy, q: float
) -> Tuple[float, float, bool]:
    """Check the closed form's corollary: EP ordering is q-independent.

    Returns the two EPs at detection ``q`` and whether their order matches
    the perfect-detection (``q = 1``) order — always true for ``m = 1``
    because the ``q`` term is an additive constant.
    """
    ep_a = expected_paging_imperfect_single(instance, strategy_a, q)
    ep_b = expected_paging_imperfect_single(instance, strategy_b, q)
    perfect_a = expected_paging_imperfect_single(instance, strategy_a, 1.0)
    perfect_b = expected_paging_imperfect_single(instance, strategy_b, 1.0)
    return ep_a, ep_b, (ep_a <= ep_b) == (perfect_a <= perfect_b)
