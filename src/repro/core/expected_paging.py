"""Expected-paging evaluation (Lemma 2.1 of the paper).

For a strategy ``S_1, ..., S_t`` the expected number of cells paged until all
devices are found is::

    EP = c - sum_{r=1}^{t-1} |S_{r+1}| * prod_{i=1}^{m} P_i(L_r)

where ``L_r = S_1 ∪ ... ∪ S_r`` and ``P_i(L)`` is the probability that device
``i`` lies in ``L``.  This module provides exact (Fraction), float, and
Monte-Carlo evaluators plus the stopping-round distribution.  The generic
entry point :func:`expected_paging_from_stop_probabilities` is shared by the
Yellow Pages and Signature variants (Section 5), whose stopping events differ
but whose cost telescopes identically.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..errors import InvalidStrategyError
from .instance import Number, PagingInstance
from .strategy import Strategy

StopProbability = Callable[[FrozenSet[int]], Number]

#: How many device locations an error message spells out before truncating.
#: Million-device instances must not interpolate a million-entry tuple into
#: an exception string.
_MAX_LOCATIONS_IN_MESSAGE = 16


def _describe_locations(locations: Sequence[int]) -> str:
    """A bounded rendering of a (possibly huge) locations tuple."""
    values = tuple(locations)
    if len(values) <= _MAX_LOCATIONS_IN_MESSAGE:
        return repr(values)
    head = ", ".join(str(v) for v in values[:_MAX_LOCATIONS_IN_MESSAGE])
    return f"({head}, ... {len(values)} total)"


def _check_compatible(instance: PagingInstance, strategy: Strategy) -> None:
    if strategy.num_cells != instance.num_cells:
        raise InvalidStrategyError(
            f"strategy covers {strategy.num_cells} cells, instance has "
            f"{instance.num_cells}"
        )


def all_found_probability(
    instance: PagingInstance, cells: FrozenSet[int]
) -> Number:
    """``prod_i P_i(cells)``: the chance every device lies within ``cells``.

    Exact instances keep the Fraction generator sum (the reference oracle);
    float instances sum the cached per-device row arrays
    (:meth:`~repro.core.instance.PagingInstance.float_rows`) instead of
    re-walking the row tuples one probability at a time.
    """
    if instance.is_exact:
        one: Number = Fraction(1)
        product = one
        for row in instance.rows:
            product = product * sum((row[j] for j in cells), start=0 * one)
        return product
    rows = instance.float_rows()
    indices = np.fromiter(sorted(cells), dtype=np.intp, count=len(cells))
    sums = rows[:, indices].sum(axis=1)
    result = 1.0
    for value in sums:
        result = result * value
    return float(result)


def stop_probabilities(
    instance: PagingInstance, strategy: Strategy
) -> Tuple[Number, ...]:
    """``Pr[F_r]`` for ``r = 1..t``: all devices found by end of round ``r``."""
    _check_compatible(instance, strategy)
    return tuple(
        all_found_probability(instance, prefix) for prefix in strategy.prefixes()
    )


def expected_paging_from_stop_probabilities(
    strategy: Strategy, stops: Sequence[Number]
) -> Number:
    """Telescoped expected paging given per-round stopping probabilities.

    ``stops[r-1]`` must be the probability that the search stops on or before
    round ``r``; ``stops[-1]`` must equal 1 (the search always terminates by
    the last round).  This is the telescoping identity in the proof of
    Lemma 2.1 and holds for any prefix-monotone stopping rule.
    """
    sizes = strategy.group_sizes()
    total = sum(sizes)
    cost: Number = total
    for r in range(len(sizes) - 1):
        cost = cost - sizes[r + 1] * stops[r]
    return cost


def expected_paging(instance: PagingInstance, strategy: Strategy) -> Number:
    """Expected cells paged until all devices are found (Lemma 2.1).

    Returns a :class:`~fractions.Fraction` when the instance is exact and a
    float otherwise.
    """
    stops = stop_probabilities(instance, strategy)
    return expected_paging_from_stop_probabilities(strategy, stops)


def prefix_stops_float(instance: PagingInstance, strategy: Strategy) -> np.ndarray:
    """``Pr[F_r]`` for ``r = 1..t`` in float64, via one cumulative sum.

    Gathers the cached row arrays in the strategy's cell order, cumulative-sums
    along the cell axis, reads each prefix boundary, and multiplies over the
    device axis sequentially.  :func:`repro.core.batch.expected_paging_batch`
    runs this exact computation on a stack of strategies, which is what makes
    the batch kernel float-identical to :func:`expected_paging_float`.
    """
    _check_compatible(instance, strategy)
    rows = instance.float_rows()
    order = np.fromiter(
        strategy.cells_in_order(), dtype=np.intp, count=instance.num_cells
    )
    cumulative = np.cumsum(rows[:, order], axis=1)
    boundaries = np.cumsum(strategy.group_sizes()) - 1
    per_device = cumulative[:, boundaries]
    stops = per_device[0].copy()
    for i in range(1, per_device.shape[0]):
        stops = stops * per_device[i]
    return stops


def expected_paging_float(instance: PagingInstance, strategy: Strategy) -> float:
    """Float-valued expected paging regardless of the instance's arithmetic.

    Exact instances evaluate the Fraction closed form and round once at the
    end.  Float instances use the vectorized prefix-stop path
    (:func:`prefix_stops_float`), which the batch kernels reproduce
    bit-for-bit.
    """
    if instance.is_exact:
        return float(expected_paging(instance, strategy))
    stops = prefix_stops_float(instance, strategy)
    sizes = strategy.group_sizes()
    cost = float(sum(sizes))
    for r in range(len(sizes) - 1):
        cost = cost - sizes[r + 1] * stops[r]
    return float(cost)


def stopping_round_distribution(
    instance: PagingInstance, strategy: Strategy
) -> Tuple[Number, ...]:
    """``Pr[search lasts exactly r rounds]`` for ``r = 1..t``.

    From the proof of Lemma 2.1: ``Pr[exactly r] = Pr[F_r] - Pr[F_{r-1}]``.
    """
    stops = stop_probabilities(instance, strategy)
    zero: Number = Fraction(0) if instance.is_exact else 0.0
    previous = zero
    out: List[Number] = []
    for value in stops:
        out.append(value - previous)
        previous = value
    return tuple(out)


def expected_paging_by_definition(
    instance: PagingInstance, strategy: Strategy
) -> Number:
    """Expected paging computed straight from the definition (no telescoping).

    ``EP = sum_r (|S_1| + ... + |S_r|) * Pr[search lasts exactly r rounds]``.
    Slower than :func:`expected_paging`; used to cross-check Lemma 2.1.
    """
    sizes = strategy.group_sizes()
    exact = stopping_round_distribution(instance, strategy)
    paged = 0
    total: Number = Fraction(0) if instance.is_exact else 0.0
    for r, probability in enumerate(exact):
        paged += sizes[r]
        total = total + paged * probability
    return total


def expected_rounds(instance: PagingInstance, strategy: Strategy) -> Number:
    """Expected number of rounds until the search stops."""
    exact = stopping_round_distribution(instance, strategy)
    total: Number = Fraction(0) if instance.is_exact else 0.0
    for r, probability in enumerate(exact, start=1):
        total = total + r * probability
    return total


def simulate_paging(
    instance: PagingInstance,
    strategy: Strategy,
    locations: Sequence[int],
) -> Tuple[int, int]:
    """Run one search against fixed device locations.

    Returns ``(cells_paged, rounds_used)``.  The search pages groups in order
    and stops as soon as the paged prefix contains every device.
    """
    _check_compatible(instance, strategy)
    if len(locations) != instance.num_devices:
        raise InvalidStrategyError(
            f"expected {instance.num_devices} device locations, got {len(locations)}"
        )
    remaining = set(locations)
    paged = 0
    for round_index, group in enumerate(strategy.groups, start=1):
        paged += len(group)
        remaining -= group
        if not remaining:
            return paged, round_index
    raise InvalidStrategyError(
        f"locations {_describe_locations(locations)} not covered by the strategy"
    )


def expected_paging_monte_carlo(
    instance: PagingInstance,
    strategy: Strategy,
    *,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of expected paging; cross-checks the closed form."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    total = 0
    for _ in range(trials):
        locations = instance.sample_locations(rng)
        paged, _rounds = simulate_paging(instance, strategy, locations)
        total += paged
    return total / trials
