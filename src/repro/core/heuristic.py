"""The paper's e/(e-1)-approximation heuristic (Section 4.2, Theorem 4.8).

Sequence the cells in non-increasing order of the expected number of devices
per cell (``sum_i p[i][j]``), then find the optimal cut points for that
sequence with the Lemma 4.7 dynamic program.  The resulting strategy pages at
most ``e/(e-1) ~ 1.582`` times the cells of an optimal strategy, and the
factor cannot be below ``320/317`` (Section 4.3).
"""

from __future__ import annotations

import math
from typing import Optional

from ..obs.instrument import span
from .dp import OrderedDPResult, optimize_over_order
from .instance import PagingInstance
from .ordering import by_expected_devices

#: The proven approximation guarantee of :func:`conference_call_heuristic`.
APPROXIMATION_FACTOR = math.e / (math.e - 1.0)

#: The paper's lower bound on the heuristic's performance ratio (Section 4.3).
LOWER_BOUND_RATIO = 320.0 / 317.0


def conference_call_heuristic(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
    max_group_size: Optional[int] = None,
) -> OrderedDPResult:
    """The Fig. 1 algorithm: greedy ordering + optimal cuts.

    Runs in ``O(c(m + dc))`` time and ``O(m + dc)`` space (Theorem 4.8).  With
    ``max_group_size`` set it solves the bandwidth-limited extension of
    Section 5, for which the same approximation argument applies.

    replint: solver
    """
    with span(
        "core.heuristic",
        cells=instance.num_cells,
        devices=instance.num_devices,
        rounds=instance.max_rounds if max_rounds is None else max_rounds,
    ):
        order = by_expected_devices(instance)
        return optimize_over_order(
            instance,
            order,
            max_rounds=max_rounds,
            max_group_size=max_group_size,
        )


def guarantee_bound(optimal_value: float) -> float:
    """The largest expected paging the heuristic may incur (Theorem 4.8)."""
    return APPROXIMATION_FACTOR * optimal_value


def profile_heuristic(instance: PagingInstance) -> OrderedDPResult:
    """Closed-form cuts from the Lemma 3.4 ``b``-profile (no DP).

    Orders cells by weight, then cuts at positions ``round(b_r)`` where
    ``b_1 < ... < b_d = c`` is the alpha-recursion chain — the group-size
    profile that is exactly optimal for the hardness gadget's worst case.
    ``O(c log c)`` total: an ablation of the DP component (benchmark A3).
    Falls back to balanced groups when ``m = 1`` or ``d = 1`` is degenerate
    for the recursion.

    replint: solver
    """
    from .bounds import b_sequence
    from .expected_paging import expected_paging
    from .strategy import Strategy

    c = instance.num_cells
    d = min(instance.max_rounds, c)
    m = instance.num_devices
    order = by_expected_devices(instance)
    if d == 1:
        cuts = [0, c]
    elif m >= 2:
        chain = b_sequence(m, d, float(c))
        cuts = [0]
        for value in chain[1:]:
            position = int(round(value))
            position = max(cuts[-1] + 1, min(position, c - (d - len(cuts))))
            cuts.append(position)
        cuts[-1] = c
    else:
        # m = 1: the recursion needs m >= 2; use equal groups.
        base = c // d
        extra = c % d
        cuts = [0]
        for r in range(d):
            cuts.append(cuts[-1] + base + (1 if r < extra else 0))
    sizes = tuple(cuts[r + 1] - cuts[r] for r in range(d))
    strategy = Strategy.from_order_and_sizes(order, sizes)
    return OrderedDPResult(
        strategy=strategy,
        expected_paging=expected_paging(instance, strategy),
        order=order,
        group_sizes=sizes,
    )
