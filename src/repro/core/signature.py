"""The Signature problem: find any ``k`` of the ``m`` devices (Section 5).

The paper proposes this generalization — "finding k managers out of m
managers to sign a document" — with the Conference Call problem as ``k = m``
and Yellow Pages as ``k = 1``.  The search stops once at least ``k`` devices
have been found, so the prefix stopping probability is the Poisson-binomial
tail ``Pr[#devices in prefix >= k]`` with per-device success ``P_i(prefix)``.

Over a fixed cell order the optimal cut points are found exactly by the
generic pairwise-cut dynamic program (the stopping rule is prefix-monotone,
which is all the telescoped objective needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidInstanceError
from .dp import optimize_cuts
from .instance import Number, PagingInstance
from .ordering import by_expected_devices, validate_order
from .strategy import Strategy


@dataclass(frozen=True)
class SignatureResult:
    """A Signature-problem strategy with its expected paging."""

    strategy: Strategy
    expected_paging: Number
    order: Tuple[int, ...]
    quorum: int


def poisson_binomial_tail(successes: Sequence[Number], quorum: int) -> Number:
    """``Pr[at least `quorum` of the independent events occur]``.

    Standard Poisson-binomial DP over the count distribution; exact when the
    probabilities are Fractions.
    """
    if quorum <= 0:
        return 1 if not successes else 0 * successes[0] + 1
    exact = all(isinstance(p, (int, Fraction)) for p in successes)
    zero: Number = Fraction(0) if exact else 0.0
    one: Number = Fraction(1) if exact else 1.0
    counts: List[Number] = [one]  # distribution of the running success count
    for p in successes:
        nxt = [zero] * (len(counts) + 1)
        for count, probability in enumerate(counts):
            nxt[count] = nxt[count] + probability * (one - p)
            nxt[count + 1] = nxt[count + 1] + probability * p
        counts = nxt
    tail = zero
    for count in range(quorum, len(counts)):
        tail = tail + counts[count]
    return tail


def prefix_stop_probabilities(
    instance: PagingInstance, order: Sequence[int], quorum: int
) -> Tuple[Number, ...]:
    """``F[j] = Pr[>= quorum devices lie in the first j cells of order]``."""
    order = validate_order(order, instance.num_cells)
    if not 1 <= quorum <= instance.num_devices:
        raise InvalidInstanceError(
            f"quorum must satisfy 1 <= k <= m={instance.num_devices}, got {quorum}"
        )
    exact = instance.is_exact
    zero: Number = Fraction(0) if exact else 0.0
    sums = [zero] * instance.num_devices
    out = [poisson_binomial_tail(sums, quorum)]
    for cell in order:
        for i, row in enumerate(instance.rows):
            sums[i] = sums[i] + row[cell]
        out.append(poisson_binomial_tail(sums, quorum))
    return tuple(out)


def expected_paging_signature(
    instance: PagingInstance, strategy: Strategy, quorum: int
) -> Number:
    """Expected cells paged until at least ``quorum`` devices are found."""
    from .expected_paging import expected_paging_from_stop_probabilities

    order = strategy.cells_in_order()
    finds = prefix_stop_probabilities(instance, order, quorum)
    stops = []
    position = 0
    for size in strategy.group_sizes():
        position += size
        stops.append(finds[position])
    return expected_paging_from_stop_probabilities(strategy, stops)


def optimize_signature_over_order(
    instance: PagingInstance,
    order: Sequence[int],
    quorum: int,
    *,
    max_rounds: Optional[int] = None,
    max_group_size: Optional[int] = None,
) -> SignatureResult:
    """Optimal cuts of ``order`` for the quorum-``k`` stopping rule.

    replint: solver
    """
    order = validate_order(order, instance.num_cells)
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    finds = prefix_stop_probabilities(instance, order, quorum)
    sizes, value = optimize_cuts(finds, d, max_group_size=max_group_size)
    strategy = Strategy.from_order_and_sizes(order, sizes)
    return SignatureResult(
        strategy=strategy, expected_paging=value, order=order, quorum=quorum
    )


def signature_heuristic(
    instance: PagingInstance,
    quorum: int,
    *,
    max_rounds: Optional[int] = None,
) -> SignatureResult:
    """Weight-ordered heuristic for the Signature problem.

    Uses the Conference Call ordering (expected devices per cell).  For
    ``quorum = m`` this coincides with the paper's e/(e-1) heuristic; for
    smaller quorums it is a natural but unanalyzed heuristic whose behavior
    benchmark E11 sweeps.

    replint: solver
    """
    return optimize_signature_over_order(
        instance, by_expected_devices(instance), quorum, max_rounds=max_rounds
    )
