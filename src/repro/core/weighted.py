"""Heterogeneous paging costs (the Search Theory cost model, §5.1).

The paper's related-work section points at Search Theory [Stone 1975], where
each lookup carries its own cost.  In cellular terms: paging a macro cell
with many sectors, or a congested cell, costs more than paging a femto cell.
The model generalizes cleanly — replace *cells paged* with *cost paid*:

    EP_w = W([c]) - sum_{r=1}^{t-1} W(S_{r+1}) * F(L_r),    W(S) = sum_{j in S} w_j

which telescopes exactly like Lemma 2.1.  Over a fixed cell order, the cut
objective couples only consecutive cut points (with weighted gaps), so the
same quadratic DP applies; and the exact subset DP carries over with
``W(ext)`` in place of ``|ext|``.

The natural ordering heuristic becomes *density*: sort cells by
``sum_i p[i][j] / w_j`` — probability mass per unit of paging cost —
degenerating to the paper's weight order at uniform costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..errors import InfeasibleError, SolverLimitError
from .expected_paging import stop_probabilities
from .instance import Number, PagingInstance
from .strategy import Strategy

#: Same tractability cap as the other subset DPs.
MAX_EXACT_CELLS = 18


def _validate_costs(costs: Sequence[Number], num_cells: int) -> Tuple[Number, ...]:
    costs = tuple(costs)
    if len(costs) != num_cells:
        raise InfeasibleError(
            f"need one cost per cell ({num_cells}), got {len(costs)}"
        )
    if any(float(cost) <= 0 for cost in costs):
        raise InfeasibleError("paging costs must be strictly positive")
    return costs


@dataclass(frozen=True)
class WeightedResult:
    """A strategy with its expected paging cost."""

    strategy: Strategy
    expected_cost: Number
    order: Tuple[int, ...]


def weighted_expected_paging(
    instance: PagingInstance, strategy: Strategy, costs: Sequence[Number]
) -> Number:
    """Expected total paging cost (weighted Lemma 2.1)."""
    costs = _validate_costs(costs, instance.num_cells)
    stops = stop_probabilities(instance, strategy)
    total = sum(costs)
    value: Number = total
    groups = strategy.groups
    for r in range(len(groups) - 1):
        group_cost = sum(costs[j] for j in groups[r + 1])
        value = value - group_cost * stops[r]
    return value


def by_density(
    instance: PagingInstance, costs: Sequence[Number]
) -> Tuple[int, ...]:
    """Cells by non-increasing ``sum_i p[i][j] / w_j`` (mass per cost)."""
    costs = _validate_costs(costs, instance.num_cells)
    weights = instance.cell_weights()
    return tuple(
        sorted(
            range(instance.num_cells),
            key=lambda j: (-float(weights[j]) / float(costs[j]), j),
        )
    )


def optimize_cuts_weighted(
    prefix_stops: Sequence[Number],
    prefix_costs: Sequence[Number],
    num_rounds: int,
) -> Tuple[Tuple[int, ...], Number]:
    """Optimal cut points for weighted costs over a fixed order.

    ``prefix_costs[j]`` is the cost of the first ``j`` cells of the order;
    maximizes ``sum_r (prefix_costs[j_{r+1}] - prefix_costs[j_r]) F[j_r]``.
    Returns ``(group_sizes, expected_cost)``.
    """
    finds = tuple(prefix_stops)
    wsum = tuple(prefix_costs)
    c = len(finds) - 1
    if len(wsum) != c + 1:
        raise InfeasibleError("prefix_costs must align with prefix_stops")
    d = int(num_rounds)
    if not 1 <= d <= c:
        raise InfeasibleError(f"number of rounds must satisfy 1 <= d <= {c}")
    minus_infinity = float("-inf")
    zero = 0 * finds[c]

    best: List = [zero] * (c + 1)
    best[0] = minus_infinity
    parents = []
    for _level in range(2, d + 1):
        new_best: List = [minus_infinity] * (c + 1)
        parent = [0] * (c + 1)
        for j in range(1, c + 1):
            for prev in range(1, j):
                tail = best[prev]
                if tail == minus_infinity:
                    continue
                value = tail + (wsum[j] - wsum[prev]) * finds[prev]
                if value > new_best[j]:
                    new_best[j] = value
                    parent[j] = prev
        best = new_best
        parents.append(parent)

    if best[c] == minus_infinity:
        raise InfeasibleError("no feasible cut sequence")
    cuts = [c]
    for parent in reversed(parents):
        cuts.append(parent[cuts[-1]])
    cuts.append(0)
    cuts.reverse()
    sizes = tuple(cuts[r + 1] - cuts[r] for r in range(d))
    return sizes, wsum[c] - best[c]


def weighted_heuristic(
    instance: PagingInstance,
    costs: Sequence[Number],
    *,
    max_rounds: Optional[int] = None,
) -> WeightedResult:
    """Density ordering + weighted cut DP (the Fig. 1 analogue).

    replint: solver
    """
    costs = _validate_costs(costs, instance.num_cells)
    order = by_density(instance, costs)
    return _cut_order_weighted(instance, order, costs, max_rounds)


def weighted_weight_order(
    instance: PagingInstance,
    costs: Sequence[Number],
    *,
    max_rounds: Optional[int] = None,
) -> WeightedResult:
    """The paper's pure weight ordering under heterogeneous costs.

    Orders cells by expected devices (ignoring the costs) and then cuts
    with the weighted DP — the ablation benchmark E25 compares against the
    density ordering to show why mass-per-cost matters.

    replint: solver
    """
    from .ordering import by_expected_devices

    costs = _validate_costs(costs, instance.num_cells)
    order = by_expected_devices(instance)
    return _cut_order_weighted(instance, order, costs, max_rounds)


def _cut_order_weighted(
    instance: PagingInstance,
    order: Sequence[int],
    costs: Tuple[Number, ...],
    max_rounds: Optional[int],
) -> WeightedResult:
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    finds = instance.prefix_find_probabilities(order)
    prefix_costs: List[Number] = [0 * costs[0]]
    for cell in order:
        prefix_costs.append(prefix_costs[-1] + costs[cell])
    sizes, value = optimize_cuts_weighted(finds, prefix_costs, d)
    strategy = Strategy.from_order_and_sizes(order, sizes)
    return WeightedResult(strategy=strategy, expected_cost=value, order=order)


def optimal_weighted_strategy(
    instance: PagingInstance,
    costs: Sequence[Number],
    *,
    max_rounds: Optional[int] = None,
) -> WeightedResult:
    """Exact minimum expected cost by the weighted subset DP (small c).

    replint: solver
    """
    c = instance.num_cells
    if c > MAX_EXACT_CELLS:
        raise SolverLimitError(f"exact solver limited to {MAX_EXACT_CELLS} cells")
    costs = _validate_costs(costs, c)
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    d = min(d, c)
    exact = instance.is_exact and all(
        isinstance(cost, (int, Fraction)) for cost in costs
    )
    one: Number = Fraction(1) if exact else 1.0

    full = (1 << c) - 1
    popcount = [bin(mask).count("1") for mask in range(full + 1)]
    # F(mask) and W(mask) tables.
    zero: Number = 0 * one
    device_sums: List[List[Number]] = []
    for row in instance.rows:
        sums = [zero] * (full + 1)
        for mask in range(1, full + 1):
            low = mask & (-mask)
            sums[mask] = sums[mask ^ low] + row[low.bit_length() - 1]
        device_sums.append(sums)
    finds = [one] * (full + 1)
    mask_cost = [zero] * (full + 1)
    for mask in range(full + 1):
        value = one
        for sums in device_sums:
            value = value * sums[mask]
        finds[mask] = value
        if mask:
            low = mask & (-mask)
            mask_cost[mask] = mask_cost[mask ^ low] + costs[low.bit_length() - 1]

    minus_infinity = float("-inf")
    bonus: List = [minus_infinity] * (full + 1)
    bonus[full] = zero
    choice: List[List[int]] = []
    for t in range(1, d + 1):
        new_bonus: List = [minus_infinity] * (full + 1)
        new_choice = [0] * (full + 1)
        for mask in range(full + 1):
            complement = full ^ mask
            if popcount[complement] < t:
                continue
            find_here = finds[mask]
            best = minus_infinity
            best_ext = 0
            sub = complement
            while sub:
                tail = bonus[mask | sub]
                if tail != minus_infinity:
                    value = mask_cost[sub] * find_here + tail
                    if value > best:
                        best = value
                        best_ext = sub
                sub = (sub - 1) & complement
            if best != minus_infinity:
                new_bonus[mask] = best
                new_choice[mask] = best_ext
        bonus = new_bonus
        choice.append(new_choice)

    groups = []
    mask = 0
    for t in range(d, 0, -1):
        ext = choice[t - 1][mask]
        groups.append([j for j in range(c) if ext >> j & 1])
        mask |= ext
    strategy = Strategy(groups)
    return WeightedResult(
        strategy=strategy,
        expected_cost=weighted_expected_paging(instance, strategy, costs),
        order=tuple(range(c)),
    )
