"""JSON (de)serialization for instances and strategies.

Persists the §1.2 model objects — the `m x c` probability matrix and the
ordered partition a strategy is — without losing exactness.

Lets plans cross process boundaries: the CLI reads instances from JSON, and
operators can persist the strategies the optimizer produced.  Exact
instances serialize probabilities as ``"numerator/denominator"`` strings so
a round trip loses nothing; float instances serialize as numbers.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Union

from ..errors import InvalidInstanceError, InvalidStrategyError
from .instance import PagingInstance
from .strategy import Strategy

#: Format version embedded in every document.
FORMAT_VERSION = 1


def _encode_probability(value) -> Union[str, float]:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, int):
        return f"{value}/1"
    return float(value)


def _decode_probability(value) -> Union[Fraction, float]:
    if isinstance(value, str):
        # str(value) is the identity here; spelled out so the exactness
        # dataflow (RPL008) sees the sanctioned string→Fraction sanitizer.
        return Fraction(str(value))
    return float(value)


def instance_to_dict(instance: PagingInstance) -> Dict[str, Any]:
    """A JSON-ready representation of a :class:`PagingInstance`."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "paging-instance",
        "num_devices": instance.num_devices,
        "num_cells": instance.num_cells,
        "max_rounds": instance.max_rounds,
        "exact": instance.is_exact,
        "probabilities": [
            [_encode_probability(p) for p in row] for row in instance.rows
        ],
    }


def instance_from_dict(payload: Dict[str, Any]) -> PagingInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    if payload.get("kind") != "paging-instance":
        raise InvalidInstanceError(
            f"expected a paging-instance document, got kind={payload.get('kind')!r}"
        )
    rows = [
        [_decode_probability(p) for p in row] for row in payload["probabilities"]
    ]
    return PagingInstance(
        rows, payload["max_rounds"], allow_zero=True
    )


def strategy_to_dict(strategy: Strategy) -> Dict[str, Any]:
    """A JSON-ready representation of a :class:`Strategy`."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "paging-strategy",
        "num_cells": strategy.num_cells,
        "groups": [sorted(group) for group in strategy.groups],
    }


def strategy_from_dict(payload: Dict[str, Any]) -> Strategy:
    """Rebuild a strategy from :func:`strategy_to_dict` output."""
    if payload.get("kind") != "paging-strategy":
        raise InvalidStrategyError(
            f"expected a paging-strategy document, got kind={payload.get('kind')!r}"
        )
    return Strategy(payload["groups"])


def dumps(obj: Union[PagingInstance, Strategy], *, indent: int = 2) -> str:
    """Serialize an instance or strategy to a JSON string."""
    if isinstance(obj, PagingInstance):
        return json.dumps(instance_to_dict(obj), indent=indent)
    if isinstance(obj, Strategy):
        return json.dumps(strategy_to_dict(obj), indent=indent)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text: str) -> Union[PagingInstance, Strategy]:
    """Deserialize a JSON string produced by :func:`dumps`."""
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind == "paging-instance":
        return instance_from_dict(payload)
    if kind == "paging-strategy":
        return strategy_from_dict(payload)
    raise InvalidInstanceError(f"unknown document kind {kind!r}")


def save(obj: Union[PagingInstance, Strategy], path: str) -> None:
    """Write an instance or strategy to a JSON file."""
    with open(path, "w") as handle:
        handle.write(dumps(obj) + "\n")


def load(path: str) -> Union[PagingInstance, Strategy]:
    """Read an instance or strategy from a JSON file."""
    with open(path) as handle:
        return loads(handle.read())
