"""Optimal paging for a single device (the classical ``m = 1`` problem).

The paper builds on the result [Goodman–Krishnan–Sugla 1996; Madhavapeddy et
al. 1996; Rose–Yates 1995] that for one device the problem is solvable
optimally in polynomial time: sort cells by non-increasing probability and
optimize the cut points by dynamic programming.  For ``m = 1`` the Section 4
heuristic coincides with this optimum (Lemma 4.6 notes ``EP_T / EP_S <= 1``).

This module exposes that special case directly, plus the closed form for the
uniform distribution used by the paper's Section 1.1 example (``EP = 3c/4``
for ``d = 2``).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from ..errors import InvalidInstanceError
from .dp import OrderedDPResult, optimize_over_order
from .instance import Number, PagingInstance
from .ordering import by_device_probability


def optimal_single_user(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
    max_group_size: Optional[int] = None,
) -> OrderedDPResult:
    """The optimal strategy for ``m = 1`` (probability-sorted DP).

    replint: solver
    """
    if instance.num_devices != 1:
        raise InvalidInstanceError(
            f"optimal_single_user requires m = 1, got m = {instance.num_devices}"
        )
    order = by_device_probability(instance, 0)
    return optimize_over_order(
        instance,
        order,
        max_rounds=max_rounds,
        max_group_size=max_group_size,
    )


def uniform_expected_paging(num_cells: int, max_rounds: int) -> Fraction:
    """Closed-form optimal EP for one uniformly distributed device.

    With equal group sizes ``c/d`` (assuming ``d | c``), round ``r`` is reached
    with probability ``1 - (r-1)/d``, so::

        EP = c/d * sum_{r=1}^{d} (1 - (r-1)/d) = c (d + 1) / (2 d)

    For ``d = 2`` this is the paper's ``3c/4`` example (Section 1.1).
    """
    c, d = num_cells, max_rounds
    if d < 1 or d > c:
        raise InvalidInstanceError(f"need 1 <= d <= c, got d={d}, c={c}")
    if c % d != 0:
        raise InvalidInstanceError(
            f"closed form assumes d divides c, got c={c}, d={d}"
        )
    return Fraction(c * (d + 1), 2 * d)


def expected_paging_for_sizes(
    probabilities: Sequence[Number], sizes: Sequence[int]
) -> Number:
    """EP of paging a sorted single-device distribution with given group sizes.

    ``probabilities`` must already be in paging order.  A convenience used by
    tests and the delay-tradeoff experiment.
    """
    total_cells = len(probabilities)
    if sum(sizes) != total_cells:
        raise InvalidInstanceError("sizes must partition the cells")
    ep: Number = total_cells
    prefix: Number = 0
    position = 0
    for r in range(len(sizes) - 1):
        position += sizes[r]
        prefix = sum(probabilities[:position], start=0 * probabilities[0])
        ep = ep - sizes[r + 1] * prefix
    return ep
