"""Cell orderings used by the paging heuristics.

The paper's e/(e-1) heuristic (Section 4) fixes a *sequence* of cells and then
optimizes only the cut points between rounds.  The sequence it analyzes orders
cells by non-increasing expected number of devices ``sum_i p[i][j]``.  Other
orderings are provided for baselines, the Yellow Pages variant, and the m = 1
classical problem.

All orderings break ties by cell index so results are deterministic — the
paper's own Section 4.3 lower-bound instance relies on this tie-break (and
notes an epsilon-perturbation argument that removes the reliance, which
:mod:`repro.core.lower_bound` also reproduces).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .instance import PagingInstance


def by_expected_devices(instance: PagingInstance) -> Tuple[int, ...]:
    """Cells by non-increasing ``sum_i p[i][j]`` — the paper's heuristic order."""
    weights = instance.cell_weights()
    return tuple(sorted(range(instance.num_cells), key=lambda j: (-weights[j], j)))


def by_device_probability(instance: PagingInstance, device: int) -> Tuple[int, ...]:
    """Cells by non-increasing probability of one device (optimal for m = 1)."""
    row = instance.row(device)
    return tuple(sorted(range(instance.num_cells), key=lambda j: (-row[j], j)))


def by_max_probability(instance: PagingInstance) -> Tuple[int, ...]:
    """Cells by non-increasing ``max_i p[i][j]`` — a Yellow Pages ordering."""
    rows = instance.rows
    return tuple(
        sorted(
            range(instance.num_cells),
            key=lambda j: (-max(float(row[j]) for row in rows), j),
        )
    )


def by_miss_probability(instance: PagingInstance) -> Tuple[int, ...]:
    """Cells by non-decreasing ``prod_i (1 - p[i][j])``.

    Greedy for the Yellow Pages stopping rule: pages first the cells with the
    highest chance of containing *at least one* device.
    """
    rows = instance.rows
    return tuple(
        sorted(
            range(instance.num_cells),
            key=lambda j: (np.prod([1.0 - float(row[j]) for row in rows]), j),
        )
    )


def identity(instance: PagingInstance) -> Tuple[int, ...]:
    """Cells in index order (a deliberately uninformed baseline)."""
    return tuple(range(instance.num_cells))


def random_order(instance: PagingInstance, rng: np.random.Generator) -> Tuple[int, ...]:
    """A uniformly random permutation of the cells (baseline)."""
    return tuple(int(j) for j in rng.permutation(instance.num_cells))


def validate_order(order: Sequence[int], num_cells: int) -> Tuple[int, ...]:
    """Check that ``order`` is a permutation of ``0..num_cells-1``."""
    order = tuple(int(j) for j in order)
    if sorted(order) != list(range(num_cells)):
        raise ValueError(
            f"order must be a permutation of 0..{num_cells - 1}, got {order}"
        )
    return order
