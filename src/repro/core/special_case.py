"""The 4/3-approximation for ``m = 2, d = 2`` (Section 4.1 of the paper).

For two devices and two rounds a strategy is a single cut: page a set ``T_1``
in the first round and the rest in the second.  The paper shows that cutting
the weight-sorted sequence at the best position achieves expected paging at
most 4/3 of optimal, computable in ``O(c)`` time and ``O(1)`` extra space
after sorting (the scan keeps only running prefix sums).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple

from ..errors import InvalidInstanceError
from .instance import Number, PagingInstance
from .ordering import by_expected_devices
from .strategy import Strategy

#: The proven guarantee for :func:`two_device_two_round_heuristic`.
FOUR_THIRDS = 4.0 / 3.0


@dataclass(frozen=True)
class TwoRoundSplit:
    """Outcome of the Section 4.1 scan."""

    strategy: Strategy
    expected_paging: Number
    first_round_size: int
    order: Tuple[int, ...]


def two_device_two_round_heuristic(instance: PagingInstance) -> TwoRoundSplit:
    """Best prefix cut of the weight-sorted order for ``m = 2, d = 2``.

    Evaluates ``EP(s) = c - (c - s) * P_1(prefix_s) * P_2(prefix_s)`` for every
    split size ``s = 1..c-1`` with running prefix sums, and returns the argmin
    (ties to the smaller ``s``).  Guaranteed within 4/3 of optimal
    (Lemma 4.3); the bound is tight up to the paper's 320/317 example.

    replint: solver
    """
    if instance.num_devices != 2:
        raise InvalidInstanceError(
            f"this special case requires m = 2, got m = {instance.num_devices}"
        )
    if instance.max_rounds != 2:
        raise InvalidInstanceError(
            f"this special case requires d = 2, got d = {instance.max_rounds}"
        )
    c = instance.num_cells
    if c < 2:
        raise InvalidInstanceError("need at least two cells for a two-round split")
    order = by_expected_devices(instance)
    row_a, row_b = instance.rows
    zero: Number = Fraction(0) if instance.is_exact else 0.0

    prefix_a = zero
    prefix_b = zero
    best_value: Number = c  # paging everything in round one costs exactly c
    best_size = 0
    for s in range(1, c):
        cell = order[s - 1]
        prefix_a = prefix_a + row_a[cell]
        prefix_b = prefix_b + row_b[cell]
        value = c - (c - s) * prefix_a * prefix_b
        if value < best_value:
            best_value = value
            best_size = s
    if best_size == 0:
        # No cut beats blanket paging (possible only in degenerate instances);
        # fall back to the smallest cut, which the model requires to exist.
        best_size = 1
        cell = order[0]
        best_value = c - (c - 1) * row_a[cell] * row_b[cell]

    strategy = Strategy.from_order_and_sizes(order, (best_size, c - best_size))
    return TwoRoundSplit(
        strategy=strategy,
        expected_paging=best_value,
        first_round_size=best_size,
        order=order,
    )
