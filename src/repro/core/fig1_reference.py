"""A line-by-line transliteration of the paper's Fig. 1 pseudocode.

The paper's only figure is the pseudocode of the approximation algorithm
(lines 01-29).  This module reproduces it *verbatim* — same 1-indexed
arrays, same loop bounds, same update order — as a fidelity reference.  The
production implementation (:mod:`repro.core.dp` / :mod:`repro.core.heuristic`)
is tested to produce the same group sizes and value as this transliteration.

Paper pseudocode (Fig. 1)::

    01 approximation( in: c, m, d, p_{i,j} ; out: g_r, 1 <= r <= d )
    04 array X[1..d; 1..c], F[1..c], E[1..d; 1..c], S[1..m]
    07 for i = 1 to m:            S[i] = 0
    09 for j = 1 to c:
    10   for i = 1 to m:          S[i] = S[i] + p_{i,j}
    12   F[j] = 1
    13   for i = 1 to m:          F[j] = F[j] * S[i]
    15 for k = 1 to c:            E[1,k] = k ; X[1,k] = k
    18 for l = 2 to d:
    19   for k = l to c:
    20     E[l,k] = infinity
    21     for x = 1 to k - l + 1:
    22       v = x + (1 - F[c-k+x]) / (1 - F[c-k]) * E[l-1, k-x]
    23       if v < E[l,k]:  E[l,k] = v ; X[l,k] = x
    26 w = c
    27 for l = d downto 1:
    28   g_{d-l+1} = X[l,w] ; w = w - X[l,w]

Note the pseudocode assumes cells are already sorted by non-increasing
``sum_i p[i][j]`` (Section 4's sequencing step); :func:`fig1_approximation`
accepts the probabilities as given, matching the paper's calling convention,
and :func:`fig1_heuristic` adds the sort.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import InvalidInstanceError
from .instance import PagingInstance
from .ordering import by_expected_devices
from .strategy import Strategy


def fig1_approximation(
    c: int, m: int, d: int, p: Sequence[Sequence[float]]
) -> Tuple[int, ...]:
    """The Fig. 1 algorithm, verbatim: returns the group sizes ``g_1..g_d``.

    ``p[i][j]`` is 0-indexed here but consumed in the paper's j = 1..c order;
    the cells are assumed pre-sorted by non-increasing column sums.
    """
    if not 1 <= d <= c:
        raise InvalidInstanceError(f"need 1 <= d <= c, got d={d}, c={c}")
    if len(p) != m or any(len(row) != c for row in p):
        raise InvalidInstanceError("probability matrix must be m x c")

    infinity = float("inf")
    # 1-indexed arrays, as in the paper (index 0 unused).
    X = [[0] * (c + 1) for _ in range(d + 1)]
    F = [0.0] * (c + 1)
    E = [[infinity] * (c + 1) for _ in range(d + 1)]
    S = [0.0] * (m + 1)

    # lines 07-08
    for i in range(1, m + 1):
        S[i] = 0.0
    # lines 09-14
    for j in range(1, c + 1):
        for i in range(1, m + 1):
            S[i] = S[i] + float(p[i - 1][j - 1])
        F[j] = 1.0
        for i in range(1, m + 1):
            F[j] = F[j] * S[i]

    # lines 15-17
    for k in range(1, c + 1):
        E[1][k] = k
        X[1][k] = k
    # lines 18-25
    for l in range(2, d + 1):
        for k in range(l, c + 1):
            E[l][k] = infinity
            for x in range(1, k - l + 2):
                survivors = 1.0 - (F[c - k] if c - k >= 1 else 0.0)
                if survivors <= 0.0:
                    v = float(x)
                else:
                    v = x + (1.0 - F[c - k + x]) / survivors * E[l - 1][k - x]
                if v < E[l][k]:
                    E[l][k] = v
                    X[l][k] = x

    # lines 26-29
    g = [0] * (d + 1)
    w = c
    for l in range(d, 0, -1):
        g[d - l + 1] = X[l][w]
        w = w - X[l][w]
    return tuple(g[1:])


def fig1_heuristic(instance: PagingInstance) -> Tuple[Strategy, float]:
    """Section 4's full heuristic: sort by weight, then run Fig. 1.

    Returns the strategy and its expected paging (float), for comparison
    against :func:`repro.core.heuristic.conference_call_heuristic`.
    """
    order = by_expected_devices(instance)
    matrix: List[List[float]] = [
        [float(instance.probability(i, j)) for j in order]
        for i in range(instance.num_devices)
    ]
    sizes = fig1_approximation(
        instance.num_cells, instance.num_devices, instance.max_rounds, matrix
    )
    strategy = Strategy.from_order_and_sizes(order, sizes)
    from .expected_paging import expected_paging_float

    return strategy, expected_paging_float(instance, strategy)
