"""Batched Fig. 1 planning: thousands of instances through one kernel.

The scalar planners (:mod:`repro.core.heuristic`, :mod:`repro.core.fast`)
optimize one instance per call.  That is the wrong shape for the workloads
the related literature actually runs — Hajek-style joint paging/registration
iterations and residence-time sweeps re-plan from *families* of conditional
distributions, thousands of same-shape instances at a time.  This module
lifts the whole Fig. 1 pipeline (weight ordering, prefix stop
probabilities, Lemma 4.7 cut DP, backtrack) to a batch axis:

* :func:`plan_batch` — ``(batch, devices, cells)`` probability stack in,
  per-instance orders, group sizes, and expected-paging values out;
* :func:`prefix_stop_probabilities_batch` / :func:`optimize_cuts_batch` —
  the two pipeline stages, batched, for callers that bring their own
  orders or find probabilities;
* :class:`BatchPlanResult` — the result container, with a lazy
  :meth:`~BatchPlanResult.result` view that reconstructs the scalar
  :class:`~repro.core.dp.OrderedDPResult` for any row.

Two interchangeable backends execute the cut DP (see
:mod:`repro.core.backends`): the pure-numpy ``(batch, prev, j)`` broadcast
recurrence, and an optional C kernel compiled on demand.  Both are
bit-identical to the scalar :func:`repro.core.fast.optimize_cuts_fast` —
same IEEE operations in the same order, asserted float-for-float by the
property suite in ``tests/core/test_batch_plan.py``.

All instances in a batch share one shape ``(devices, cells)`` and one
``(num_rounds, max_group_size)`` budget; feasibility is therefore a
property of the shape (``d * b >= c``), and :func:`plan_batch` raises
:class:`~repro.errors.InfeasibleError` exactly when the scalar planner
would.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import InfeasibleError
from ..obs.instrument import observe, span
from .backends import load_compiled, resolve_backend
from .dp import OrderedDPResult
from .fast import _gap_tables
from .instance import PagingInstance
from .strategy import Strategy

#: Target size of the numpy DP's transient ``(chunk, c+1, c+1)`` candidate
#: tensor.  The broadcast recurrence is memory-bound, so the sweet spot is
#: a tensor that stays cache-resident: measured on the bench machine, a
#: fixed chunk of 64 is ~3x slower than this bound at c = 250 and the
#: bound is within noise of the best fixed chunk at c = 40 and c = 120.
_CHUNK_TARGET_BYTES = 3 << 19  # 1.5 MB

#: Chunk ceiling; beyond this the per-chunk numpy call overhead is already
#: negligible and bigger tensors only evict cache.
MAX_CHUNK = 256


def _auto_chunk(c: int) -> int:
    rows = _CHUNK_TARGET_BYTES // (8 * (c + 1) * (c + 1))
    return int(min(MAX_CHUNK, max(1, rows)))


@dataclass(frozen=True)
class BatchPlanResult:
    """Per-instance plans from one :func:`plan_batch` call.

    Row ``i`` of every array describes instance ``i`` of the input stack.
    ``feasible`` is all-True whenever the call returned (shape-infeasible
    batches raise instead); it is part of the schema so kernel-level
    callers can keep per-row flags.
    """

    #: ``(batch, cells)`` — each row a permutation (the weight ordering)
    orders: np.ndarray
    #: ``(batch, rounds)`` — group sizes along the order, zero-padded never
    group_sizes: np.ndarray
    #: ``(batch,)`` — expected cells paged (NaN on an infeasible row)
    values: np.ndarray
    #: ``(batch,)`` bool — False marks rows without a feasible cut sequence
    feasible: np.ndarray
    #: the backend that actually ran ("numpy" or "compiled")
    backend: str

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def strategy(self, index: int) -> Strategy:
        """The row's plan as a :class:`~repro.core.strategy.Strategy`."""
        if not self.feasible[index]:
            raise InfeasibleError(f"batch row {index} has no feasible plan")
        order = tuple(int(j) for j in self.orders[index])
        sizes = tuple(int(size) for size in self.group_sizes[index])
        return Strategy.from_order_and_sizes(order, sizes)

    def result(self, index: int) -> OrderedDPResult:
        """Row ``index`` repackaged as the scalar planner's result type."""
        strategy = self.strategy(index)
        return OrderedDPResult(
            strategy=strategy,
            expected_paging=float(self.values[index]),
            order=tuple(int(j) for j in self.orders[index]),
            group_sizes=tuple(int(size) for size in self.group_sizes[index]),
        )


def stack_instances(
    instances: Sequence[PagingInstance],
) -> np.ndarray:
    """Stack same-shape instances into one ``(batch, devices, cells)`` array."""
    if len(instances) == 0:
        raise ValueError("cannot stack an empty instance sequence")
    arrays = [instance.as_array() for instance in instances]
    shape = arrays[0].shape
    for index, array in enumerate(arrays):
        if array.shape != shape:
            raise ValueError(
                f"instance {index} has shape {array.shape}, expected {shape}; "
                "batched planning requires one shared (devices, cells) shape"
            )
    return np.ascontiguousarray(np.stack(arrays), dtype=np.float64)


def prefix_stop_probabilities_batch(
    matrices: np.ndarray, orders: np.ndarray
) -> np.ndarray:
    """Batched :func:`repro.core.fast.prefix_stop_probabilities_fast`.

    ``matrices`` is ``(batch, devices, cells)``, ``orders`` ``(batch,
    cells)``; returns the ``(batch, cells + 1)`` find-probability table
    ``F[i, k] = prod_dev P_dev(first k cells of orders[i])``, each row
    bit-identical to the scalar call on the same order.
    """
    stacked = np.asarray(matrices, dtype=np.float64)
    ordered = np.take_along_axis(stacked, np.asarray(orders)[:, None, :], axis=2)
    prefix_sums = np.concatenate(
        [np.zeros(ordered.shape[:2] + (1,)), np.cumsum(ordered, axis=2)], axis=2
    )
    return np.prod(prefix_sums, axis=1)


def _validate_budget(c: int, d: int, b: Optional[int]) -> int:
    """Shared shape-level feasibility checks, mirroring the scalar planner."""
    if not 1 <= d <= c:
        raise InfeasibleError(f"number of rounds must satisfy 1 <= d <= {c}, got {d}")
    cap = c if b is None else int(b)
    if cap < 1 or d * cap < c:
        raise InfeasibleError(
            f"cannot page {c} cells within {d} rounds of at most {cap} cells each"
        )
    # A group can never exceed c cells, so any cap above c plans identically
    # to cap == c (the scalar planner's gap band enforces this implicitly).
    # Clamping here keeps the compiled kernel's gap loop inside its padded
    # scratch rows and canonicalizes the _gap_tables cache key.
    return min(cap, c)


def _cut_dp_numpy(
    finds: np.ndarray, c: int, d: int, b: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """The ``(batch, prev, j)`` broadcast of the Lemma 4.7 recurrence.

    Same candidate expression, masking, and first-occurrence ``argmax`` as
    :func:`repro.core.fast.optimize_cuts_fast`, with the batch axis in
    front — every intermediate float matches the scalar loop bit for bit.
    """
    batch = finds.shape[0]
    positions = np.arange(c + 1)
    gap_matrix, valid = _gap_tables(c, b)
    neg_inf = -np.inf

    best = np.broadcast_to(
        np.where((positions >= 1) & (positions <= b), 0.0, neg_inf), (batch, c + 1)
    ).copy()
    parents = []
    for _level in range(2, d + 1):
        candidate = best[:, :, None] + gap_matrix[None, :, :] * finds[:, :, None]
        candidate = np.where(
            valid[None, :, :] & np.isfinite(best)[:, :, None], candidate, neg_inf
        )
        parent = np.argmax(candidate, axis=1)
        best = np.take_along_axis(candidate, parent[:, None, :], axis=1)[:, 0, :]
        parents.append(parent)

    values = c - best[:, c]
    feasible = np.isfinite(best[:, c])
    rows = np.arange(batch)
    cuts = np.empty((batch, d + 1), dtype=np.intp)
    cuts[:, d] = c
    cuts[:, 0] = 0
    cursor = np.full(batch, c, dtype=np.intp)
    for level in range(d - 1, 0, -1):
        cursor = parents[level - 1][rows, cursor]
        cuts[:, level] = cursor
    sizes = np.diff(cuts, axis=1)
    sizes[~feasible] = 0
    values = np.where(feasible, values, np.nan)
    return sizes, values, feasible


def _cut_dp_compiled(
    finds: np.ndarray, c: int, d: int, b: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Dispatch the cut DP to the C kernel (``repro_optimize_cuts_batch``)."""
    lib = load_compiled()
    batch = finds.shape[0]
    finds = np.ascontiguousarray(finds, dtype=np.float64)
    sizes = np.empty((batch, d), dtype=np.intp)
    values = np.empty(batch, dtype=np.float64)
    feasible = np.empty(batch, dtype=np.uint8)
    status = lib.repro_optimize_cuts_batch(
        finds.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        batch, c, d, b,
        sizes.ctypes.data_as(ctypes.POINTER(ctypes.c_ssize_t)),
        values.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        feasible.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
    )
    if status != 0:
        raise MemoryError("planner kernel could not allocate scratch space")
    return sizes, values, feasible.astype(bool)


def optimize_cuts_batch(
    prefix_stops: np.ndarray,
    num_rounds: int,
    *,
    max_group_size: Optional[int] = None,
    backend: str = "auto",
    chunk: Optional[int] = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched :func:`repro.core.fast.optimize_cuts_fast`.

    ``prefix_stops`` is ``(batch, cells + 1)``; returns ``(group_sizes,
    values)`` with shapes ``(batch, num_rounds)`` and ``(batch,)``, each
    row bit-identical to the scalar call.  Raises
    :class:`~repro.errors.InfeasibleError` for budgets the scalar planner
    rejects (shape-level: every row shares ``(c, d, b)``).
    """
    finds = np.ascontiguousarray(prefix_stops, dtype=np.float64)
    if finds.ndim != 2:
        raise ValueError(f"expected a (batch, cells+1) array, got shape {finds.shape}")
    c = finds.shape[1] - 1
    d = int(num_rounds)
    b = _validate_budget(c, d, max_group_size)
    chosen = resolve_backend(backend)
    if chosen == "compiled":
        sizes, values, _feasible = _cut_dp_compiled(finds, c, d, b)
        return sizes, values
    if finds.shape[0] == 0:
        return np.empty((0, d), dtype=np.intp), np.empty(0, dtype=np.float64)
    step = _auto_chunk(c) if chunk is None else max(1, int(chunk))
    sizes_parts, values_parts = [], []
    for start in range(0, finds.shape[0], step):
        part = finds[start : start + step]
        sizes, values, _feasible = _cut_dp_numpy(part, c, d, b)
        sizes_parts.append(sizes)
        values_parts.append(values)
    return np.concatenate(sizes_parts), np.concatenate(values_parts)


def plan_batch(
    instances: Union[np.ndarray, Sequence[PagingInstance]],
    num_rounds: Optional[int] = None,
    *,
    max_group_size: Optional[int] = None,
    backend: str = "auto",
    chunk: Optional[int] = None,
) -> BatchPlanResult:
    """Run the Fig. 1 heuristic over a whole stack of instances at once.

    ``instances`` is either a ``(batch, devices, cells)`` float array or a
    sequence of same-shape :class:`~repro.core.instance.PagingInstance`
    objects (in which case ``num_rounds`` defaults to their shared
    ``max_rounds``).  Every row's order, group sizes, and value are
    bit-identical to :func:`repro.core.fast.conference_call_heuristic_fast`
    on that instance.

    ``backend`` selects the cut-DP implementation: ``"numpy"``,
    ``"compiled"``, or ``"auto"`` (compiled when available, else numpy —
    see :mod:`repro.core.backends` for the fallback rules and environment
    overrides).  ``chunk`` bounds the numpy backend's transient memory.

    replint: solver
    """
    if isinstance(instances, np.ndarray):
        stacked = np.ascontiguousarray(instances, dtype=np.float64)
        if stacked.ndim != 3:
            raise ValueError(
                f"expected a (batch, devices, cells) array, got shape {stacked.shape}"
            )
        if num_rounds is None:
            raise ValueError("num_rounds is required when passing a raw array")
    else:
        stacked = stack_instances(instances)
        if num_rounds is None:
            rounds = {instance.max_rounds for instance in instances}
            if len(rounds) != 1:
                raise ValueError(
                    f"instances disagree on max_rounds ({sorted(rounds)}); "
                    "pass num_rounds explicitly"
                )
            num_rounds = rounds.pop()
    batch, m, c = stacked.shape
    d = int(num_rounds)
    b = _validate_budget(c, d, max_group_size)
    chosen = resolve_backend(backend)
    with span(
        "planner.batch", backend=chosen, batch=batch, cells=c, devices=m, rounds=d
    ):
        observe("planner.batch_size", batch)
        if chosen == "compiled":
            orders, sizes, values, feasible = _plan_compiled(stacked, d, b)
        else:
            orders, sizes, values, feasible = _plan_numpy(stacked, d, b, chunk)
    return BatchPlanResult(
        orders=orders,
        group_sizes=sizes,
        values=values,
        feasible=feasible,
        backend=chosen,
    )


def _plan_numpy(
    stacked: np.ndarray, d: int, b: int, chunk: Optional[int]
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Full pipeline on the numpy backend.

    A stable ascending argsort of ``-weights`` is the same permutation as
    the scalar planner's ``np.lexsort((arange(c), -weights))`` — descending
    by weight, ties by original index.
    """
    weights = stacked.sum(axis=1)
    orders = np.argsort(-weights, axis=1, kind="stable").astype(np.intp)
    finds = prefix_stop_probabilities_batch(stacked, orders)
    batch, _m, c = stacked.shape
    if batch == 0:
        # Keep batch == 0 well-defined and backend-agnostic: the compiled
        # kernel naturally returns empty arrays, so the numpy path must too.
        return (
            orders,
            np.empty((0, d), dtype=np.intp),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=bool),
        )
    step = _auto_chunk(c) if chunk is None else max(1, int(chunk))
    sizes_parts, values_parts, feasible_parts = [], [], []
    for start in range(0, batch, step):
        part = finds[start : start + step]
        sizes, values, feasible = _cut_dp_numpy(part, c, d, b)
        sizes_parts.append(sizes)
        values_parts.append(values)
        feasible_parts.append(feasible)
    return (
        orders,
        np.concatenate(sizes_parts),
        np.concatenate(values_parts),
        np.concatenate(feasible_parts),
    )


def _plan_compiled(
    stacked: np.ndarray, d: int, b: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Full pipeline on the C kernel (``repro_plan_batch``)."""
    lib = load_compiled()
    batch, m, c = stacked.shape
    orders = np.empty((batch, c), dtype=np.intp)
    sizes = np.empty((batch, d), dtype=np.intp)
    values = np.empty(batch, dtype=np.float64)
    feasible = np.empty(batch, dtype=np.uint8)
    status = lib.repro_plan_batch(
        stacked.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        batch, m, c, d, b,
        orders.ctypes.data_as(ctypes.POINTER(ctypes.c_ssize_t)),
        sizes.ctypes.data_as(ctypes.POINTER(ctypes.c_ssize_t)),
        values.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        feasible.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
    )
    if status != 0:
        raise MemoryError("planner kernel could not allocate scratch space")
    return orders, sizes, values, feasible.astype(bool)
