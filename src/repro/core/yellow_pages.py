"""The Yellow Pages problem: find at least ONE of the ``m`` devices (Section 5).

The search stops as soon as any device responds, so the stopping probability
for a prefix ``L`` is ``1 - prod_i (1 - P_i(L))``.  Conditioning on "no device
in the prefix" keeps the per-device distributions independent, so both the
Lemma 4.7-style recursion and the generic cut DP are exact over a fixed
order.

The paper reports (without details) an ``m``-approximation based on a
different heuristic than the weight ordering, and that the weight ordering is
*not* a constant-factor approximation here.  We implement the natural
candidate: solve the optimal single-device problem for each device separately
and keep the best of those strategies — finding any one device can never cost
more than finding the cheapest single device, and the optimum for ``m``
devices is at least ``1/m`` of the sum bound, yielding the ``m`` factor.
Empirical comparisons live in benchmark E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple

from ..errors import InvalidInstanceError
from .dp import optimize_cuts
from .instance import Number, PagingInstance
from .ordering import by_device_probability, by_miss_probability, validate_order
from .strategy import Strategy


@dataclass(frozen=True)
class YellowPagesResult:
    """A Yellow Pages strategy with its expected paging."""

    strategy: Strategy
    expected_paging: Number
    order: Tuple[int, ...]


def prefix_stop_probabilities(
    instance: PagingInstance, order: Sequence[int]
) -> Tuple[Number, ...]:
    """``F[k] = 1 - prod_i (1 - P_i(first k cells))`` for ``k = 0..c``."""
    order = validate_order(order, instance.num_cells)
    exact = instance.is_exact
    zero: Number = Fraction(0) if exact else 0.0
    one: Number = Fraction(1) if exact else 1.0
    sums = [zero] * instance.num_devices
    out = [zero]
    for cell in order:
        product = one
        for i, row in enumerate(instance.rows):
            sums[i] = sums[i] + row[cell]
            product = product * (one - sums[i])
        out.append(one - product)
    return tuple(out)


def expected_paging_yellow(instance: PagingInstance, strategy: Strategy) -> Number:
    """Expected cells paged until the first device is found."""
    from .expected_paging import expected_paging_from_stop_probabilities

    order = strategy.cells_in_order()
    finds = prefix_stop_probabilities(instance, order)
    sizes = strategy.group_sizes()
    stops = []
    position = 0
    for size in sizes:
        position += size
        stops.append(finds[position])
    return expected_paging_from_stop_probabilities(strategy, stops)


def optimize_yellow_over_order(
    instance: PagingInstance,
    order: Sequence[int],
    *,
    max_rounds: Optional[int] = None,
    max_group_size: Optional[int] = None,
) -> YellowPagesResult:
    """Optimal cut points of ``order`` for the Yellow Pages stopping rule.

    replint: solver
    """
    order = validate_order(order, instance.num_cells)
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    finds = prefix_stop_probabilities(instance, order)
    sizes, value = optimize_cuts(finds, d, max_group_size=max_group_size)
    strategy = Strategy.from_order_and_sizes(order, sizes)
    return YellowPagesResult(strategy=strategy, expected_paging=value, order=order)


def yellow_pages_greedy(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
) -> YellowPagesResult:
    """Cut the hit-probability ordering: page likely-occupied cells first.

    replint: solver
    """
    return optimize_yellow_over_order(
        instance, by_miss_probability(instance), max_rounds=max_rounds
    )


def yellow_pages_m_approximation(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
) -> YellowPagesResult:
    """The ``m``-approximation: best per-device optimal single-user order.

    For each device ``i``, order cells by ``p[i][j]`` (the optimal single-user
    sequence) and optimize cuts under the Yellow Pages rule; return the best.
    Searching optimally for any single device stops at least as soon when the
    other ``m - 1`` devices can also answer, which caps the cost at the
    cheapest single-device optimum — at most ``m`` times the Yellow Pages
    optimum.

    replint: solver
    """
    if instance.num_devices < 1:
        raise InvalidInstanceError("need at least one device")
    best: Optional[YellowPagesResult] = None
    for device in range(instance.num_devices):
        order = by_device_probability(instance, device)
        candidate = optimize_yellow_over_order(instance, order, max_rounds=max_rounds)
        if best is None or candidate.expected_paging < best.expected_paging:
            best = candidate
    assert best is not None
    return best


def yellow_pages_weight_order(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
) -> YellowPagesResult:
    """The Conference Call weight ordering applied to Yellow Pages.

    The paper notes this is NOT a constant-factor approximation for the
    Yellow Pages objective; benchmark E11 measures how it degrades.

    replint: solver
    """
    from .ordering import by_expected_devices

    return optimize_yellow_over_order(
        instance, by_expected_devices(instance), max_rounds=max_rounds
    )
