"""Paging strategies: ordered partitions of the cell set into rounds.

A strategy ``S_1, ..., S_t`` (Section 1.2 of the paper) pages the cells of
``S_r`` in round ``r`` and stops after the first round whose prefix covers all
devices.  Group order matters; order within a group does not.  Strategies are
immutable and hashable so they can key caches and be compared in tests.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Tuple

from ..errors import InvalidStrategyError


class Strategy:
    """An ordered partition of ``{0, ..., c-1}`` into non-empty groups."""

    __slots__ = ("_groups", "_num_cells")

    def __init__(self, groups: Iterable[Iterable[int]]) -> None:
        normalized: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(int(cell) for cell in group) for group in groups
        )
        if not normalized:
            raise InvalidStrategyError("a strategy needs at least one group")
        seen: set = set()
        for index, group in enumerate(normalized):
            if not group:
                raise InvalidStrategyError(f"group {index} is empty")
            overlap = seen & group
            if overlap:
                raise InvalidStrategyError(
                    f"cells {sorted(overlap)} appear in more than one group"
                )
            seen |= group
        num_cells = len(seen)
        if seen != set(range(num_cells)):
            raise InvalidStrategyError(
                "groups must partition the contiguous cell range 0..c-1; "
                f"got cell set {sorted(seen)}"
            )
        self._groups = normalized
        self._num_cells = num_cells

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def groups(self) -> Tuple[FrozenSet[int], ...]:
        """The groups in paging order."""
        return self._groups

    @property
    def length(self) -> int:
        """The number of rounds ``t``."""
        return len(self._groups)

    @property
    def num_cells(self) -> int:
        """The number of cells ``c`` covered by the strategy."""
        return self._num_cells

    def group(self, round_index: int) -> FrozenSet[int]:
        """The set of cells paged in round ``round_index`` (0-based)."""
        return self._groups[round_index]

    def group_sizes(self) -> Tuple[int, ...]:
        """``(|S_1|, ..., |S_t|)``."""
        return tuple(len(g) for g in self._groups)

    def prefixes(self) -> Tuple[FrozenSet[int], ...]:
        """The cumulative sets ``L_r = S_1 ∪ ... ∪ S_r`` for ``r = 1..t``."""
        out = []
        acc: FrozenSet[int] = frozenset()
        for group in self._groups:
            acc = acc | group
            out.append(acc)
        return tuple(out)

    def round_of_cell(self, cell: int) -> int:
        """The 0-based round in which ``cell`` is paged."""
        for index, group in enumerate(self._groups):
            if cell in group:
                return index
        raise InvalidStrategyError(f"cell {cell} is not covered by this strategy")

    def cells_in_order(self) -> Tuple[int, ...]:
        """Cells listed group by group (sorted within each group)."""
        out = []
        for group in self._groups:
            out.extend(sorted(group))
        return tuple(out)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(cls, rounds: Sequence[int]) -> "Strategy":
        """Build from a per-cell round assignment ``rounds[cell] -> round``.

        Round labels must form the contiguous range ``0..t-1``.
        """
        if not rounds:
            raise InvalidStrategyError("assignment must be non-empty")
        t = max(rounds) + 1
        groups = [[] for _ in range(t)]
        for cell, r in enumerate(rounds):
            if not 0 <= r < t:
                raise InvalidStrategyError(f"round label {r} out of range")
            groups[r].append(cell)
        return cls(groups)

    @classmethod
    def from_order_and_sizes(
        cls, order: Sequence[int], sizes: Sequence[int]
    ) -> "Strategy":
        """Cut an ordering of the cells into consecutive groups of given sizes."""
        if sum(sizes) != len(order):
            raise InvalidStrategyError(
                f"group sizes {tuple(sizes)} do not sum to {len(order)} cells"
            )
        groups = []
        position = 0
        for size in sizes:
            if size <= 0:
                raise InvalidStrategyError("group sizes must be positive")
            groups.append(order[position : position + size])
            position += size
        return cls(groups)

    @classmethod
    def single_round(cls, num_cells: int) -> "Strategy":
        """The trivial ``d = 1`` strategy that pages everything at once."""
        return cls([range(num_cells)])

    @classmethod
    def sequential(cls, num_cells: int) -> "Strategy":
        """The ``d = c`` strategy paging one cell per round in index order."""
        return cls([[cell] for cell in range(num_cells)])

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __iter__(self):
        return iter(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Strategy):
            return NotImplemented
        return self._groups == other._groups

    def __hash__(self) -> int:
        return hash(self._groups)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join("{" + ", ".join(map(str, sorted(g))) + "}" for g in self._groups)
        return f"Strategy([{rendered}])"
