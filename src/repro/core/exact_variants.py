"""Exact solvers for the Section 5 stopping-rule variants.

Lemma 2.1's telescoping holds for any stopping rule that depends only on the
*set* of cells paged so far: ``EP = c - sum_r |S_{r+1}| F(L_r)`` where
``F(L)`` is the probability that the search would already have stopped with
prefix ``L``.  Hence the subset dynamic program of :mod:`repro.core.exact`
generalizes verbatim — only the mask-indexed ``F`` table changes:

* Conference Call: ``F(L) = prod_i P_i(L)``;
* Yellow Pages:    ``F(L) = 1 - prod_i (1 - P_i(L))``;
* Signature (k):   ``F(L) = Pr[#devices in L >= k]`` (Poisson-binomial).

This module provides those exact optima, which the E11 experiments use as
ground truth for the variant heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Sequence

from ..errors import SolverLimitError
from .instance import Number, PagingInstance
from .signature import expected_paging_signature, poisson_binomial_tail
from .strategy import Strategy
from .yellow_pages import expected_paging_yellow

#: Same tractability cap as the Conference Call subset DP.
MAX_EXACT_CELLS = 18


@dataclass(frozen=True)
class VariantExactResult:
    """An optimal strategy for a variant stopping rule."""

    strategy: Strategy
    expected_paging: Number
    rule: str


def _mask_device_sums(instance: PagingInstance) -> List[List[Number]]:
    """Per-device subset sums ``P_i(mask)`` via lowest-set-bit DP."""
    c = instance.num_cells
    zero: Number = Fraction(0) if instance.is_exact else 0.0
    size = 1 << c
    sums: List[List[Number]] = []
    for row in instance.rows:
        device_sums = [zero] * size
        for mask in range(1, size):
            low = mask & (-mask)
            device_sums[mask] = device_sums[mask ^ low] + row[low.bit_length() - 1]
        sums.append(device_sums)
    return sums


def _optimal_by_mask_stops(
    instance: PagingInstance,
    finds: Sequence[Number],
    d: int,
    rule: str,
    evaluate: Callable[[PagingInstance, Strategy], Number],
) -> VariantExactResult:
    """Subset DP over prefixes, generic in the stop-probability table."""
    c = instance.num_cells
    full = (1 << c) - 1
    popcount = [bin(mask).count("1") for mask in range(full + 1)]
    minus_infinity = float("-inf")
    bonus: List = [minus_infinity] * (full + 1)
    bonus[full] = 0 * finds[full]
    choice: List[List[int]] = []

    for t in range(1, d + 1):
        new_bonus: List = [minus_infinity] * (full + 1)
        new_choice = [0] * (full + 1)
        for mask in range(full + 1):
            complement = full ^ mask
            if popcount[complement] < t:
                continue
            find_here = finds[mask]
            best = minus_infinity
            best_ext = 0
            sub = complement
            while sub:
                tail = bonus[mask | sub]
                if tail != minus_infinity:
                    value = popcount[sub] * find_here + tail
                    if value > best:
                        best = value
                        best_ext = sub
                sub = (sub - 1) & complement
            if best != minus_infinity:
                new_bonus[mask] = best
                new_choice[mask] = best_ext
        bonus = new_bonus
        choice.append(new_choice)

    groups = []
    mask = 0
    for t in range(d, 0, -1):
        ext = choice[t - 1][mask]
        groups.append([j for j in range(c) if ext >> j & 1])
        mask |= ext
    strategy = Strategy(groups)
    return VariantExactResult(
        strategy=strategy,
        expected_paging=evaluate(instance, strategy),
        rule=rule,
    )


def optimal_yellow_pages(
    instance: PagingInstance, *, max_rounds: Optional[int] = None
) -> VariantExactResult:
    """The exact optimal strategy for the find-ANY stopping rule.

    replint: solver
    """
    c = instance.num_cells
    if c > MAX_EXACT_CELLS:
        raise SolverLimitError(f"exact solver limited to {MAX_EXACT_CELLS} cells")
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    d = min(d, c)
    one: Number = Fraction(1) if instance.is_exact else 1.0
    sums = _mask_device_sums(instance)
    size = 1 << c
    finds: List[Number] = [one] * size
    for mask in range(size):
        survive = one
        for device_sums in sums:
            survive = survive * (one - device_sums[mask])
        finds[mask] = one - survive
    return _optimal_by_mask_stops(
        instance, finds, d, "yellow-pages", expected_paging_yellow
    )


def optimal_signature(
    instance: PagingInstance,
    quorum: int,
    *,
    max_rounds: Optional[int] = None,
) -> VariantExactResult:
    """The exact optimal strategy for the find-at-least-k stopping rule.

    replint: solver
    """
    c = instance.num_cells
    if c > MAX_EXACT_CELLS:
        raise SolverLimitError(f"exact solver limited to {MAX_EXACT_CELLS} cells")
    if not 1 <= quorum <= instance.num_devices:
        raise ValueError(
            f"quorum must satisfy 1 <= k <= m={instance.num_devices}, got {quorum}"
        )
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    d = min(d, c)
    sums = _mask_device_sums(instance)
    size = 1 << c
    finds = [
        poisson_binomial_tail([device_sums[mask] for device_sums in sums], quorum)
        for mask in range(size)
    ]

    def evaluate(inst: PagingInstance, strategy: Strategy) -> Number:
        return expected_paging_signature(inst, strategy, quorum)

    return _optimal_by_mask_stops(instance, finds, d, f"signature-{quorum}", evaluate)
