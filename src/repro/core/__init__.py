"""Core algorithms of the Conference Call paging problem.

Everything the paper contributes lives here: the problem model
(:class:`PagingInstance`, :class:`Strategy`), the Lemma 2.1 evaluators, the
Lemma 4.7 dynamic program, the e/(e-1) heuristic of Theorem 4.8, the 4/3
special case, exact solvers, and the Section 5 extensions (adaptive, Yellow
Pages, Signature, bandwidth caps, clustered scheme).
"""

from __future__ import annotations

from .adaptive import (
    AdaptiveTrace,
    adaptive_expected_paging,
    adaptive_monte_carlo,
    adaptive_search,
)
from .adaptive_variants import (
    AdaptiveQuorumTrace,
    adaptive_quorum_expected_paging,
    adaptive_quorum_monte_carlo,
    adaptive_quorum_search,
    adaptive_yellow_pages_expected_paging,
    optimal_adaptive_quorum_expected_paging,
)
from .adaptive_optimal import (
    AdaptiveOptimalResult,
    adaptivity_gap,
    optimal_adaptive_expected_paging,
)
from .backends import (
    BackendUnavailableError,
    available_backends,
    compiled_available,
    resolve_backend,
)
from .batch import (
    expected_paging_batch,
    expected_paging_monte_carlo_fast,
    sample_locations_batch,
    simulate_paging_batch,
)
from .batch_plan import (
    BatchPlanResult,
    optimize_cuts_batch,
    plan_batch,
    prefix_stop_probabilities_batch,
    stack_instances,
)
from .bandwidth import (
    bandwidth_limited_heuristic,
    bandwidth_limited_optimal,
    is_feasible,
    minimum_rounds,
)
from .bounds import (
    alpha_sequence,
    approximation_factor,
    b_sequence,
    lemma31_function,
    lemma31_maximum,
    lemma32_lower_bound,
    lemma34_lower_bound,
    lemma34_objective,
    optimal_group_fractions,
    optimal_mass_fractions,
    ratio_lower_bound,
    special_case_factor,
)
from .clustered import (
    ClusteredResult,
    cluster_cells,
    clustered_exhaustive,
    interval_scheme,
    interval_scheme_error_bound,
)
from .dp import OrderedDPResult, dp_value_table, optimize_cuts, optimize_over_order
from .exact import (
    ExactResult,
    enumerate_strategies,
    optimal_strategy,
    optimal_strategy_bruteforce,
)
from .exact_variants import (
    VariantExactResult,
    optimal_signature,
    optimal_yellow_pages,
)
from .fast import (
    conference_call_heuristic_fast,
    optimize_cuts_fast,
    prefix_stop_probabilities_fast,
)
from .serialization import (
    instance_from_dict,
    instance_to_dict,
    strategy_from_dict,
    strategy_to_dict,
)
from .expected_paging import (
    all_found_probability,
    expected_paging,
    expected_paging_by_definition,
    expected_paging_float,
    expected_paging_from_stop_probabilities,
    expected_paging_monte_carlo,
    expected_rounds,
    prefix_stops_float,
    simulate_paging,
    stop_probabilities,
    stopping_round_distribution,
)
from .heuristic import (
    APPROXIMATION_FACTOR,
    LOWER_BOUND_RATIO,
    conference_call_heuristic,
    guarantee_bound,
    profile_heuristic,
)
from .imperfect import (
    CollisionDetection,
    ConstantDetection,
    ImperfectSearchOutcome,
    expected_paging_imperfect_monte_carlo,
    expected_paging_imperfect_single,
    imperfect_ordering_invariance,
    simulate_imperfect_search,
)
from .instance import PagingInstance
from .lower_bound import (
    HEURISTIC_VALUE,
    OPTIMAL_VALUE,
    RATIO,
    lower_bound_instance,
    optimal_strategy_of_instance,
    perturbed_instance,
)
from .ordering import (
    by_device_probability,
    by_expected_devices,
    by_max_probability,
    by_miss_probability,
    identity,
    random_order,
    validate_order,
)
from .signature import (
    SignatureResult,
    expected_paging_signature,
    optimize_signature_over_order,
    poisson_binomial_tail,
    signature_heuristic,
)
from .single_user import (
    expected_paging_for_sizes,
    optimal_single_user,
    uniform_expected_paging,
)
from .special_case import FOUR_THIRDS, TwoRoundSplit, two_device_two_round_heuristic
from .strategy import Strategy
from .weighted import (
    WeightedResult,
    by_density,
    optimal_weighted_strategy,
    optimize_cuts_weighted,
    weighted_expected_paging,
    weighted_heuristic,
    weighted_weight_order,
)
from .yellow_pages import (
    YellowPagesResult,
    expected_paging_yellow,
    optimize_yellow_over_order,
    yellow_pages_greedy,
    yellow_pages_m_approximation,
    yellow_pages_weight_order,
)

import types as _types

#: Generated export list: every public, non-module name imported above,
#: sorted.  Replaces the old hand-maintained 119-entry literal; the
#: meta-test in tests/test_public_api.py asserts it matches the static
#: ``from .module import ...`` statements exactly (no drift, no dups).
__all__ = sorted(
    name
    for name, value in globals().items()
    if not name.startswith("_")
    and name != "annotations"
    and not isinstance(value, _types.ModuleType)
)
