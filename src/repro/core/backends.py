"""Pluggable planner backends: pure numpy vs an optional compiled kernel.

The batched planner (:mod:`repro.core.batch_plan`) has two interchangeable
implementations of its hot loop, the Lemma 4.7 cut dynamic program behind
the Fig. 1 heuristic:

* ``"numpy"`` — the broadcast ``(batch, prev, j)`` DP, always available;
* ``"compiled"`` — the C kernel in ``_cut_dp.c``, built on demand with the
  host C compiler and loaded through :mod:`ctypes`.  No build step, no new
  dependency: the first use compiles the shared object into a cache
  directory keyed by the source hash plus the toolchain fingerprint
  (compiler, version, flags, machine), so rebuilds happen exactly when the
  kernel source or the machine code it would produce changes.

Backend selection is a *capability*, not a hard requirement:
``resolve_backend("auto")`` prefers the compiled kernel and silently falls
back to numpy when no toolchain (or no cache directory) is available,
bumping the ``planner.backend_fallback`` obs counter so the degradation is
observable.  Asking for ``backend="compiled"`` explicitly raises instead —
an explicit request must not silently change semantics class.

Environment overrides (tested in ``tests/core/test_backends.py``):

* ``REPRO_PLANNER_BACKEND`` — force ``numpy``/``compiled`` for every
  ``backend="auto"`` resolution (explicit arguments still win);
* ``REPRO_DISABLE_COMPILED=1`` — pretend no toolchain exists (the no-
  compiler CI job uses this to prove graceful fallback);
* ``REPRO_CACHE_DIR`` — where the compiled object is cached (default
  ``~/.cache/repro``).

Both backends are bit-identical: the kernel documents (and the property
suite in ``tests/core/test_batch_plan.py`` asserts) that every float is
computed by the same sequence of IEEE operations as ``repro.core.fast``,
compiled with ``-ffp-contract=off`` so no fused multiply-adds sneak in.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

from ..errors import ReproError
from ..obs.instrument import count

__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "available_backends",
    "compiled_available",
    "load_compiled",
    "resolve_backend",
]

#: The recognized ``backend=`` values, in preference order for ``auto``.
BACKENDS: Tuple[str, ...] = ("compiled", "numpy")

_SOURCE = Path(__file__).with_name("_cut_dp.c")

#: ``-ffp-contract=off`` is load-bearing: fused multiply-adds would change
#: the DP candidates in the last ulp and break bit-identity with numpy.
_CFLAGS = ("-O3", "-march=native", "-ffp-contract=off", "-fopenmp-simd",
           "-shared", "-fPIC")

_lib: Optional[ctypes.CDLL] = None
_lib_error: Optional[str] = None


class BackendUnavailableError(ReproError):
    """An explicitly requested planner backend cannot be provided."""


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _compiler() -> Optional[Tuple[str, str]]:
    """``(name, version banner)`` of the first working C compiler, if any."""
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not name:
            continue
        try:
            probe = subprocess.run(
                [name, "--version"], capture_output=True, check=True, timeout=30
            )
        except (OSError, subprocess.SubprocessError):
            continue
        banner = probe.stdout.decode(errors="replace").splitlines()
        return name, banner[0] if banner else ""
    return None


def _object_digest(source: str, compiler: str, version: str) -> str:
    """Cache key for a built kernel object.

    The digest covers everything that determines the machine code, not just
    the C source: a cache directory shared across machines (REPRO_CACHE_DIR)
    or a toolchain upgrade must not reuse a ``.so`` built with different
    flags or for a different microarchitecture (``-march=native`` makes
    that a SIGILL, not a clean fallback).
    """
    fingerprint = "\x00".join(
        (source, compiler, version, " ".join(_CFLAGS), platform.machine())
    )
    return hashlib.sha256(fingerprint.encode()).hexdigest()[:16]


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    ssize = ctypes.c_ssize_t
    dptr = ctypes.POINTER(ctypes.c_double)
    iptr = ctypes.POINTER(ssize)
    bptr = ctypes.POINTER(ctypes.c_ubyte)
    lib.repro_plan_batch.restype = ctypes.c_int
    lib.repro_plan_batch.argtypes = [
        dptr, ssize, ssize, ssize, ssize, ssize, iptr, iptr, dptr, bptr,
    ]
    lib.repro_optimize_cuts_batch.restype = ctypes.c_int
    lib.repro_optimize_cuts_batch.argtypes = [
        dptr, ssize, ssize, ssize, ssize, iptr, dptr, bptr,
    ]
    return lib


def _build_library() -> ctypes.CDLL:
    source = _SOURCE.read_text()
    # The compiler probe runs even when a cached object exists: its identity
    # is part of the cache key, so a toolchain change triggers a rebuild
    # instead of loading an object compiled for a different setup.
    found = _compiler()
    if found is None:
        raise BackendUnavailableError("no C compiler found on PATH")
    compiler, version = found
    digest = _object_digest(source, compiler, version)
    cache = _cache_dir()
    target = cache / f"cut_dp-{digest}.so"
    if not target.exists():
        cache.mkdir(parents=True, exist_ok=True)
        # Build into a private temp name, then atomically publish, so two
        # concurrent processes never load a half-written object.
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
        os.close(fd)
        try:
            subprocess.run(
                [compiler, *_CFLAGS, "-o", tmp, str(_SOURCE), "-lm"],
                capture_output=True,
                check=True,
                timeout=300,
            )
            os.replace(tmp, target)
        except subprocess.CalledProcessError as error:
            raise BackendUnavailableError(
                "planner kernel failed to compile: "
                + error.stderr.decode(errors="replace").strip()
            ) from error
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    return _declare(ctypes.CDLL(str(target)))


def load_compiled() -> ctypes.CDLL:
    """The compiled kernel, building and caching it on first use.

    Raises :class:`BackendUnavailableError` when the toolchain is absent,
    the build fails, or ``REPRO_DISABLE_COMPILED`` is set.  The outcome
    (library or error) is memoized per process.
    """
    global _lib, _lib_error
    if os.environ.get("REPRO_DISABLE_COMPILED"):
        raise BackendUnavailableError(
            "compiled backend disabled by REPRO_DISABLE_COMPILED"
        )
    if _lib is not None:
        return _lib
    if _lib_error is not None:
        raise BackendUnavailableError(_lib_error)
    try:
        _lib = _build_library()
    except BackendUnavailableError as error:
        _lib_error = str(error)
        raise
    except OSError as error:
        _lib_error = f"cannot build planner kernel: {error}"
        raise BackendUnavailableError(_lib_error) from error
    return _lib


def compiled_available() -> bool:
    """True when :func:`load_compiled` would succeed right now."""
    try:
        load_compiled()
    except BackendUnavailableError:
        return False
    return True


def available_backends() -> Tuple[str, ...]:
    """The usable backends on this machine, in ``auto`` preference order."""
    return tuple(
        name
        for name in BACKENDS
        if name != "compiled" or compiled_available()
    )


def resolve_backend(backend: str = "auto") -> str:
    """Map a ``backend=`` option to a concrete implementation name.

    ``"auto"`` (optionally overridden by ``REPRO_PLANNER_BACKEND``) prefers
    the compiled kernel and falls back to numpy — silently, except for the
    ``planner.backend_fallback`` obs counter.  An explicit ``"compiled"``
    raises :class:`BackendUnavailableError` when the kernel cannot load.
    """
    if backend == "auto":
        forced = os.environ.get("REPRO_PLANNER_BACKEND")
        if forced:
            backend = forced
    if backend == "auto":
        if compiled_available():
            return "compiled"
        count("planner.backend_fallback")
        return "numpy"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown planner backend {backend!r}; known: auto, "
            + ", ".join(BACKENDS)
        )
    if backend == "compiled":
        load_compiled()  # raises BackendUnavailableError when absent
    return backend
