"""The Section 4.3 lower-bound instance for the heuristic's performance ratio.

With ``m = 2``, ``c = 8``, ``d = 2``, probabilities ``p[0][0] = 2/7``,
``p[1][0] = p[0][6] = p[0][7] = 0`` and ``1/7`` elsewhere, the optimal
strategy pages cells ``{1..5}`` (0-based) first for an expected paging of
``317/49``, while the weight-ordered heuristic pages ``{0..4}`` first and
pays ``320/49`` — a ratio of ``320/317``.

The paper notes the example can be made independent of tie-breaking by an
epsilon perturbation; :func:`perturbed_instance` reproduces that variant.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from .instance import PagingInstance
from .strategy import Strategy

#: Optimal expected paging of the Section 4.3 instance.
OPTIMAL_VALUE = Fraction(317, 49)

#: Heuristic expected paging of the Section 4.3 instance.
HEURISTIC_VALUE = Fraction(320, 49)

#: The resulting lower bound on the heuristic's performance ratio.
RATIO = Fraction(320, 317)


def lower_bound_instance() -> PagingInstance:
    """The exact ``m=2, c=8, d=2`` instance of Section 4.3."""
    seventh = Fraction(1, 7)
    device_one = [Fraction(2, 7)] + [seventh] * 5 + [Fraction(0), Fraction(0)]
    device_two = [Fraction(0)] + [seventh] * 7
    return PagingInstance([device_one, device_two], max_rounds=2, allow_zero=True)


def optimal_first_round() -> Tuple[int, ...]:
    """Cells the optimal strategy pages first (0-based): cells 2..6 of the paper."""
    return (1, 2, 3, 4, 5)


def heuristic_first_round() -> Tuple[int, ...]:
    """Cells the heuristic pages first (0-based): cells 1..5 of the paper."""
    return (0, 1, 2, 3, 4)


def optimal_strategy_of_instance() -> Strategy:
    """The optimal two-round strategy of the Section 4.3 instance."""
    first = set(optimal_first_round())
    second = set(range(8)) - first
    return Strategy([sorted(first), sorted(second)])


def perturbed_instance(epsilon: Fraction = Fraction(1, 10_000)) -> PagingInstance:
    """A tie-break-free variant: boost the weight of cell 0 by ``epsilon``.

    Moving ``epsilon`` of device 1's mass from cell 6 (paper cell 7) onto
    cell 0 makes cell 0 strictly the heaviest, so any weight-nonincreasing
    ordering must start with it — forcing the heuristic into the ``{0..4}``
    first round without relying on tie-breaking, while the optimal strategy
    still pages ``{1..5}`` first for small enough ``epsilon``.
    """
    if not 0 < epsilon < Fraction(1, 7):
        raise ValueError("epsilon must lie strictly between 0 and 1/7")
    seventh = Fraction(1, 7)
    device_one = [Fraction(2, 7)] + [seventh] * 5 + [Fraction(0), Fraction(0)]
    device_two = [epsilon] + [seventh] * 6 + [seventh - epsilon]
    return PagingInstance([device_one, device_two], max_rounds=2, allow_zero=True)
