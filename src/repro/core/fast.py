"""Vectorized planning for large location areas.

The reference implementation of the Lemma 4.7 dynamic program is pure Python
— transparent, exact-arithmetic-capable, and `O(c(m + dc))`, but with a
per-iteration interpreter cost that bites when a location area has hundreds
or thousands of cells.  This module re-implements the cut optimization with
numpy:

* the prefix stop probabilities ``F[k]`` come from one ``cumsum`` +
  ``prod`` over the device axis, and
* each DP level is one broadcast ``max`` over a ``(c+1) x (c+1)``
  lower-triangular value matrix (``best[prev] + (j - prev) F[prev]``),
  optionally banded by the bandwidth cap.

That is ``O(d c^2)`` like the reference, but at numpy speed — planning a
2 000-cell area in well under a second (benchmark E22).  Results are
bit-for-bit float-identical to the reference on the same order, which the
tests assert.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import InfeasibleError
from .dp import OrderedDPResult
from .instance import PagingInstance
from .strategy import Strategy


@lru_cache(maxsize=64)
def _gap_tables(c: int, b: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(gap_matrix, valid)`` for the cut DP, cached per shape ``(c, b)``.

    ``gap_matrix[prev, j] = j - prev``; ``valid`` masks the band
    ``1 <= j - prev <= b``.  Both are O(c²) and depend only on the shape,
    so repeated same-shape plans (the paging-controller pattern: thousands
    of instances over one location area) reuse one read-only pair instead
    of reallocating per call.
    """
    positions = np.arange(c + 1)
    gap_matrix = positions[None, :] - positions[:, None]
    valid = (gap_matrix >= 1) & (gap_matrix <= b)
    gap_matrix.setflags(write=False)
    valid.setflags(write=False)
    return gap_matrix, valid


def prefix_stop_probabilities_fast(
    matrix: np.ndarray, order: Sequence[int]
) -> np.ndarray:
    """``F[k] = prod_i P_i(first k cells of order)`` for ``k = 0..c``.

    ``matrix`` is the ``m x c`` probability array; one vectorized pass.
    """
    ordered = matrix[:, list(order)]
    prefix_sums = np.concatenate(
        [np.zeros((matrix.shape[0], 1)), np.cumsum(ordered, axis=1)], axis=1
    )
    return np.prod(prefix_sums, axis=0)


def optimize_cuts_fast(
    prefix_stops: np.ndarray,
    num_rounds: int,
    *,
    max_group_size: Optional[int] = None,
) -> Tuple[Tuple[int, ...], float]:
    """Vectorized equivalent of :func:`repro.core.dp.optimize_cuts`.

    Returns ``(group_sizes, expected_paging)`` maximizing the telescoped
    bonus ``sum_r (j_{r+1} - j_r) F[j_r]`` over cut sequences.
    """
    finds = np.asarray(prefix_stops, dtype=float)
    c = len(finds) - 1
    d = int(num_rounds)
    if not 1 <= d <= c:
        raise InfeasibleError(f"number of rounds must satisfy 1 <= d <= {c}, got {d}")
    b = c if max_group_size is None else int(max_group_size)
    if b < 1 or d * b < c:
        raise InfeasibleError(
            f"cannot page {c} cells within {d} rounds of at most {b} cells each"
        )

    positions = np.arange(c + 1)
    # gaps[prev, j] = j - prev for prev < j <= prev + b, banded by the cap.
    gap_matrix, valid = _gap_tables(c, b)

    neg_inf = -np.inf
    best = np.where((positions >= 1) & (positions <= b), 0.0, neg_inf)
    parents = []
    for _level in range(2, d + 1):
        # candidate[prev, j] = best[prev] + (j - prev) * F[prev]
        candidate = best[:, None] + gap_matrix * finds[:, None]
        candidate = np.where(valid & np.isfinite(best)[:, None], candidate, neg_inf)
        parent = np.argmax(candidate, axis=0)
        best = candidate[parent, positions]
        parents.append(parent)

    if not np.isfinite(best[c]):
        raise InfeasibleError("no feasible cut sequence (check group-size cap)")
    cuts = [c]
    for parent in reversed(parents):
        cuts.append(int(parent[cuts[-1]]))
    cuts.append(0)
    cuts.reverse()
    sizes = tuple(cuts[r + 1] - cuts[r] for r in range(d))
    return sizes, float(c - best[c])


def conference_call_heuristic_fast(
    instance: PagingInstance,
    *,
    max_rounds: Optional[int] = None,
    max_group_size: Optional[int] = None,
) -> OrderedDPResult:
    """Numpy-accelerated Fig. 1 heuristic (float arithmetic only).

    Identical strategy and value as
    :func:`repro.core.heuristic.conference_call_heuristic` up to float
    round-off; use the reference for exact (Fraction) instances.

    replint: solver
    """
    matrix = instance.as_array()
    weights = matrix.sum(axis=0)
    # Sort by descending weight, ties by index — matching the reference.
    order = tuple(int(j) for j in np.lexsort((np.arange(len(weights)), -weights)))
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    finds = prefix_stop_probabilities_fast(matrix, order)
    sizes, value = optimize_cuts_fast(finds, d, max_group_size=max_group_size)
    strategy = Strategy.from_order_and_sizes(order, sizes)
    return OrderedDPResult(
        strategy=strategy,
        expected_paging=value,
        order=order,
        group_sizes=sizes,
    )
