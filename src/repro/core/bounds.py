"""Bound constants and closed forms from the paper's analysis.

* The Lemma 3.4 recursion ``alpha_1 = m/(m+1)``,
  ``alpha_k = m/(m+1 - alpha_{k-1}^m)``, ``b_d = c``, ``b_{k-1} = alpha_{k-1} b_k``
  gives the unique interior maximizer of ``sum_r (b_{r+1}-b_r) b_r^m`` and
  hence the group-size profile at which the NP-hardness gadget's expected
  paging bottoms out.
* The Lemma 3.2 lower bound ``LB = c - f(1/2, 2c/3) / ((c-1/2)(c-1))`` with
  ``f`` from Lemma 3.1 drives the ``m=2, d=2`` reduction.
* ``e/(e-1)`` and ``4/3`` guarantee helpers round out the constants used by
  the experiments.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence, Union

Numeric = Union[float, Fraction]


def alpha_sequence(num_devices: int, num_rounds: int, *, exact: bool = False):
    """``alpha_1 .. alpha_{d-1}`` of Lemma 3.4 (monotonically increasing)."""
    m, d = num_devices, num_rounds
    if m < 2 or d < 2:
        raise ValueError("Lemma 3.4 requires m >= 2 and d >= 2")
    one = Fraction(1) if exact else 1.0
    alphas = []
    alpha = m / ((m + 1) * one)
    alphas.append(alpha)
    for _ in range(2, d):
        alpha = m * one / (m + 1 - alpha**m)
        alphas.append(alpha)
    return tuple(alphas)


def b_sequence(
    num_devices: int, num_rounds: int, num_cells: Numeric, *, exact: bool = False
):
    """``b_0 = 0 < b_1 < ... < b_d = c`` of Lemma 3.4."""
    alphas = alpha_sequence(num_devices, num_rounds, exact=exact)
    one = Fraction(1) if exact else 1.0
    values = [num_cells * one]
    for alpha in reversed(alphas):
        values.append(alpha * values[-1])
    values.append(0 * one)
    return tuple(reversed(values))


def optimal_group_fractions(num_devices: int, num_rounds: int, *, exact: bool = False):
    """``r_j = (b_j - b_{j-1}) / c``: the group-size fractions of Lemma 3.4."""
    bs = b_sequence(num_devices, num_rounds, 1, exact=exact)
    return tuple(bs[j] - bs[j - 1] for j in range(1, len(bs)))


def optimal_mass_fractions(num_devices: int, num_rounds: int, *, exact: bool = False):
    """Per-group mass fractions ``x_j`` of Lemma 3.4.

    The equality condition fixes the *prefix* masses at ``b_r / (2c)``, so
    group ``j < d`` holds ``(b_j - b_{j-1}) / (2c)`` of the size mass and the
    last group the remainder.
    """
    bs = b_sequence(num_devices, num_rounds, 1, exact=exact)
    one = Fraction(1) if exact else 1.0
    xs = [(bs[j] - bs[j - 1]) / 2 for j in range(1, len(bs) - 1)]
    xs.append(one - sum(xs))
    return tuple(xs)


def lemma31_function(x: Numeric, y: Numeric, num_cells: Numeric) -> Numeric:
    """``f(x, y) = (c - y) ((1 - 3/(2c)) y + x)(y - x)`` from Lemma 3.1."""
    c = num_cells
    coefficient = 1 - Fraction(3, 2) / c if isinstance(c, Fraction) else 1 - 1.5 / c
    return (c - y) * (coefficient * y + x) * (y - x)


def lemma31_maximum(num_cells: Numeric) -> Numeric:
    """``f(1/2, 2c/3) = 4c^3/27 - 2c^2/9 + c/12`` — the unique global maximum."""
    c = num_cells
    if isinstance(c, Fraction) or isinstance(c, int):
        c = Fraction(c)
        return Fraction(4, 27) * c**3 - Fraction(2, 9) * c**2 + c / 12
    return 4.0 * c**3 / 27.0 - 2.0 * c**2 / 9.0 + c / 12.0


def lemma32_lower_bound(num_cells: int) -> Fraction:
    """``LB = c - f(1/2, 2c/3) / ((c - 1/2)(c - 1))`` from the reduction proof."""
    c = Fraction(num_cells)
    return c - lemma31_maximum(c) / ((c - Fraction(1, 2)) * (c - 1))


def lemma34_objective(bs: Sequence[Numeric], num_devices: int) -> Numeric:
    """``sum_{r=1}^{d-1} (b_{r+1} - b_r) b_r^m`` over a chain ``b_1..b_d``."""
    total = 0 * bs[0]
    for r in range(len(bs) - 1):
        total = total + (bs[r + 1] - bs[r]) * bs[r] ** num_devices
    return total


def lemma34_lower_bound(
    num_devices: int, num_rounds: int, num_cells: Numeric
) -> float:
    """The Lemma 3.4 bound ``c - (2c-1)^2/(4(c-1)c^{m+1}) * sum (b_{r+1}-b_r) b_r^m``."""
    m, c = num_devices, float(num_cells)
    bs = b_sequence(num_devices, num_rounds, c)
    inner = lemma34_objective(bs[1:], m)  # the sum runs over b_1..b_d
    return c - (2 * c - 1) ** 2 / (4 * (c - 1) * c ** (m + 1)) * inner


def approximation_factor() -> float:
    """The Theorem 4.8 guarantee ``e/(e-1)``."""
    return math.e / (math.e - 1.0)


def special_case_factor() -> float:
    """The Section 4.1 guarantee ``4/3`` for ``m = 2, d = 2``."""
    return 4.0 / 3.0


def ratio_lower_bound() -> Fraction:
    """The Section 4.3 lower bound ``320/317`` on the heuristic's ratio."""
    return Fraction(320, 317)
