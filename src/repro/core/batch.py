"""Batched numpy kernels for the Lemma 2.1 evaluators.

Every hot evaluation path in this package has a transparent one-at-a-time
reference implementation (:mod:`repro.core.expected_paging`).  This module
provides the production-scale counterparts, vectorized over *trials* and
over *strategies*:

* :func:`sample_locations_batch` — one ``(m, trials)`` categorical draw via
  the cached row-wise cumulative distributions and ``searchsorted``, instead
  of ``trials x m`` scalar draws.
* :func:`simulate_paging_batch` — the Section 1.2 search simulated for every
  trial at once: a cell→round lookup table maps each device's location to
  its stopping round, a ``max`` over the device axis gives the search's
  stopping round, and a gather of cumulative group sizes gives the cells
  paged.  No Python loop over trials.
* :func:`expected_paging_monte_carlo_fast` — the Monte-Carlo cross-check of
  Lemma 2.1 built from the two kernels above.
* :func:`expected_paging_batch` — scores a stack of strategies in one
  broadcast from the cached per-device row arrays; float-identical to
  :func:`repro.core.expected_paging.expected_paging_float` on float
  instances (both run the same gather → cumsum → boundary-product →
  telescoping pipeline, in the same order).

The exact ``Fraction`` paths remain the reference oracle; these kernels are
float64 only.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import InvalidStrategyError
from ..obs.events import current_tracer
from ..obs.instrument import span
from .expected_paging import _check_compatible
from .instance import PagingInstance
from .strategy import Strategy


def sample_locations_batch(
    instance: PagingInstance, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``trials`` joint location outcomes in one vectorized pass.

    Returns an ``(m, trials)`` integer array; column ``k`` is one joint
    outcome (a cell per device), distributed exactly like
    :meth:`~repro.core.instance.PagingInstance.sample_locations`.  Inverse
    transform sampling: one uniform per (device, trial), located in the
    device's cached cumulative row by ``searchsorted``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    cumulative = instance._cumulative_float_rows()
    draws = rng.random((instance.num_devices, trials))
    out = np.empty((instance.num_devices, trials), dtype=np.intp)
    for i in range(instance.num_devices):
        out[i] = np.searchsorted(cumulative[i], draws[i], side="right")
    return out


def _round_lookup(strategy: Strategy) -> Tuple[np.ndarray, np.ndarray]:
    """``(cell→round table, cumulative group sizes)`` for one strategy."""
    round_of_cell = np.empty(strategy.num_cells, dtype=np.intp)
    for round_index, group in enumerate(strategy.groups):
        round_of_cell[list(group)] = round_index
    cumulative_sizes = np.cumsum(strategy.group_sizes())
    return round_of_cell, cumulative_sizes


def simulate_paging_batch(
    instance: PagingInstance,
    strategy: Strategy,
    locations: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the search against every column of ``locations`` at once.

    ``locations`` is an ``(m, trials)`` array of cell indices (the layout
    produced by :func:`sample_locations_batch`).  Returns
    ``(cells_paged, rounds_used)``, both ``(trials,)`` integer arrays, equal
    per column to :func:`repro.core.expected_paging.simulate_paging`.

    The search stops at the latest round in which any device's cell is
    paged, so the per-trial stopping round is a lookup-table gather followed
    by a ``max`` over the device axis; the cost is the cumulative group size
    at that round.
    """
    _check_compatible(instance, strategy)
    located = np.asarray(locations)
    if located.ndim != 2 or located.shape[0] != instance.num_devices:
        raise InvalidStrategyError(
            f"expected a ({instance.num_devices}, trials) locations array, "
            f"got shape {located.shape}"
        )
    if located.size and (
        located.min() < 0 or located.max() >= instance.num_cells
    ):
        raise InvalidStrategyError(
            f"locations must be cell indices in [0, {instance.num_cells})"
        )
    round_of_cell, cumulative_sizes = _round_lookup(strategy)
    stop_round = round_of_cell[located].max(axis=0)
    rounds_used = stop_round + 1
    tracer = current_tracer()
    if tracer.enabled and rounds_used.size:
        tracer.count("batch.trials", int(rounds_used.size))
        values, counts = np.unique(rounds_used, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            tracer.observe("batch.rounds_to_find", value, count)
    return cumulative_sizes[stop_round], rounds_used


def expected_paging_monte_carlo_fast(
    instance: PagingInstance,
    strategy: Strategy,
    *,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Vectorized Monte-Carlo estimate of expected paging.

    Drop-in counterpart of
    :func:`repro.core.expected_paging.expected_paging_monte_carlo`: same
    estimator (mean cells paged over ``trials`` independent outcomes), but
    the sampling and the search simulation both run as single numpy
    kernels, with no Python loop over trials.
    """
    _check_compatible(instance, strategy)
    with span(
        "batch.monte_carlo",
        cells=instance.num_cells,
        devices=instance.num_devices,
        trials=trials,
    ):
        locations = sample_locations_batch(instance, trials, rng)
        cells_paged, _rounds = simulate_paging_batch(instance, strategy, locations)
        return float(cells_paged.mean())


def expected_paging_batch(
    instance: PagingInstance, strategies: Sequence[Strategy]
) -> np.ndarray:
    """Expected paging of a stack of strategies, in one broadcast.

    Returns a float64 array ``out[s] = EP(instance, strategies[s])``.  The
    whole stack is evaluated from the instance's cached per-device row
    arrays: gather rows into each strategy's cell order, one ``cumsum``
    over the cell axis, read each strategy's prefix boundaries, multiply
    over the device axis, and telescope (Lemma 2.1).  Shorter strategies
    are padded with empty rounds, which contribute exactly ``0.0`` to the
    telescoped sum, so every entry is bit-identical to the scalar
    :func:`repro.core.expected_paging.expected_paging_float` on float
    instances.
    """
    stack = list(strategies)
    if not stack:
        return np.zeros(0, dtype=np.float64)
    for strategy in stack:
        _check_compatible(instance, strategy)
    with span(
        "batch.expected_paging",
        cells=instance.num_cells,
        devices=instance.num_devices,
        strategies=len(stack),
    ):
        return _expected_paging_batch_impl(instance, stack)


def _expected_paging_batch_impl(
    instance: PagingInstance, stack: List[Strategy]
) -> np.ndarray:
    """The broadcast pipeline behind :func:`expected_paging_batch`."""
    rows = instance.float_rows()
    num_strategies = len(stack)
    c = instance.num_cells
    max_rounds = max(strategy.length for strategy in stack)

    orders = np.empty((num_strategies, c), dtype=np.intp)
    # Padded boundaries repeat the full prefix (index c-1); the matching
    # padded sizes are 0, so the repeated entries never contribute.
    boundaries = np.full((num_strategies, max_rounds), c - 1, dtype=np.intp)
    sizes = np.zeros((num_strategies, max_rounds), dtype=np.int64)
    for s, strategy in enumerate(stack):
        orders[s] = strategy.cells_in_order()
        group_sizes = strategy.group_sizes()
        boundaries[s, : len(group_sizes)] = np.cumsum(group_sizes) - 1
        sizes[s, : len(group_sizes)] = group_sizes

    # (m, s, c): each device's rows gathered into every strategy's order.
    cumulative = np.cumsum(rows[:, orders], axis=2)
    gather = np.broadcast_to(
        boundaries[None, :, :], (rows.shape[0], num_strategies, max_rounds)
    )
    per_device = np.take_along_axis(cumulative, gather, axis=2)
    stops = per_device[0].copy()
    for i in range(1, per_device.shape[0]):
        stops = stops * per_device[i]

    cost = sizes.sum(axis=1).astype(np.float64)
    for r in range(max_rounds - 1):
        cost = cost - sizes[:, r + 1] * stops[:, r]
    return cost
