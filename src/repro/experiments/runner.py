"""Run every experiment and render the full report.

``python -m repro.experiments.runner`` regenerates all experiment tables —
the per-table functions are also what the benchmark suite calls, so the
printed report and the benchmark assertions always agree.

Experiments are independent, so :func:`run_experiments` can fan them out
over a process pool (``jobs=N``, the CLI's ``--jobs/-j``).  Determinism is
preserved in both modes:

* every experiment seeds its own generator internally (or receives a
  deterministically spawned child of ``seed`` when one is given), and
* results are collected in the selection order, never completion order,

so a parallel run renders byte-identically to a serial one.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import JsonlSink, Tracer, current_tracer, load_events, use_tracer

from .advanced import (
    run_e19_adaptivity_gap,
    run_e20_imperfect_detection,
    run_e21_movement_sensitivity,
    run_e23_area_dimensioning,
    run_e24_correlation_sensitivity,
    run_e25_weighted_costs,
    run_e26_learning_curve,
)
from .approximation import (
    run_e03_ratio_sweep,
    run_e08_single_user_optimal,
    run_e09_delay_tradeoff,
    run_e10_adaptive,
)
from .extensions import (
    run_e11_signature_sweep,
    run_e11_yellow_pages,
    run_e12_bandwidth,
    run_e15_clustered,
)
from .hardness_experiments import (
    run_e06_reduction_general,
    run_e06_reduction_m2d2,
    run_e14_quasipartition2,
    run_e17_lifting,
    run_e18_qap,
)
from .paper_claims import (
    run_e01_uniform_single_user,
    run_e02_lower_bound,
    run_e04_lemma31,
    run_e05_lemma34,
    run_e16_four_thirds,
)
from .system import (
    run_e07_dp_scaling,
    run_e13_cellnet,
    run_e13_reporting_tradeoff,
    run_e27_batched_replanning,
    run_e28_timevary,
    run_e29_contention,
)
from .tables import ExperimentTable, render_all

#: Every experiment, in paper order.  Keys match DESIGN.md's index.
EXPERIMENTS: Dict[str, Callable[[], ExperimentTable]] = {
    "E1": run_e01_uniform_single_user,
    "E2": run_e02_lower_bound,
    "E3": run_e03_ratio_sweep,
    "E4": run_e04_lemma31,
    "E5": run_e05_lemma34,
    "E6": run_e06_reduction_m2d2,
    "E6b": run_e06_reduction_general,
    "E7": run_e07_dp_scaling,
    "E8": run_e08_single_user_optimal,
    "E9": run_e09_delay_tradeoff,
    "E10": run_e10_adaptive,
    "E11a": run_e11_yellow_pages,
    "E11b": run_e11_signature_sweep,
    "E12": run_e12_bandwidth,
    "E13": run_e13_cellnet,
    "E13b": run_e13_reporting_tradeoff,
    "E14": run_e14_quasipartition2,
    "E15": run_e15_clustered,
    "E16": run_e16_four_thirds,
    "E17": run_e17_lifting,
    "E18": run_e18_qap,
    "E19": run_e19_adaptivity_gap,
    "E20": run_e20_imperfect_detection,
    "E21": run_e21_movement_sensitivity,
    "E23": run_e23_area_dimensioning,
    "E24": run_e24_correlation_sensitivity,
    "E25": run_e25_weighted_costs,
    "E26": run_e26_learning_curve,
    "E27": run_e27_batched_replanning,
    "E28": run_e28_timevary,
    "E29": run_e29_contention,
}


def _accepts_rng(function: Callable[..., ExperimentTable]) -> bool:
    """True when the experiment function takes an ``rng`` keyword."""
    try:
        return "rng" in inspect.signature(function).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        return False


def spawn_task_seed(seed: int, index: int) -> np.random.SeedSequence:
    """The ``index``-th child seed of a run, in O(1).

    Equivalent to ``np.random.SeedSequence(seed).spawn(index + 1)[index]``
    (``spawn(n)`` numbers children ``spawn_key=(0,) .. (n-1,)``), but builds
    the one child directly instead of materializing ``index + 1`` of them —
    the old scheme was O(n²) SeedSequence constructions across a run.
    ``tests/experiments/test_checkpoint.py`` pins byte-identical child
    states against the legacy spelling.
    """
    return np.random.SeedSequence(seed, spawn_key=(index,))


def _run_one(name: str, seed: Optional[int], index: int) -> ExperimentTable:
    """Run one experiment inside a per-experiment span."""
    function = EXPERIMENTS[name]
    with current_tracer().span(f"experiments.{name}", index=index):
        if seed is not None and _accepts_rng(function):
            child = spawn_task_seed(seed, index)
            return function(rng=np.random.default_rng(child))
        return function()


def _execute_experiment(
    task: Tuple[str, Optional[int], int, Optional[str]]
) -> ExperimentTable:
    """Run one experiment; the process-pool (and serial) task body.

    ``task`` is ``(name, seed, index, trace_path)``.  When ``seed`` is
    given, the experiment receives a generator built from the ``index``-th
    child of ``np.random.SeedSequence(seed)`` — the same child in serial and
    parallel runs, and independent of scheduling order.  When ``trace_path``
    is given the task installs its own JSONL tracer writing there — worker
    processes cannot share the parent's sink, so each writes a private file
    that :func:`run_experiments` merges on collect.
    """
    name, seed, index, trace_path = task
    if trace_path is None:
        return _run_one(name, seed, index)
    with use_tracer(Tracer(JsonlSink(trace_path))):
        return _run_one(name, seed, index)


#: Manifest schema tag for checkpoint directories (``--checkpoint``).
CHECKPOINT_SCHEMA = "repro-checkpoint/1"


def _execute_with_retries(
    task: Tuple[str, Optional[int], int, Optional[str]], retries: int
) -> ExperimentTable:
    """Run one task in-process, retrying up to ``retries`` extra attempts.

    Experiments seed themselves deterministically per task, so a retry of a
    transiently failed worker reproduces the exact table a clean first run
    would have produced.
    """
    attempts_left = max(0, retries)
    while True:
        try:
            return _execute_experiment(task)
        except Exception:
            if attempts_left <= 0:
                raise
            attempts_left -= 1
            current_tracer().count("runner.task_retries")


def _warn_serial_fallback(reason: BaseException) -> None:
    """Make ``-j N`` degradation visible: a warning plus an obs counter."""
    warnings.warn(
        "experiment process pool unavailable "
        f"({type(reason).__name__}: {reason}); falling back to serial "
        "execution — tables are identical but -j parallelism is lost",
        RuntimeWarning,
        stacklevel=3,
    )
    current_tracer().count("runner.serial_fallback")


def _task_filename(index: int, name: str) -> str:
    return f"task-{index:03d}-{name}.pkl"


def _write_manifest(
    directory: str,
    names: Sequence[str],
    seed: Optional[int],
    completed_files: Dict[int, str],
) -> None:
    """Atomically (re)write the checkpoint manifest."""
    import json
    import os

    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "names": list(names),
        "seed": seed,
        "completed": {
            str(index): completed_files[index] for index in sorted(completed_files)
        },
    }
    path = os.path.join(directory, "manifest.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


def _load_checkpoint(
    directory: str, names: Sequence[str], seed: Optional[int]
) -> Dict[int, ExperimentTable]:
    """Load completed tables from a checkpoint directory, validating fit.

    The manifest must describe the *same* invocation (experiment selection
    and seed); resuming a checkpoint written for a different run would
    silently mix incompatible tables, so that is an error rather than a
    best-effort merge.  Task files named by the manifest but missing on
    disk are simply re-run.
    """
    import json
    import os
    import pickle

    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(
            f"cannot resume: no checkpoint manifest at {manifest_path}"
        )
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("schema") != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"checkpoint manifest {manifest_path} has schema "
            f"{manifest.get('schema')!r}; expected {CHECKPOINT_SCHEMA!r}"
        )
    if manifest.get("names") != list(names) or manifest.get("seed") != seed:
        raise ValueError(
            "checkpoint manifest does not match this invocation (experiment "
            "selection or seed differ); use a fresh --checkpoint directory"
        )
    completed: Dict[int, ExperimentTable] = {}
    for key, filename in manifest.get("completed", {}).items():
        path = os.path.join(directory, filename)
        if not os.path.exists(path):
            continue
        with open(path, "rb") as handle:
            completed[int(key)] = pickle.load(handle)
    return completed


def run_experiments(
    names: Optional[Sequence[str]] = None,
    *,
    jobs: Optional[int] = 1,
    seed: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    task_retries: int = 1,
) -> List[ExperimentTable]:
    """Run the named experiments (all of them by default).

    ``jobs`` fans the experiments out over a ``ProcessPoolExecutor``
    (``None`` means one worker per CPU).  Output order always matches the
    selection order, and each task's seeding is deterministic, so
    ``jobs=N`` renders byte-identically to the serial run.  When the
    platform cannot provide a process pool the runner falls back to serial
    execution, emitting a ``RuntimeWarning`` and bumping the
    ``runner.serial_fallback`` obs counter so the degradation is visible.

    ``seed`` optionally rebases every rng-accepting experiment on a
    deterministically spawned child of ``np.random.SeedSequence(seed)``
    (:func:`spawn_task_seed`); by default each experiment keeps its own
    fixed internal seed.

    ``checkpoint_dir`` persists each completed task as a pickle next to a
    ``manifest.json`` (schema ``repro-checkpoint/1``) as soon as it
    finishes, so a crashed run loses at most the in-flight tasks.
    ``resume=True`` loads completed tables from that directory — after
    validating that the manifest describes the same selection and seed —
    and runs only what is missing; a resumed run renders byte-identically
    to an uninterrupted one.  ``task_retries`` bounds automatic in-process
    retries of failed tasks/workers (counted on ``runner.task_retries``).

    When a tracer is active (``repro --trace`` / :func:`repro.obs.tracing`)
    every experiment runs inside an ``experiments.<id>`` span.  Parallel
    workers cannot reach the parent's sink, so each task writes a private
    JSONL file which is merged back into the active tracer after collection
    — the merged trace is independent of scheduling order because counters
    and histograms are commutative aggregates and spans carry their ids.
    """
    selected = list(EXPERIMENTS) if names is None else list(names)
    for name in selected:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; known: {list(EXPERIMENTS)}")
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be a positive worker count or None, got {jobs}")
    if task_retries < 0:
        raise ValueError(f"task_retries must be non-negative, got {task_retries}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")

    tracer = current_tracer()
    results: Dict[int, ExperimentTable] = {}
    completed_files: Dict[int, str] = {}
    if checkpoint_dir is not None:
        import os

        os.makedirs(checkpoint_dir, exist_ok=True)
        if resume:
            results = _load_checkpoint(checkpoint_dir, selected, seed)
            completed_files = {
                index: _task_filename(index, selected[index]) for index in results
            }
            if results:
                tracer.count("runner.tasks_resumed", len(results))
        _write_manifest(checkpoint_dir, selected, seed, completed_files)

    serial = jobs == 1 or len(selected) - len(results) <= 1
    trace_dir: Optional[str] = None
    if tracer.enabled and not serial:
        import tempfile

        trace_dir = tempfile.mkdtemp(prefix="repro-trace-")
    tasks = [
        (
            name,
            seed,
            index,
            None if trace_dir is None else f"{trace_dir}/task-{index}.jsonl",
        )
        for index, name in enumerate(selected)
        if index not in results
    ]

    def record(index: int, table: ExperimentTable) -> None:
        results[index] = table
        if checkpoint_dir is not None:
            import os
            import pickle

            filename = _task_filename(index, selected[index])
            tmp = os.path.join(checkpoint_dir, filename + ".tmp")
            with open(tmp, "wb") as handle:
                pickle.dump(table, handle)
            os.replace(tmp, os.path.join(checkpoint_dir, filename))
            completed_files[index] = filename
            _write_manifest(checkpoint_dir, selected, seed, completed_files)

    def run_serially(remaining: Sequence[Tuple[str, Optional[int], int, Optional[str]]]) -> None:
        for task in remaining:
            if task[2] not in results:
                record(task[2], _execute_with_retries(task, task_retries))

    try:
        if serial:
            run_serially(tasks)
        else:
            try:
                from concurrent.futures import ProcessPoolExecutor, as_completed
                from concurrent.futures.process import BrokenProcessPool
            except ImportError as error:  # pragma: no cover - always bundled
                _warn_serial_fallback(error)
                run_serially(tasks)
            else:
                try:
                    workers = jobs if jobs is not None else None
                    if workers is not None:
                        workers = min(workers, len(tasks))
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        futures = {
                            pool.submit(_execute_experiment, task): task
                            for task in tasks
                        }
                        for future in as_completed(futures):
                            task = futures[future]
                            error = future.exception()
                            if error is None:
                                record(task[2], future.result())
                            elif isinstance(error, BrokenProcessPool):
                                raise error
                            elif task_retries < 1:
                                raise error
                            else:
                                # The worker died or the experiment raised:
                                # rerun in-process (deterministic per-task
                                # seeding makes the retry reproduce exactly
                                # what a clean first run would have built).
                                tracer.count("runner.task_retries")
                                record(
                                    task[2],
                                    _execute_with_retries(task, task_retries - 1),
                                )
                except (NotImplementedError, OSError, PermissionError,
                        BrokenProcessPool) as error:
                    # Sandboxed/embedded interpreters may not allow worker
                    # processes; the serial path produces identical tables.
                    _warn_serial_fallback(error)
                    run_serially(tasks)
    finally:
        if trace_dir is not None:
            _merge_worker_traces(tracer, tasks, trace_dir)
    return [results[index] for index in range(len(selected))]


def _merge_worker_traces(
    tracer: "Tracer",
    tasks: Sequence[Tuple[str, Optional[int], int, Optional[str]]],
    trace_dir: str,
) -> None:
    """Fold per-worker trace files back into the parent tracer, then clean up."""
    import os
    import shutil

    try:
        for _name, _seed, _index, trace_path in tasks:
            if trace_path is None or not os.path.exists(trace_path):
                continue
            for event in load_events(trace_path):
                tracer.absorb(event)
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)


def lint_attestation(
    targets: Sequence[str] = ("src", "tests", "benchmarks", "scripts"),
) -> "Dict[str, object]":
    """Run ``repro lint`` over ``targets`` and summarize the outcome.

    The reproduction report embeds this so a rendered report also records
    that the tree satisfied the exactness/reproducibility/traceability
    rules (RPL001–RPL006) at generation time.  When run from an installed
    package with no source checkout, ``targets`` is empty and ``clean`` is
    ``None`` — the attestation is "not applicable", not "passed".
    """
    from pathlib import Path

    from ..lint import find_project_root, load_config, run_lint

    root = find_project_root(Path.cwd()) or Path.cwd()
    present = [target for target in targets if (root / target).exists()]
    payload: Dict[str, object] = {
        "tool": "replint",
        "root": str(root),
        "targets": present,
        "clean": None,
        "counts": {},
        "violations": [],
    }
    if not present:
        return payload
    result = run_lint(
        [str(root / target) for target in present],
        config=load_config(root),
        root=root,
    )
    payload["clean"] = result.clean
    payload["files_checked"] = result.files_checked
    payload["counts"] = result.counts()
    payload["violations"] = [violation.to_json() for violation in result.violations]
    return payload


def save_report(
    directory: str,
    names: Optional[Sequence[str]] = None,
    lint_targets: Optional[Sequence[str]] = ("src", "tests", "benchmarks", "scripts"),
    *,
    jobs: Optional[int] = 1,
    trace: bool = True,
) -> List[str]:
    """Run experiments and persist each table as ``.txt`` and ``.csv``.

    Returns the paths written.  This is what keeps the plain-text report and
    plot-ready data in sync with one run.  Unless ``lint_targets`` is None,
    a ``lint.json`` attestation (the ``repro lint --json`` outcome for the
    source tree) is written alongside the tables, so the report records
    that it was produced from a zero-violation tree.  Unless ``trace`` is
    False, the run itself executes under a JSONL tracer and a
    ``trace.jsonl`` attestation lands next to ``lint.json`` — summarize it
    with ``repro trace <dir>/trace.jsonl``.
    """
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    written = []
    if trace:
        trace_path = os.path.join(directory, "trace.jsonl")
        with use_tracer(Tracer(JsonlSink(trace_path))):
            tables = run_experiments(names, jobs=jobs)
        written.append(trace_path)
    else:
        tables = run_experiments(names, jobs=jobs)
    for table in tables:
        stem = os.path.join(directory, table.experiment_id.lower())
        with open(stem + ".txt", "w") as handle:
            handle.write(table.render() + "\n")
        with open(stem + ".csv", "w") as handle:
            handle.write(table.to_csv())
        written.extend([stem + ".txt", stem + ".csv"])
    if lint_targets is not None:
        lint_path = os.path.join(directory, "lint.json")
        with open(lint_path, "w") as handle:
            json.dump(lint_attestation(lint_targets), handle, indent=2)
            handle.write("\n")
        written.append(lint_path)
    return written


def main(
    names: Optional[Sequence[str]] = None,
    *,
    jobs: Optional[int] = 1,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    task_retries: int = 1,
) -> str:
    """Render the selected experiments as one report string."""
    tables = run_experiments(
        names,
        jobs=jobs,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        task_retries=task_retries,
    )
    return render_all(tables)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    import sys

    print(main(sys.argv[1:] or None))
