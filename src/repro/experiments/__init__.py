"""The experiment harness: every table the reproduction reports."""

from __future__ import annotations

from .advanced import (
    run_e19_adaptivity_gap,
    run_e20_imperfect_detection,
    run_e21_movement_sensitivity,
    run_e23_area_dimensioning,
    run_e24_correlation_sensitivity,
    run_e25_weighted_costs,
    run_e26_learning_curve,
)
from .approximation import (
    run_e03_ratio_sweep,
    run_e08_single_user_optimal,
    run_e09_delay_tradeoff,
    run_e10_adaptive,
)
from .extensions import (
    run_e11_signature_sweep,
    run_e11_yellow_pages,
    run_e12_bandwidth,
    run_e15_clustered,
)
from .hardness_experiments import (
    run_e06_reduction_general,
    run_e06_reduction_m2d2,
    run_e14_quasipartition2,
    run_e17_lifting,
    run_e18_qap,
)
from .paper_claims import (
    run_e01_uniform_single_user,
    run_e02_lower_bound,
    run_e04_lemma31,
    run_e05_lemma34,
    run_e16_four_thirds,
)
from .runner import (
    CHECKPOINT_SCHEMA,
    EXPERIMENTS,
    lint_attestation,
    main,
    run_experiments,
    save_report,
    spawn_task_seed,
)
from .system import (
    heuristic_workload,
    run_e07_dp_scaling,
    run_e13_cellnet,
    run_e13_reporting_tradeoff,
    run_e27_batched_replanning,
    run_e28_timevary,
    run_e29_contention,
)
from .tables import ExperimentTable, render_all

__all__ = [
    "CHECKPOINT_SCHEMA",
    "EXPERIMENTS",
    "ExperimentTable",
    "heuristic_workload",
    "lint_attestation",
    "main",
    "render_all",
    "run_e01_uniform_single_user",
    "run_e02_lower_bound",
    "run_e03_ratio_sweep",
    "run_e04_lemma31",
    "run_e05_lemma34",
    "run_e06_reduction_general",
    "run_e06_reduction_m2d2",
    "run_e07_dp_scaling",
    "run_e08_single_user_optimal",
    "run_e09_delay_tradeoff",
    "run_e10_adaptive",
    "run_e11_signature_sweep",
    "run_e11_yellow_pages",
    "run_e12_bandwidth",
    "run_e13_cellnet",
    "run_e13_reporting_tradeoff",
    "run_e14_quasipartition2",
    "run_e15_clustered",
    "run_e16_four_thirds",
    "run_e17_lifting",
    "run_e18_qap",
    "run_e19_adaptivity_gap",
    "run_e20_imperfect_detection",
    "run_e21_movement_sensitivity",
    "run_e23_area_dimensioning",
    "run_e24_correlation_sensitivity",
    "run_e25_weighted_costs",
    "run_e26_learning_curve",
    "run_e27_batched_replanning",
    "run_e28_timevary",
    "run_e29_contention",
    "run_experiments",
    "save_report",
    "spawn_task_seed",
]
