"""Section 5 extension experiments (E11, E12, E15).

* E11 — Yellow Pages orderings compared (weight order degrades; the
  best-single-device order stays within the m-approximation), plus the
  Signature quorum sweep from k = 1 (Yellow Pages) to k = m (Conference
  Call).
* E12 — bandwidth-limited paging: EP as the per-round cap b tightens.
* E15 — the clustered-probability exhaustive scheme vs heuristic vs optimal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.ordering import by_device_probability, random_order
from ..distributions.generators import clustered_instance, instance_family
from ..solvers import get_solver
from .tables import ExperimentTable

# Registry dispatch: experiments name solvers, they never import the
# concrete functions (tests/experiments/test_solver_imports.py enforces it).
_exact = get_solver("exact")
_heuristic = get_solver("heuristic")
_bandwidth_heuristic = get_solver("bandwidth-heuristic")
_bandwidth_exact = get_solver("bandwidth-exact")
_clustered = get_solver("clustered")
_signature = get_solver("signature")
_signature_cuts = get_solver("signature-cuts")
_adaptive_quorum = get_solver("adaptive-quorum")
_yp_exact = get_solver("yellow-pages-exact")
_yp_greedy = get_solver("yellow-pages-greedy")
_yp_m_approx = get_solver("yellow-pages-m-approx")
_yp_weight_order = get_solver("yellow-pages-weight-order")
_yp_cuts = get_solver("yellow-pages-cuts")


def run_e11_yellow_pages(
    *,
    trials: int = 15,
    num_devices: int = 3,
    num_cells: int = 9,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Yellow Pages ordering comparison (mean EP, lower is better)."""
    if rng is None:
        rng = np.random.default_rng(11)
    table = ExperimentTable(
        "E11a",
        "Yellow Pages (find 1 of m): ordering heuristics vs the exact optimum",
        [
            "family",
            "optimal",
            "greedy_hit",
            "best_single_device",
            "weight_order",
            "random",
        ],
    )
    for family in ("dirichlet", "hotspot", "zipf"):
        optimal_values, greedy, single, weight, random_values = [], [], [], [], []
        for _ in range(trials):
            instance = instance_family(
                family, num_devices, num_cells, max_rounds, rng=rng
            )
            optimal_values.append(
                float(_yp_exact(instance).expected_paging)
            )
            greedy.append(float(_yp_greedy(instance).expected_paging))
            single.append(
                float(_yp_m_approx(instance).expected_paging)
            )
            weight.append(
                float(_yp_weight_order(instance).expected_paging)
            )
            random_values.append(
                float(
                    _yp_cuts(
                        instance, order=random_order(instance, rng)
                    ).expected_paging
                )
            )
        table.add_row(
            family,
            float(np.mean(optimal_values)),
            float(np.mean(greedy)),
            float(np.mean(single)),
            float(np.mean(weight)),
            float(np.mean(random_values)),
        )
    table.add_note("paper: the weight order is NOT constant-factor for Yellow Pages")
    table.add_note("best_single_device is the paper's m-approximation candidate")
    return table


def run_e11_signature_sweep(
    *,
    num_devices: int = 4,
    num_cells: int = 10,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """EP as the quorum k rises from Yellow Pages (1) to Conference Call (m)."""
    if rng is None:
        rng = np.random.default_rng(111)
    instance = instance_family(
        "hotspot", num_devices, num_cells, max_rounds, rng=rng
    )
    table = ExperimentTable(
        "E11b",
        "Signature problem: quorum sweep k = 1..m",
        ["quorum", "weight_order_ep", "best_single_device_ep", "adaptive_ep"],
    )
    for quorum in range(1, num_devices + 1):
        weight_value = float(
            _signature(instance, quorum=quorum).expected_paging
        )
        best_single = min(
            float(
                _signature_cuts(
                    instance,
                    order=by_device_probability(instance, device),
                    quorum=quorum,
                ).expected_paging
            )
            for device in range(num_devices)
        )
        adaptive_value = float(_adaptive_quorum(instance, quorum=quorum).expected_paging)
        table.add_row(quorum, weight_value, best_single, adaptive_value)
    table.add_note("k = m reduces to Conference Call; k = 1 to Yellow Pages")
    table.add_note("adaptive_ep replans the quorum search after every round")
    return table


def run_e12_bandwidth(
    *,
    num_devices: int = 2,
    num_cells: int = 12,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Bandwidth-limited paging: cost of tightening the per-round cap."""
    if rng is None:
        rng = np.random.default_rng(12)
    instance = instance_family(
        "zipf", num_devices, num_cells, num_cells, rng=rng
    )
    table = ExperimentTable(
        "E12",
        "Bandwidth cap b cells/round (Section 5 extension)",
        ["d", "b", "heuristic_ep", "optimal_ep", "uncapped_heuristic_ep"],
    )
    for d in (3, 4, 6):
        base = instance.with_max_rounds(d)
        uncapped = float(_heuristic(base).expected_paging)
        for b in sorted({num_cells, num_cells // 2, (num_cells + d - 1) // d}):
            if d * b < num_cells:
                continue
            capped = _bandwidth_heuristic(base, max_group_size=b)
            exact = _bandwidth_exact(base, max_group_size=b)
            table.add_row(
                d,
                b,
                float(capped.expected_paging),
                float(exact.expected_paging),
                uncapped,
            )
    table.add_note("tighter caps force flatter strategies and higher EP")
    return table


def run_e15_clustered(
    *,
    trials: int = 8,
    num_devices: int = 2,
    num_cells: int = 9,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """The clustered exhaustive scheme vs heuristic vs exact optimum."""
    if rng is None:
        rng = np.random.default_rng(15)
    table = ExperimentTable(
        "E15",
        "Clustered probabilities: exhaustive scheme (Section 5)",
        ["trial", "clusters", "scheme_ep", "heuristic_ep", "optimal_ep", "scheme_optimal"],
    )
    for trial in range(trials):
        instance = clustered_instance(
            num_devices, num_cells, max_rounds, rng=rng, num_levels=2
        )
        scheme = _clustered(instance)
        heuristic = _heuristic(instance)
        optimal = _exact(instance)
        table.add_row(
            trial,
            len(scheme.extras["clusters"]),
            float(scheme.expected_paging),
            float(heuristic.expected_paging),
            float(optimal.expected_paging),
            str(
                abs(float(scheme.expected_paging) - float(optimal.expected_paging))
                < 1e-9
            ),
        )
    table.add_note(
        "with exactly-repeating columns the cluster-symmetric search is optimal"
    )
    return table
