"""Section 5 extension experiments (E11, E12, E15).

* E11 — Yellow Pages orderings compared (weight order degrades; the
  best-single-device order stays within the m-approximation), plus the
  Signature quorum sweep from k = 1 (Yellow Pages) to k = m (Conference
  Call).
* E12 — bandwidth-limited paging: EP as the per-round cap b tightens.
* E15 — the clustered-probability exhaustive scheme vs heuristic vs optimal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.bandwidth import bandwidth_limited_heuristic, bandwidth_limited_optimal
from ..core.clustered import clustered_exhaustive
from ..core.exact import optimal_strategy
from ..core.heuristic import conference_call_heuristic
from ..core.ordering import by_device_probability, random_order
from ..core.signature import optimize_signature_over_order, signature_heuristic
from ..core.yellow_pages import (
    optimize_yellow_over_order,
    yellow_pages_greedy,
    yellow_pages_m_approximation,
    yellow_pages_weight_order,
)
from ..distributions.generators import clustered_instance, instance_family
from .tables import ExperimentTable


def run_e11_yellow_pages(
    *,
    trials: int = 15,
    num_devices: int = 3,
    num_cells: int = 9,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Yellow Pages ordering comparison (mean EP, lower is better)."""
    if rng is None:
        rng = np.random.default_rng(11)
    from ..core.exact_variants import optimal_yellow_pages

    table = ExperimentTable(
        "E11a",
        "Yellow Pages (find 1 of m): ordering heuristics vs the exact optimum",
        [
            "family",
            "optimal",
            "greedy_hit",
            "best_single_device",
            "weight_order",
            "random",
        ],
    )
    for family in ("dirichlet", "hotspot", "zipf"):
        optimal_values, greedy, single, weight, random_values = [], [], [], [], []
        for _ in range(trials):
            instance = instance_family(
                family, num_devices, num_cells, max_rounds, rng=rng
            )
            optimal_values.append(
                float(optimal_yellow_pages(instance).expected_paging)
            )
            greedy.append(float(yellow_pages_greedy(instance).expected_paging))
            single.append(
                float(yellow_pages_m_approximation(instance).expected_paging)
            )
            weight.append(
                float(yellow_pages_weight_order(instance).expected_paging)
            )
            random_values.append(
                float(
                    optimize_yellow_over_order(
                        instance, random_order(instance, rng)
                    ).expected_paging
                )
            )
        table.add_row(
            family,
            float(np.mean(optimal_values)),
            float(np.mean(greedy)),
            float(np.mean(single)),
            float(np.mean(weight)),
            float(np.mean(random_values)),
        )
    table.add_note("paper: the weight order is NOT constant-factor for Yellow Pages")
    table.add_note("best_single_device is the paper's m-approximation candidate")
    return table


def run_e11_signature_sweep(
    *,
    num_devices: int = 4,
    num_cells: int = 10,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """EP as the quorum k rises from Yellow Pages (1) to Conference Call (m)."""
    if rng is None:
        rng = np.random.default_rng(111)
    instance = instance_family(
        "hotspot", num_devices, num_cells, max_rounds, rng=rng
    )
    from ..core.adaptive_variants import adaptive_quorum_expected_paging

    table = ExperimentTable(
        "E11b",
        "Signature problem: quorum sweep k = 1..m",
        ["quorum", "weight_order_ep", "best_single_device_ep", "adaptive_ep"],
    )
    for quorum in range(1, num_devices + 1):
        weight_value = float(
            signature_heuristic(instance, quorum).expected_paging
        )
        best_single = min(
            float(
                optimize_signature_over_order(
                    instance, by_device_probability(instance, device), quorum
                ).expected_paging
            )
            for device in range(num_devices)
        )
        adaptive_value = float(adaptive_quorum_expected_paging(instance, quorum))
        table.add_row(quorum, weight_value, best_single, adaptive_value)
    table.add_note("k = m reduces to Conference Call; k = 1 to Yellow Pages")
    table.add_note("adaptive_ep replans the quorum search after every round")
    return table


def run_e12_bandwidth(
    *,
    num_devices: int = 2,
    num_cells: int = 12,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Bandwidth-limited paging: cost of tightening the per-round cap."""
    if rng is None:
        rng = np.random.default_rng(12)
    instance = instance_family(
        "zipf", num_devices, num_cells, num_cells, rng=rng
    )
    table = ExperimentTable(
        "E12",
        "Bandwidth cap b cells/round (Section 5 extension)",
        ["d", "b", "heuristic_ep", "optimal_ep", "uncapped_heuristic_ep"],
    )
    for d in (3, 4, 6):
        base = instance.with_max_rounds(d)
        uncapped = float(conference_call_heuristic(base).expected_paging)
        for b in sorted({num_cells, num_cells // 2, (num_cells + d - 1) // d}):
            if d * b < num_cells:
                continue
            capped = bandwidth_limited_heuristic(base, b)
            exact = bandwidth_limited_optimal(base, b)
            table.add_row(
                d,
                b,
                float(capped.expected_paging),
                float(exact.expected_paging),
                uncapped,
            )
    table.add_note("tighter caps force flatter strategies and higher EP")
    return table


def run_e15_clustered(
    *,
    trials: int = 8,
    num_devices: int = 2,
    num_cells: int = 9,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """The clustered exhaustive scheme vs heuristic vs exact optimum."""
    if rng is None:
        rng = np.random.default_rng(15)
    table = ExperimentTable(
        "E15",
        "Clustered probabilities: exhaustive scheme (Section 5)",
        ["trial", "clusters", "scheme_ep", "heuristic_ep", "optimal_ep", "scheme_optimal"],
    )
    for trial in range(trials):
        instance = clustered_instance(
            num_devices, num_cells, max_rounds, rng=rng, num_levels=2
        )
        scheme = clustered_exhaustive(instance)
        heuristic = conference_call_heuristic(instance)
        optimal = optimal_strategy(instance)
        table.add_row(
            trial,
            len(scheme.clusters),
            float(scheme.expected_paging),
            float(heuristic.expected_paging),
            float(optimal.expected_paging),
            str(
                abs(float(scheme.expected_paging) - float(optimal.expected_paging))
                < 1e-9
            ),
        )
    table.add_note(
        "with exactly-repeating columns the cluster-symmetric search is optimal"
    )
    return table
