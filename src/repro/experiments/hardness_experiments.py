"""NP-hardness reduction experiments (E6, E14, E17, E18).

Each reduction of Section 3 (and the Section 5 remarks) is validated on
batches of small instances by solving both sides exactly and checking the
iff-equivalence — the executable analogue of the paper's proofs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

import numpy as np

from ..core.expected_paging import expected_paging
from ..hardness.partition import has_partition, random_instance
from ..hardness.qap import (
    expected_paging_from_qap,
    formulate_qap,
    solve_qap_bruteforce,
    strategy_from_permutation,
)
from ..hardness.quasipartition import (
    has_quasipartition1,
    reduce_partition_to_quasipartition2,
    solve_quasipartition2,
)
from ..hardness.reductions import (
    lift_two_device_instance,
    reduce_multipartition_to_conference_call,
    reduce_quasipartition1_to_conference_call,
    unlift_strategy,
)
from ..distributions.generators import instance_family
from ..solvers import get_solver
from .tables import ExperimentTable

# Registry dispatch: experiments name solvers, they never import the
# concrete functions (tests/experiments/test_solver_imports.py enforces it).
_exact = get_solver("exact")


def _random_quasi_sizes(
    count: int, rng: np.random.Generator, *, magnitude: int = 12
):
    return [Fraction(int(rng.integers(1, magnitude + 1))) for _ in range(count)]


def run_e06_reduction_m2d2(
    *,
    trials: int = 20,
    num_sizes: int = 6,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Lemma 3.2: quasipartition exists iff min EP hits the lower bound."""
    if rng is None:
        rng = np.random.default_rng(6)
    table = ExperimentTable(
        "E6",
        "Lemma 3.2 reduction: Quasipartition1 <-> Conference Call (m=2, d=2)",
        ["trials", "yes_instances", "no_instances", "equivalences_hold"],
    )
    yes_count = no_count = agreements = 0
    for _ in range(trials):
        sizes = _random_quasi_sizes(num_sizes, rng)
        has_witness = has_quasipartition1(sizes)
        reduction = reduce_quasipartition1_to_conference_call(sizes)
        optimum = _exact(reduction.instance)
        hits_bound = optimum.expected_paging == reduction.lower_bound
        if has_witness:
            yes_count += 1
        else:
            no_count += 1
        if has_witness == hits_bound:
            agreements += 1
    table.add_row(trials, yes_count, no_count, agreements)
    table.add_note("equivalences_hold must equal trials")
    return table


def run_e06_reduction_general(
    *,
    configurations=((2, 2, 6), (3, 2, 4)),
    trials: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Lemma 3.5: the general gadget for fixed (m, d)."""
    if rng is None:
        rng = np.random.default_rng(66)
    from ..hardness.multipartition import multipartition_parameters, solve_multipartition

    table = ExperimentTable(
        "E6b",
        "Lemma 3.5 reduction: Multipartition <-> Conference Call (fixed m, d)",
        ["m", "d", "c", "trials", "equivalences_hold"],
    )
    for m, d, c in configurations:
        parameters = multipartition_parameters(m, d)
        agreements = 0
        for _ in range(trials):
            sizes = _random_quasi_sizes(c, rng)
            witness = solve_multipartition(sizes, parameters)
            reduction = reduce_multipartition_to_conference_call(sizes, m, d)
            optimum = _exact(reduction.instance)
            hits_bound = optimum.expected_paging == reduction.lower_bound
            if (witness is not None) == hits_bound:
                agreements += 1
        table.add_row(m, d, c, trials, agreements)
    table.add_note("equivalences_hold must equal trials in every row")
    return table


def run_e14_quasipartition2(
    *,
    trials: int = 15,
    num_sizes: int = 6,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Lemma 3.7: Partition <-> Quasipartition2 decision agreement."""
    if rng is None:
        rng = np.random.default_rng(14)
    table = ExperimentTable(
        "E14",
        "Lemma 3.7 reduction: Partition <-> Quasipartition2",
        ["trials", "yes_instances", "no_instances", "equivalences_hold"],
    )
    yes_count = no_count = agreements = 0
    for _ in range(trials):
        partition = random_instance(num_sizes, rng, magnitude=9)
        answer = has_partition(partition)
        reduction = reduce_partition_to_quasipartition2(partition)
        witness = solve_quasipartition2(reduction.sizes, reduction.parameters)
        if answer:
            yes_count += 1
        else:
            no_count += 1
        if answer == (witness is not None):
            agreements += 1
    table.add_row(trials, yes_count, no_count, agreements)
    table.add_note("equivalences_hold must equal trials")
    return table


def run_e17_lifting(
    *,
    trials: int = 6,
    num_cells: int = 5,
    lifted_devices: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """The Section 5 remark: solving (c, 2, d) via (c+1, m, d+1)."""
    if rng is None:
        rng = np.random.default_rng(17)
    table = ExperimentTable(
        "E17",
        "Section 5 lifting: (c, 2, d) -> (c+1, m, d+1)",
        ["trial", "first_group_is_extra", "induced_ep", "optimal_ep", "gap"],
    )
    for trial in range(trials):
        base = instance_family("dirichlet", 2, num_cells, 2, rng=rng)
        exact_rows = [
            [Fraction(p).limit_denominator(1000) for p in row] for row in base.rows
        ]
        exact_rows = [
            [p / sum(row) for p in row] for row in exact_rows
        ]
        base = type(base)(exact_rows, base.max_rounds, allow_zero=True)
        lifted = lift_two_device_instance(base, lifted_devices)
        lifted_optimum = _exact(lifted)
        first_is_extra = lifted_optimum.strategy.group(0) == frozenset({num_cells})
        base_optimum = _exact(base)
        optimal_ep = float(base_optimum.expected_paging)
        if first_is_extra:
            induced = unlift_strategy(lifted_optimum.strategy, num_cells)
            induced_ep = float(expected_paging(base, induced))
        else:
            induced_ep = float("nan")
        table.add_row(
            trial, str(first_is_extra), induced_ep, optimal_ep, induced_ep - optimal_ep
        )
    table.add_note(
        "with attraction a close to 1 the lifted optimum isolates the extra cell; "
        "the induced continuation is near-optimal for the base instance (the gap "
        "vanishes only in the limit, matching a first-order expansion in 1-a)"
    )
    return table


def run_e18_qap(
    *,
    trials: int = 6,
    num_cells: int = 6,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Section 5.1: QAP formulation agrees with the exact solver at d = c."""
    if rng is None:
        rng = np.random.default_rng(18)
    table = ExperimentTable(
        "E18",
        "QAP formulation (m = 2, d = c) vs exact Conference Call optimum",
        ["trial", "qap_ep", "exact_ep", "agree"],
    )
    for trial in range(trials):
        instance = instance_family("dirichlet", 2, num_cells, num_cells, rng=rng)
        formulation = formulate_qap(instance)
        permutation, objective = solve_qap_bruteforce(formulation)
        qap_ep = float(expected_paging_from_qap(formulation, objective))
        strategy = strategy_from_permutation(permutation)
        direct_ep = float(expected_paging(instance, strategy))
        exact_ep = float(_exact(instance).expected_paging)
        agree = abs(qap_ep - exact_ep) < 1e-9 and abs(direct_ep - qap_ep) < 1e-9
        table.add_row(trial, qap_ep, exact_ep, str(agree))
    table.add_note("every row must agree: the QAP objective is c - EP")
    return table
