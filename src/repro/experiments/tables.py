"""Plain-text table rendering for experiment output.

Every experiment returns an :class:`ExperimentTable` — a titled list of rows —
so benchmarks, examples, and EXPERIMENTS.md all print the same artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


@dataclass
class ExperimentTable:
    """A titled table of experiment rows."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Cell) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        """All values of one column (for assertions in tests/benchmarks)."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Cell]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_csv(self) -> str:
        """A CSV rendering (header row + data rows) for downstream plotting."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([_format_cell(value) for value in row])
        return buffer.getvalue()

    def render(self) -> str:
        """A fixed-width ASCII rendering."""
        header = [str(column) for column in self.columns]
        body = [[_format_cell(value) for value in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def render_all(tables: Sequence[ExperimentTable]) -> str:
    """Concatenate several tables with blank-line separators."""
    return "\n\n".join(table.render() for table in tables)
