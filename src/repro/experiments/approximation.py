"""Approximation-quality experiments (E3, E8, E9, E10).

* E3 — empirical heuristic/optimal ratio across instance families, against
  the e/(e-1) guarantee and the 320/317 lower bound.
* E8 — the m = 1 special case: the heuristic IS optimal.
* E9 — the delay/paging trade-off: EP strictly decreases with the budget d.
* E10 — adaptive vs oblivious expected paging (Section 5).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.ratio import RatioSummary, sweep_ratios
from ..distributions.generators import instance_family
from ..solvers import APPROXIMATION_FACTOR, get_solver
from .tables import ExperimentTable

# Registry dispatch: experiments name solvers, they never import the
# concrete functions (tests/experiments/test_solver_imports.py enforces it).
_exact = get_solver("exact")
_heuristic = get_solver("heuristic")
_single_user = get_solver("single-user")
_adaptive = get_solver("adaptive")


def run_e03_ratio_sweep(
    families: Sequence[str] = (
        "uniform",
        "dirichlet",
        "skewed-dirichlet",
        "zipf",
        "hotspot",
        "adversarial",
    ),
    *,
    shapes: Sequence[tuple] = ((2, 8, 2), (3, 7, 3)),
    trials: int = 30,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Measured heuristic/optimal ratios per family and shape vs the bounds.

    ``shapes`` lists ``(m, c, d)`` combinations; the defaults cover the
    NP-hard frontier (m=2, d=2) and a genuinely multi-round, multi-device
    case (m=3, d=3).
    """
    if rng is None:
        rng = np.random.default_rng(3)
    table = ExperimentTable(
        "E3",
        "Heuristic vs optimal: empirical approximation ratios",
        ["family", "m", "c", "d", "trials", "mean_ratio", "max_ratio", "e_bound"],
    )
    for num_devices, num_cells, max_rounds in shapes:
        for family in families:
            if family == "adversarial" and num_devices != 2:
                continue  # the gadget family is two-device by construction
            summary = RatioSummary.from_samples(
                sweep_ratios(
                    lambda generator: instance_family(
                        family, num_devices, num_cells, max_rounds, rng=generator
                    ),
                    trials=trials,
                    rng=rng,
                )
            )
            table.add_row(
                family,
                num_devices,
                num_cells,
                max_rounds,
                summary.count,
                summary.mean_ratio,
                summary.max_ratio,
                APPROXIMATION_FACTOR,
            )
    table.add_note("every max_ratio must stay below e/(e-1) ~ 1.5820 (Theorem 4.8)")
    table.add_note("the 320/317 ~ 1.00946 gadget shows ratios above 1 do occur")
    return table


def run_e08_single_user_optimal(
    *,
    trials: int = 25,
    num_cells: int = 9,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """For m = 1 the probability-sorted DP equals the exact optimum."""
    if rng is None:
        rng = np.random.default_rng(8)
    table = ExperimentTable(
        "E8",
        "m = 1: sorted-order DP is optimal (Goodman et al. / Rose-Yates)",
        ["family", "trials", "max_abs_gap"],
    )
    for family in ("dirichlet", "zipf", "geometric", "hotspot"):
        worst = 0.0
        for _ in range(trials):
            instance = instance_family(family, 1, num_cells, max_rounds, rng=rng)
            sorted_dp = _single_user(instance)
            exact = _exact(instance)
            worst = max(
                worst,
                abs(float(sorted_dp.expected_paging) - float(exact.expected_paging)),
            )
        table.add_row(family, trials, worst)
    table.add_note("max_abs_gap must be ~0: the heuristic is exact at m = 1")
    return table


def run_e09_delay_tradeoff(
    *,
    num_devices: int = 2,
    num_cells: int = 10,
    family: str = "zipf",
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Optimal and heuristic EP as the delay budget grows from 1 to c."""
    if rng is None:
        rng = np.random.default_rng(9)
    base = instance_family(family, num_devices, num_cells, num_cells, rng=rng)
    table = ExperimentTable(
        "E9",
        "Delay/paging trade-off: EP falls as the round budget d grows",
        ["d", "optimal_ep", "heuristic_ep", "blanket"],
    )
    for d in range(1, num_cells + 1):
        instance = base.with_max_rounds(d)
        optimal = _exact(instance)
        heuristic = _heuristic(instance)
        table.add_row(
            d,
            float(optimal.expected_paging),
            float(heuristic.expected_paging),
            num_cells,
        )
    table.add_note("Section 2: longer strategies strictly lower expected paging")
    return table


def run_e10_adaptive(
    families: Sequence[str] = ("dirichlet", "hotspot", "zipf"),
    *,
    trials: int = 10,
    num_devices: int = 2,
    num_cells: int = 8,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Adaptive replanning vs the oblivious heuristic and the true optimum."""
    if rng is None:
        rng = np.random.default_rng(10)
    table = ExperimentTable(
        "E10",
        "Adaptive vs oblivious (Section 5 extension)",
        [
            "family",
            "trials",
            "mean_oblivious",
            "mean_adaptive",
            "mean_optimal_oblivious",
            "adaptive_wins",
        ],
    )
    for family in families:
        oblivious, adaptive, optimal_values, wins = [], [], [], 0
        for _ in range(trials):
            instance = instance_family(
                family, num_devices, num_cells, max_rounds, rng=rng
            )
            heuristic_value = float(
                _heuristic(instance).expected_paging
            )
            adaptive_value = float(_adaptive(instance).expected_paging)
            optimal_value = float(_exact(instance).expected_paging)
            oblivious.append(heuristic_value)
            adaptive.append(adaptive_value)
            optimal_values.append(optimal_value)
            if adaptive_value <= heuristic_value + 1e-9:
                wins += 1
        table.add_row(
            family,
            trials,
            float(np.mean(oblivious)),
            float(np.mean(adaptive)),
            float(np.mean(optimal_values)),
            wins,
        )
    table.add_note(
        "adaptivity can beat even the optimal oblivious strategy; its worst-case "
        "ratio is the paper's open problem"
    )
    return table
