"""Advanced experiments beyond the paper's explicit claims (E19, E20).

* E19 — the adaptivity gap: exact optimal oblivious vs exact optimal
  adaptive expected paging.  The paper leaves adaptive analysis open
  (Section 5); this measures how much adaptivity actually buys, and how
  close the cheap replanning heuristic comes to the adaptive optimum.
* E20 — imperfect detection (Section 5's collision model): cyclic-strategy
  cost as detection degrades, and the m = 1 invariance result (the optimal
  ordering does not depend on the detection probability).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.imperfect import (
    CollisionDetection,
    ConstantDetection,
    expected_paging_imperfect_monte_carlo,
    expected_paging_imperfect_single,
)
from ..core.strategy import Strategy
from ..distributions.generators import instance_family
from ..solvers import get_solver
from .tables import ExperimentTable

# Registry dispatch: experiments name solvers, they never import the
# concrete functions (tests/experiments/test_solver_imports.py enforces it).
_exact = get_solver("exact")
_heuristic = get_solver("heuristic")
_single_user = get_solver("single-user")
_adaptive = get_solver("adaptive")
_adaptive_optimal = get_solver("adaptive-optimal")
_weighted_heuristic = get_solver("weighted-heuristic")
_weighted_weight_order = get_solver("weighted-weight-order")
_weighted_exact = get_solver("weighted-exact")


def run_e21_movement_sensitivity(
    mobility_levels: Sequence[float] = (0.0, 0.05, 0.15, 0.3),
    *,
    num_devices: int = 2,
    num_cells: int = 10,
    trials: int = 4_000,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """How the model degrades when devices move between rounds (E21).

    Compares a short (d = 2) and a long (d = 5) strategy: longer searches
    save more cells under stationarity but expose more rounds to movement.
    """
    from ..analysis.sensitivity import measure_movement_sensitivity

    if rng is None:
        rng = np.random.default_rng(21)
    base = instance_family("zipf", num_devices, num_cells, num_cells, rng=rng)
    short_plan = _heuristic(base.with_max_rounds(2))
    long_plan = _heuristic(base.with_max_rounds(5))
    table = ExperimentTable(
        "E21",
        "Movement during the search: cost inflation and miss rate",
        [
            "mobility",
            "d2_cells",
            "d2_miss_rate",
            "d5_cells",
            "d5_miss_rate",
            "d2_inflation",
            "d5_inflation",
        ],
    )
    for mobility in mobility_levels:
        short = measure_movement_sensitivity(
            base.with_max_rounds(2),
            short_plan.strategy,
            mobility,
            trials=trials,
            rng=rng,
        )
        long = measure_movement_sensitivity(
            base.with_max_rounds(5),
            long_plan.strategy,
            mobility,
            trials=trials,
            rng=rng,
        )
        table.add_row(
            mobility,
            short.mean_cells_paged,
            short.miss_rate,
            long.mean_cells_paged,
            long.miss_rate,
            short.cost_inflation,
            long.cost_inflation,
        )
    table.add_note(
        "at mobility 0 the simulation matches Lemma 2.1; as mobility grows "
        "the longer strategy's stationarity advantage erodes first"
    )
    return table


def run_e23_area_dimensioning(
    area_counts: Sequence[int] = (1, 2, 4, 8, 16),
    call_rates: Sequence[float] = (0.05, 0.4),
    *,
    radius: int = 3,
    horizon: int = 400,
    seed: int = 23,
) -> ExperimentTable:
    """Location-area dimensioning: the reporting/paging trade-off (E23).

    The intro's cited LA-design problem: small areas cost reports, big areas
    cost paging.  Which dominates depends on the call rate — at low rates
    coarse areas win, at high rates fine areas win — and the paper's
    multi-round paging lowers the total everywhere (it cheapens exactly the
    arm of the trade-off that grows with area size).
    """
    from ..cellnet.planning import best_operating_point, sweep_location_area_sizes

    table = ExperimentTable(
        "E23",
        "Location-area dimensioning: total wireless cost vs LA granularity",
        [
            "call_rate",
            "areas",
            "reports",
            "blanket_paged",
            "blanket_total",
            "heuristic_total",
        ],
    )
    for rate in call_rates:
        blanket = sweep_location_area_sizes(
            radius=radius,
            area_counts=area_counts,
            horizon=horizon,
            call_rate=rate,
            pager="blanket",
            seed=seed,
        )
        heuristic = sweep_location_area_sizes(
            radius=radius,
            area_counts=area_counts,
            horizon=horizon,
            call_rate=rate,
            pager="heuristic",
            seed=seed,
        )
        for flat, staged in zip(blanket, heuristic):
            table.add_row(
                rate,
                flat.num_areas,
                flat.reports,
                flat.cells_paged,
                flat.total_wireless,
                staged.total_wireless,
            )
        best_flat = best_operating_point(blanket)
        best_staged = best_operating_point(heuristic)
        table.add_note(
            f"rate {rate}: best blanket granularity {best_flat.num_areas} areas "
            f"({best_flat.total_wireless} msgs); best heuristic "
            f"{best_staged.num_areas} areas ({best_staged.total_wireless} msgs)"
        )
    table.add_note(
        "low call rates favor coarse areas (reports dominate), high rates "
        "favor fine areas (paging dominates); the heuristic lowers the total "
        "at every operating point"
    )
    return table


def run_e24_correlation_sensitivity(
    cohesion_levels: Sequence[float] = (0.0, 0.2, 0.5, 0.8),
    *,
    num_devices: int = 3,
    num_cells: int = 10,
    max_rounds: int = 3,
    trials: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """The independence assumption under correlated participants (E24).

    Plans on the (correct) marginals assuming independence, then evaluates
    under the true anchored-mixture law.  Positive correlation makes the
    search *cheaper* than the model predicts — co-located participants are
    all found at once — so the Lemma 2.1 value is a conservative promise.
    """
    from ..distributions.correlated import anchored_population, model_error

    if rng is None:
        rng = np.random.default_rng(24)
    table = ExperimentTable(
        "E24",
        "Correlated participants: believed (independent) vs true expected paging",
        ["cohesion", "believed_ep", "true_ep", "true_over_believed"],
    )
    for cohesion in cohesion_levels:
        believed_values, true_values = [], []
        for _ in range(trials):
            population = anchored_population(
                num_devices, num_cells, cohesion, rng=rng
            )
            instance = population.marginal_instance(max_rounds)
            plan = _heuristic(instance)
            believed, true = model_error(population, plan.strategy, max_rounds)
            believed_values.append(believed)
            true_values.append(true)
        mean_believed = float(np.mean(believed_values))
        mean_true = float(np.mean(true_values))
        table.add_row(
            cohesion,
            mean_believed,
            mean_true,
            mean_true / mean_believed if mean_believed else 1.0,
        )
    table.add_note(
        "at cohesion 0 the model is exact; positive correlation only helps "
        "(devices cluster, searches stop earlier), so independence errs safe"
    )
    return table


def run_e25_weighted_costs(
    cost_skews: Sequence[float] = (1.0, 3.0, 10.0),
    *,
    num_devices: int = 2,
    num_cells: int = 8,
    max_rounds: int = 3,
    trials: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Heterogeneous paging costs (E25, the §5.1 Search Theory direction).

    Cells get random costs in ``[1, skew]``.  Compares the density ordering
    (mass per cost) against the paper's pure weight ordering, both with
    optimal weighted cuts, against the exact weighted optimum.
    """
    if rng is None:
        rng = np.random.default_rng(25)
    table = ExperimentTable(
        "E25",
        "Weighted paging costs: density vs weight ordering vs exact optimum",
        ["cost_skew", "trials", "density_ep", "weight_order_ep", "optimal_ep"],
    )
    for skew in cost_skews:
        density_values, weight_values, optimal_values = [], [], []
        for _ in range(trials):
            instance = instance_family(
                "hotspot", num_devices, num_cells, max_rounds, rng=rng
            )
            costs = [float(v) for v in rng.uniform(1.0, skew, size=num_cells)]
            density_values.append(
                float(_weighted_heuristic(instance, costs=costs).expected_paging)
            )
            weight_values.append(
                float(
                    _weighted_weight_order(instance, costs=costs).expected_paging
                )
            )
            optimal_values.append(
                float(_weighted_exact(instance, costs=costs).expected_paging)
            )
        table.add_row(
            skew,
            trials,
            float(np.mean(density_values)),
            float(np.mean(weight_values)),
            float(np.mean(optimal_values)),
        )
    table.add_note(
        "at skew 1 the orders coincide; as costs spread, ordering by mass "
        "per cost preserves near-optimality while the pure weight order drifts"
    )
    return table


def run_e26_learning_curve(
    *,
    radius: int = 3,
    num_devices: int = 5,
    horizon: int = 1_200,
    call_rate: float = 0.1,
    buckets: int = 4,
    seed: int = 26,
) -> ExperimentTable:
    """Profile learning over time (E26): paging cost per call by era.

    The simulator estimates each device's location distribution online from
    observed positions (the paper's cited profile-based approach).  Early
    searches run on nearly-uniform estimates; later ones on converged
    profiles.  Bucketing the per-call costs by time shows the optimizer's
    savings materialize as the estimates sharpen — while the blanket
    baseline, which ignores the profiles, stays flat.
    """
    from ..cellnet.location_areas import LocationAreaPlan
    from ..cellnet.mobility import GravityMobility
    from ..cellnet.simulator import CellularSimulator, SimulationConfig
    from ..cellnet.topology import CellTopology

    table = ExperimentTable(
        "E26",
        "Online profile learning: mean cells paged per call, by time bucket",
        ["bucket", "window", "online_prior", "uniform_prior", "calls"],
    )
    records = {}
    for prior_mode in ("online", "uniform"):
        rng = np.random.default_rng(seed)
        topology = CellTopology.hexagonal_disk(radius)
        plan = LocationAreaPlan.by_bfs(topology, 4)
        attraction = np.random.default_rng(seed + 1).uniform(
            0.3, 4.0, size=topology.num_cells
        )
        models = [
            GravityMobility(topology, attraction) for _ in range(num_devices)
        ]
        config = SimulationConfig(
            horizon=horizon,
            call_rate=call_rate,
            max_paging_rounds=3,
            reporting="la",
            pager="heuristic",
            prior_mode=prior_mode,
        )
        simulator = CellularSimulator(topology, plan, models, config, rng=rng)
        records[prior_mode] = simulator.run().metrics.call_records
    width = horizon // buckets
    for bucket in range(buckets):
        lo, hi = bucket * width, (bucket + 1) * width
        rows = {}
        for prior_mode, calls in records.items():
            window = [
                record.cells_paged / max(1, record.participants)
                for record in calls
                if lo <= record.time < hi
            ]
            rows[prior_mode] = (
                float(np.mean(window)) if window else float("nan"),
                len(window),
            )
        table.add_row(
            bucket + 1,
            f"[{lo},{hi})",
            rows["online"][0],
            rows["uniform"][0],
            rows["online"][1],
        )
    online_total = float(
        np.mean(
            [r.cells_paged / max(1, r.participants) for r in records["online"]]
        )
    )
    uniform_total = float(
        np.mean(
            [r.cells_paged / max(1, r.participants) for r in records["uniform"]]
        )
    )
    table.add_note(
        f"overall: online prior {online_total:.3f} cells/participant vs "
        f"uniform prior {uniform_total:.3f} — the learned profiles are what "
        "the optimizer's savings are made of"
    )
    return table


def run_e19_adaptivity_gap(
    families: Sequence[str] = ("dirichlet", "hotspot", "adversarial"),
    *,
    trials: int = 8,
    num_devices: int = 2,
    num_cells: int = 7,
    max_rounds: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Optimal oblivious vs optimal adaptive vs the replanning heuristic."""
    if rng is None:
        rng = np.random.default_rng(19)
    table = ExperimentTable(
        "E19",
        "Adaptivity gap: optimal oblivious / optimal adaptive EP",
        [
            "family",
            "trials",
            "mean_oblivious_opt",
            "mean_adaptive_opt",
            "mean_gap",
            "max_gap",
            "heuristic_vs_adaptive_opt",
        ],
    )
    for family in families:
        oblivious_values, adaptive_values, gaps, heuristic_excess = [], [], [], []
        for _ in range(trials):
            instance = instance_family(
                family, num_devices, num_cells, max_rounds, rng=rng
            )
            oblivious = float(_exact(instance).expected_paging)
            adaptive = float(_adaptive_optimal(instance).expected_paging)
            replanner = float(_adaptive(instance).expected_paging)
            oblivious_values.append(oblivious)
            adaptive_values.append(adaptive)
            gaps.append(oblivious / adaptive if adaptive > 0 else 1.0)
            heuristic_excess.append(replanner / adaptive if adaptive > 0 else 1.0)
        table.add_row(
            family,
            trials,
            float(np.mean(oblivious_values)),
            float(np.mean(adaptive_values)),
            float(np.mean(gaps)),
            float(np.max(gaps)),
            float(np.mean(heuristic_excess)),
        )
    table.add_note(
        "gap >= 1 always; its worst case is the open problem of Section 5"
    )
    return table


def run_e20_imperfect_detection(
    detection_levels: Sequence[float] = (1.0, 0.9, 0.7, 0.5),
    *,
    num_cells: int = 8,
    max_rounds: int = 3,
    trials: int = 3_000,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """Cyclic-paging cost as the detection probability degrades."""
    if rng is None:
        rng = np.random.default_rng(20)
    single = instance_family("zipf", 1, num_cells, max_rounds, rng=rng)
    single_plan = _single_user(single)
    multi = instance_family("hotspot", 3, num_cells, max_rounds, rng=rng)
    multi_plan = _heuristic(multi)
    multi_blanket = Strategy.single_round(num_cells)

    table = ExperimentTable(
        "E20",
        "Imperfect detection (Section 5 collision model): cyclic paging cost",
        [
            "q",
            "single_closed_form",
            "single_monte_carlo",
            "multi_heuristic_mc",
            "multi_blanket_mc",
        ],
    )
    for q in detection_levels:
        closed = expected_paging_imperfect_single(single, single_plan.strategy, q)
        simulated = expected_paging_imperfect_monte_carlo(
            single,
            single_plan.strategy,
            ConstantDetection(q),
            trials=trials,
            rng=rng,
        )
        collision = CollisionDetection(q, collision_factor=0.6)
        multi_heuristic = expected_paging_imperfect_monte_carlo(
            multi, multi_plan.strategy, collision, trials=trials, rng=rng
        )
        blanket_cost = expected_paging_imperfect_monte_carlo(
            multi, multi_blanket, collision, trials=trials, rng=rng
        )
        table.add_row(q, closed, simulated, multi_heuristic, blanket_cost)
    table.add_note(
        "m = 1: EP = c(1-q)/q + prefix term, so the optimal ordering is "
        "q-invariant; collisions penalize blanket paging (every co-located "
        "response collides at once)"
    )
    return table
