"""System-level experiments (E7, E13, E27).

* E7 — the Theorem 4.8 complexity claim: heuristic runtime grows as
  ``O(c (m + d c))``.  The benchmark measures wall time; this module supplies
  the workload grid and a normalized-cost check.
* E13 — the end-to-end cellular simulation: conference calls in a GSM-style
  system under blanket LA paging vs the paper's heuristic vs the adaptive
  variant, with identical mobility and call streams.
* E27 — batched replanning throughput: per-plan cost of the batched planner
  kernel (``heuristic-batch``) vs the per-instance vectorized planner, with
  a bit-identity check per batch.
* E29 — heavy-traffic contention: concurrent call setups competing for
  finite per-cell paging channels (the event-driven engine), measuring
  blocking probability and setup-latency percentiles vs offered load and
  carrier count.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..cellnet.location_areas import LocationAreaPlan
from ..cellnet.mobility import GravityMobility
from ..cellnet.simulator import CellularSimulator, SimulationConfig
from ..cellnet.timevary import hmy_fixed_point, transition_matrix
from ..cellnet.topology import CellTopology
from ..distributions.generators import dirichlet_instance
from ..solvers import get_solver
from .tables import ExperimentTable

# Registry dispatch: experiments name solvers, they never import the
# concrete functions (tests/experiments/test_solver_imports.py enforces it).
_heuristic = get_solver("heuristic")


def heuristic_workload(
    num_devices: int, num_cells: int, max_rounds: int, *, seed: int = 7
):
    """A deterministic instance for timing runs."""
    rng = np.random.default_rng(seed)
    return dirichlet_instance(num_devices, num_cells, max_rounds, rng=rng)


def run_e07_dp_scaling(
    cell_counts: Sequence[int] = (20, 40, 80, 160),
    *,
    num_devices: int = 3,
    max_rounds: int = 5,
    repeats: int = 3,
) -> ExperimentTable:
    """Measured heuristic runtime vs the c(m + dc) work term."""
    table = ExperimentTable(
        "E7",
        "Theorem 4.8 scaling: heuristic time vs c(m + dc)",
        ["c", "m", "d", "seconds", "work_term", "ns_per_unit"],
    )
    for c in cell_counts:
        instance = heuristic_workload(num_devices, c, max_rounds)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _heuristic(instance)
            best = min(best, time.perf_counter() - start)
        work = c * (num_devices + max_rounds * c)
        table.add_row(
            c,
            num_devices,
            max_rounds,
            best,
            work,
            best / work * 1e9,
        )
    table.add_note(
        "ns_per_unit should stay roughly flat: time tracks the O(c(m+dc)) term"
    )
    return table


def run_e13_cellnet(
    *,
    radius: int = 3,
    num_devices: int = 6,
    num_areas: int = 4,
    horizon: int = 600,
    call_rate: float = 0.08,
    max_rounds: int = 3,
    seed: int = 13,
) -> ExperimentTable:
    """Blanket vs heuristic vs adaptive paging in the simulated network.

    All three policies see identical topologies, mobility streams, and call
    arrivals (same seed), so the paging columns are directly comparable.
    """
    table = ExperimentTable(
        "E13",
        "End-to-end cellular simulation: link usage per paging policy",
        [
            "pager",
            "calls",
            "cells_per_call",
            "rounds_per_call",
            "reports",
            "total_wireless",
            "saving_vs_blanket",
        ],
    )
    rows = {}
    for pager in ("blanket", "heuristic", "adaptive"):
        rng = np.random.default_rng(seed)
        topology = CellTopology.hexagonal_disk(radius)
        plan = LocationAreaPlan.by_bfs(topology, num_areas)
        attraction = np.random.default_rng(seed + 1).uniform(
            0.5, 3.0, size=topology.num_cells
        )
        models = [
            GravityMobility(topology, attraction) for _ in range(num_devices)
        ]
        config = SimulationConfig(
            horizon=horizon,
            call_rate=call_rate,
            max_paging_rounds=max_rounds,
            reporting="la",
            pager=pager,
        )
        simulator = CellularSimulator(topology, plan, models, config, rng=rng)
        report = simulator.run()
        rows[pager] = report.metrics
    blanket_cells = rows["blanket"].mean_cells_per_call
    for pager in ("blanket", "heuristic", "adaptive"):
        metrics = rows[pager]
        saving = (
            0.0
            if blanket_cells == 0
            else 1.0 - metrics.mean_cells_per_call / blanket_cells
        )
        table.add_row(
            pager,
            metrics.calls_handled,
            metrics.mean_cells_per_call,
            metrics.mean_rounds_per_call,
            metrics.report_messages,
            metrics.total_wireless_messages,
            saving,
        )
    table.add_note(
        "the Section 1.1 motivation: multi-round paging cuts cells paged per "
        "call at the cost of delay (rounds_per_call)"
    )
    return table


def run_e27_batched_replanning(
    batch_sizes: Sequence[int] = (32, 128, 512),
    *,
    num_devices: int = 4,
    num_cells: int = 120,
    max_rounds: int = 5,
    seed: int = 27,
) -> ExperimentTable:
    """Per-plan cost of batched vs per-instance planning (ROADMAP item 2).

    One family of same-shape dirichlet instances is planned two ways:
    a per-instance loop over the vectorized planner (``heuristic-fast``)
    and one ``run_batch`` call into the batched kernel
    (``heuristic-batch``, whichever backend ``auto`` resolves).  The
    ``identical`` column re-checks, per batch, that every batched plan
    (order, group sizes, value) matches its scalar counterpart exactly —
    the speedup never buys a different answer.
    """
    scalar = get_solver("heuristic-fast")
    batched = get_solver("heuristic-batch")
    table = ExperimentTable(
        "E27",
        "Batched replanning throughput: one kernel call vs a planner loop",
        ["batch", "loop_ms_per_plan", "batch_ms_per_plan", "speedup", "identical"],
    )
    rng = np.random.default_rng(seed)
    instances = [
        dirichlet_instance(num_devices, num_cells, max_rounds, rng=rng)
        for _ in range(max(batch_sizes))
    ]
    for batch_size in batch_sizes:
        stack = instances[:batch_size]
        start = time.perf_counter()
        loop_results = [scalar(instance) for instance in stack]
        loop_seconds = time.perf_counter() - start
        start = time.perf_counter()
        plans = batched.run_batch(stack)
        batch_seconds = time.perf_counter() - start
        identical = all(
            plans.result(i).order == loop_results[i].extras["order"]
            and plans.result(i).group_sizes == loop_results[i].extras["group_sizes"]
            and plans.values[i].item() == loop_results[i].expected_paging
            for i in range(batch_size)
        )
        table.add_row(
            batch_size,
            loop_seconds / batch_size * 1e3,
            batch_seconds / batch_size * 1e3,
            loop_seconds / max(batch_seconds, 1e-12),
            identical,
        )
    table.add_note(
        "identical=True per row: the batched kernel reproduces the scalar "
        "planner's orders, cuts, and values bit for bit (backend "
        f"{get_solver('heuristic-batch').run_batch(instances[:1]).backend!r})"
    )
    return table


def run_e13_reporting_tradeoff(
    *,
    radius: int = 3,
    num_devices: int = 5,
    horizon: int = 500,
    call_rate: float = 0.08,
    seed: int = 131,
) -> ExperimentTable:
    """The reporting/paging trade-off across update policies (Section 1.1)."""
    table = ExperimentTable(
        "E13b",
        "Reporting vs paging trade-off across update policies",
        ["reporting", "reports", "cells_paged", "total_wireless"],
    )
    for reporting in ("never", "timer", "la", "distance", "always"):
        rng = np.random.default_rng(seed)
        topology = CellTopology.hexagonal_disk(radius)
        plan = LocationAreaPlan.by_bfs(topology, 4)
        attraction = np.random.default_rng(seed + 1).uniform(
            0.5, 3.0, size=topology.num_cells
        )
        models = [
            GravityMobility(topology, attraction) for _ in range(num_devices)
        ]
        config = SimulationConfig(
            horizon=horizon,
            call_rate=call_rate,
            max_paging_rounds=3,
            reporting=reporting,
            pager="heuristic",
        )
        simulator = CellularSimulator(topology, plan, models, config, rng=rng)
        report = simulator.run()
        metrics = report.metrics
        table.add_row(
            reporting,
            metrics.report_messages,
            metrics.cells_paged,
            metrics.total_wireless_messages,
        )
    table.add_note(
        "never-report maximizes paging, always-report maximizes updates; the "
        "LA policy sits between (the balance Section 1.1 describes)"
    )
    return table


def run_e28_timevary(
    *,
    radius: int = 3,
    num_devices: int = 5,
    horizon: int = 600,
    call_rate: float = 0.08,
    distance_threshold: int = 3,
    max_rounds: int = 3,
    seed: int = 28,
) -> ExperimentTable:
    """Time-varying operation: conditional priors and the HMY fixed point.

    Part one replays one seeded distance-reporting workload (identical
    topology, mobility streams, and call arrivals) under three priors —
    uniform (no knowledge), online visit counts (the static profile the
    paper cites), and conditional (matrix-power belief evolved from each
    device's last successful report, docs/timevary.md) — and compares
    expected cells paged per call.  Part two runs the Hajek–Mitzel–Yang
    registration/paging iteration for both policy families and records the
    full cost trajectory, one row per step, so convergence (monotone
    non-increasing combined cost) is visible in the output.
    """
    table = ExperimentTable(
        "E28",
        "Time-varying operation: conditional priors and the HMY iteration",
        ["row", "value", "detail"],
    )
    topology = CellTopology.hexagonal_disk(radius)
    plan = LocationAreaPlan.by_bfs(topology, 4)
    attraction = np.random.default_rng(seed + 1).uniform(
        0.5, 3.0, size=topology.num_cells
    )
    cells_per_call = {}
    for prior_mode in ("uniform", "online", "conditional"):
        rng = np.random.default_rng(seed)
        models = [
            GravityMobility(topology, attraction) for _ in range(num_devices)
        ]
        config = SimulationConfig(
            horizon=horizon,
            call_rate=call_rate,
            max_paging_rounds=max_rounds,
            reporting="distance",
            distance_threshold=distance_threshold,
            pager="heuristic-batch",
            prior_mode=prior_mode,
        )
        simulator = CellularSimulator(topology, plan, models, config, rng=rng)
        metrics = simulator.run().metrics
        cells_per_call[prior_mode] = metrics.mean_cells_per_call
        table.add_row(
            f"paging prior={prior_mode}",
            metrics.mean_cells_per_call,
            f"calls={metrics.calls_handled} fallbacks={metrics.fallback_searches}",
        )
    matrix = transition_matrix(
        GravityMobility(topology, attraction), topology
    )
    hmy_candidates = {"timer": (2, 5, 10, 20), "distance": (1, 2, 3, 4)}
    for kind, candidates in hmy_candidates.items():
        result = hmy_fixed_point(
            topology,
            matrix,
            kind=kind,
            candidates=candidates,
            max_rounds=max_rounds,
            call_rate=call_rate,
        )
        for step in result.trajectory:
            table.add_row(
                f"hmy[{kind}] iter {step.iteration} ({step.phase})",
                step.evaluation.combined_cost,
                f"threshold={step.evaluation.threshold} "
                f"paging/call={step.evaluation.paging_per_call:.3f} "
                f"report_rate={step.evaluation.report_rate:.4f}",
            )
        table.add_row(
            f"hmy[{kind}] fixed point",
            result.evaluation.combined_cost,
            f"threshold={result.threshold} converged={result.converged}",
        )
    saving = 1.0 - cells_per_call["conditional"] / cells_per_call["online"]
    table.add_note(
        "conditional priors page "
        f"{saving:.1%} fewer cells per call than the static online profile "
        "on the same seeded workload (same calls, same movement)"
    )
    table.add_note(
        "each hmy trajectory is monotone non-increasing: alternating "
        "best-response registration against re-planned paging can only "
        "improve the combined per-step wireless cost (HMY, PAPERS.md)"
    )
    return table


def run_e29_contention(
    offered_loads: Sequence[float] = (0.25, 0.5, 1.0, 1.5),
    carrier_counts: Sequence[int] = (1, 2, 4),
    *,
    radius: int = 2,
    num_devices: int = 8,
    num_areas: int = 3,
    horizon: int = 400,
    channel_capacity: int = 1,
    max_rounds: int = 3,
    max_wait: int = 8,
    seed: int = 29,
) -> ExperimentTable:
    """Heavy-traffic contention: blocking vs offered load vs carriers.

    Every cell offers ``channel_capacity * carriers`` page slots per round
    through the event-driven engine (docs/contention.md); call arrivals are
    a true Poisson stream (``arrival_mode="poisson"``), so offered load may
    exceed one setup per step.  Each (load, carriers) point replays the
    identical seeded topology and mobility; the Erlang-style story to look
    for is blocking probability rising with offered load and falling as
    carriers are added, with the setup-latency tail (p95/p99) stretching
    well before blocking becomes visible.
    """
    table = ExperimentTable(
        "E29",
        "Shared-channel contention: blocking vs offered load vs carriers",
        [
            "load",
            "carriers",
            "offered",
            "blocked",
            "blocking_probability",
            "latency_p50",
            "latency_p95",
            "latency_p99",
            "occupancy",
        ],
    )
    for call_rate in offered_loads:
        for carriers in carrier_counts:
            rng = np.random.default_rng(seed)
            topology = CellTopology.hexagonal_disk(radius)
            plan = LocationAreaPlan.by_bfs(topology, num_areas)
            attraction = np.random.default_rng(seed + 1).uniform(
                0.5, 3.0, size=topology.num_cells
            )
            models = [
                GravityMobility(topology, attraction)
                for _ in range(num_devices)
            ]
            config = SimulationConfig(
                horizon=horizon,
                call_rate=call_rate,
                max_paging_rounds=max_rounds,
                pager="heuristic",
                channel_capacity=channel_capacity,
                carriers=carriers,
                max_wait=max_wait,
                arrival_mode="poisson",
                record_calls=False,
            )
            simulator = CellularSimulator(
                topology, plan, models, config, rng=rng
            )
            metrics = simulator.run().metrics
            table.add_row(
                call_rate,
                carriers,
                metrics.offered_calls,
                metrics.blocked_calls,
                metrics.blocking_probability,
                metrics.setup_latency_percentile(50),
                metrics.setup_latency_percentile(95),
                metrics.setup_latency_percentile(99),
                metrics.mean_channel_occupancy,
            )
    table.add_note(
        "blocking probability rises with offered load and falls with added "
        "carriers; the latency tail (p95/p99) degrades first — "
        "provisioning headroom shows up in delay before it shows up in loss"
    )
    return table
