"""Experiments reproducing the paper's inline quantitative claims.

* E1 — the Section 1.1 uniform single-user example (``EP = 3c/4`` at d = 2).
* E2 — the Section 4.3 lower-bound instance (``317/49`` vs ``320/49``).
* E4 — Lemma 3.1's unique maximum.
* E5 — Lemma 3.4's alpha/b chain optimality.
* E16 — the Section 4.1 four-thirds special case.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

import numpy as np

from ..analysis.convexity import (
    grid_check_lemma31,
    grid_check_lemma34,
    lemma31_stationarity_residual,
    refine_lemma31_with_scipy,
    refine_lemma34_with_scipy,
)
from ..analysis.ratio import measure_special_case_ratio
from ..core.bounds import lemma31_maximum
from ..core.instance import PagingInstance
from ..core.lower_bound import (
    HEURISTIC_VALUE,
    OPTIMAL_VALUE,
    lower_bound_instance,
    perturbed_instance,
)
from ..core.single_user import uniform_expected_paging
from ..distributions.generators import instance_family
from ..solvers import get_solver
from .tables import ExperimentTable

# Registry dispatch: experiments name solvers, they never import the
# concrete functions (tests/experiments/test_solver_imports.py enforces it).
_exact = get_solver("exact")
_heuristic = get_solver("heuristic")
_single_user = get_solver("single-user")
_two_round_split = get_solver("two-round-split")


def run_e01_uniform_single_user(
    cell_counts: Sequence[int] = (4, 8, 12, 16, 24),
    round_counts: Sequence[int] = (1, 2, 3, 4),
) -> ExperimentTable:
    """Optimal single-user EP on uniform distributions vs the closed form."""
    table = ExperimentTable(
        "E1",
        "Uniform single user: optimal EP vs closed form c(d+1)/(2d)",
        ["c", "d", "optimal_ep", "closed_form", "blanket", "saving"],
    )
    for c in cell_counts:
        for d in round_counts:
            if d > c or c % d != 0:
                continue
            instance = PagingInstance.uniform(1, c, d, exact=True)
            result = _single_user(instance)
            closed = uniform_expected_paging(c, d)
            table.add_row(
                c,
                d,
                float(result.expected_paging),
                float(closed),
                c,
                float(c - result.expected_paging),
            )
    table.add_note("paper Section 1.1: c=even, d=2 gives EP=3c/4, a c/4 saving")
    return table


def run_e02_lower_bound() -> ExperimentTable:
    """The 320/317 instance: optimal and heuristic values, exact arithmetic."""
    table = ExperimentTable(
        "E2",
        "Section 4.3 lower-bound instance (m=2, c=8, d=2)",
        ["variant", "optimal_ep", "heuristic_ep", "ratio"],
    )
    instance = lower_bound_instance()
    optimal = _exact(instance)
    heuristic = _heuristic(instance)
    table.add_row(
        "exact (tie-break)",
        float(optimal.expected_paging),
        float(heuristic.expected_paging),
        float(Fraction(heuristic.expected_paging) / Fraction(optimal.expected_paging)),
    )
    perturbed = perturbed_instance(Fraction(1, 10_000))
    optimal_p = _exact(perturbed)
    heuristic_p = _heuristic(perturbed)
    table.add_row(
        "epsilon-perturbed",
        float(optimal_p.expected_paging),
        float(heuristic_p.expected_paging),
        float(
            Fraction(heuristic_p.expected_paging) / Fraction(optimal_p.expected_paging)
        ),
    )
    table.add_note(
        f"paper: optimal 317/49 = {float(OPTIMAL_VALUE):.4f}, "
        f"heuristic 320/49 = {float(HEURISTIC_VALUE):.4f}, ratio 320/317"
    )
    return table


def run_e04_lemma31(cell_counts: Sequence[int] = (3, 6, 9, 30)) -> ExperimentTable:
    """Grid + gradient + scipy verification of the Lemma 3.1 maximum."""
    table = ExperimentTable(
        "E4",
        "Lemma 3.1: max of f at (1/2, 2c/3) with value 4c^3/27 - 2c^2/9 + c/12",
        ["c", "claimed_max", "grid_best", "grid_holds", "grad_norm", "scipy_holds"],
    )
    for c in cell_counts:
        check = grid_check_lemma31(c)
        gx, gy = lemma31_stationarity_residual(c)
        refined = refine_lemma31_with_scipy(c)
        table.add_row(
            c,
            float(lemma31_maximum(c)),
            check.best_found_value,
            str(check.claim_holds),
            float(np.hypot(gx, gy)),
            str(refined.claim_holds if refined is not None else "n/a"),
        )
    return table


def run_e05_lemma34(
    configurations: Sequence[tuple] = ((2, 2, 9.0), (2, 3, 12.0), (3, 3, 12.0), (4, 5, 30.0)),
    *,
    samples: int = 100_000,
) -> ExperimentTable:
    """The alpha/b chain vs random and scipy-optimized chains."""
    table = ExperimentTable(
        "E5",
        "Lemma 3.4: the alpha/b recursion maximizes sum (b_{r+1}-b_r) b_r^m",
        ["m", "d", "c", "claimed_value", "random_best", "scipy_best", "holds"],
    )
    for m, d, c in configurations:
        grid = grid_check_lemma34(m, d, c, samples=samples)
        refined = refine_lemma34_with_scipy(m, d, c)
        scipy_best = refined.best_found_value if refined is not None else float("nan")
        holds = grid.claim_holds and (
            refined is None or refined.best_found_value <= grid.claimed_value + 1e-6
        )
        table.add_row(
            m, d, c, grid.claimed_value, grid.best_found_value, scipy_best, str(holds)
        )
    return table


def run_e16_four_thirds(
    *,
    trials: int = 40,
    num_cells: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentTable:
    """The Section 4.1 scan vs exact optimum on random m=2, d=2 instances."""
    if rng is None:
        rng = np.random.default_rng(416)
    table = ExperimentTable(
        "E16",
        "Section 4.1: the O(c) split heuristic stays within 4/3 of optimal",
        ["family", "trials", "mean_ratio", "max_ratio", "bound"],
    )
    for family in ("dirichlet", "skewed-dirichlet", "adversarial", "hotspot"):
        ratios = []
        for _ in range(trials):
            instance = instance_family(family, 2, num_cells, 2, rng=rng)
            sample = measure_special_case_ratio(instance)
            ratios.append(sample.ratio)
        table.add_row(
            family,
            trials,
            float(np.mean(ratios)),
            float(np.max(ratios)),
            4.0 / 3.0,
        )
    # The scan matches the general heuristic on the canonical gadget too.
    gadget = lower_bound_instance()
    split = _two_round_split(gadget)
    optimal = _exact(gadget)
    table.add_row(
        "section-4.3 gadget",
        1,
        float(split.expected_paging / optimal.expected_paging),
        float(split.expected_paging / optimal.expected_paging),
        4.0 / 3.0,
    )
    return table
