"""The ``SolverResult`` normal form every registered solver returns.

The paper's algorithm zoo (§2–§5) produces heterogeneous result records:
``ExactResult``, ``OrderedDPResult``, ``WeightedResult`` (whose objective is
expected *cost*), bare ``Number`` values for the adaptive policies, and so
on.  The registry adapters map each of them onto this one shape without
touching the numerics: ``expected_paging`` carries the wrapped solver's
objective value verbatim (an exact ``Fraction`` whenever the wrapped solver
produced one — see Lemma 2.1), ``strategy`` the chosen ordered partition
when the policy is oblivious, and everything family-specific (order, quorum,
clusters, first adaptive group, ...) rides in ``extras``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import FrozenSet, Mapping, Optional

from ..core.instance import Number
from ..core.strategy import Strategy


@dataclass(frozen=True)
class SolverResult:
    """Normalized output of one registry solver run.

    The value in ``expected_paging`` is bit-identical to what the wrapped
    legacy function returned (pinned by ``tests/solvers`` regression tests);
    no rounding or re-evaluation happens in the adapter layer.
    """

    #: registry name of the solver that produced this result
    solver: str
    #: registry kind: ``exact`` | ``heuristic`` | ``dp`` | ``variant``
    kind: str
    #: the chosen strategy; ``None`` for value-only (adaptive) policies
    strategy: Optional[Strategy]
    #: the solver's objective value — exact ``Fraction`` on exact instances
    expected_paging: Number
    #: capability flags copied from the solver's spec
    capabilities: FrozenSet[str] = frozenset()
    #: wall-clock seconds spent inside the wrapped solver call
    wall_time_s: float = 0.0
    #: family-specific fields (order, quorum, clusters, first_group, ...)
    extras: Mapping[str, object] = field(default_factory=dict)

    @property
    def expected_paging_float(self) -> float:
        """The objective value as a float (lossy for exact results)."""
        return float(self.expected_paging)

    @property
    def expected_paging_fraction(self) -> Optional[Fraction]:
        """The objective as an exact ``Fraction``, or ``None`` if inexact."""
        if isinstance(self.expected_paging, (int, Fraction)):
            return Fraction(self.expected_paging)
        return None

    @property
    def is_exact(self) -> bool:
        """True when the wrapped solver kept exact arithmetic throughout."""
        return isinstance(self.expected_paging, (int, Fraction))

    @property
    def group_sizes(self) -> Optional[tuple]:
        """Group sizes of the chosen strategy, if one exists."""
        if self.strategy is None:
            return None
        return self.strategy.group_sizes
