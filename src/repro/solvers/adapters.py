"""Registry adapters over every solver family in ``repro.core``.

Each adapter forwards to exactly one legacy entry point (Fig. 1 heuristic,
the Lemma 4.7 DP, the §2 subset-DP exact solver, the §5 extensions) and
repackages its result into the :class:`~repro.solvers.result.SolverResult`
normal form.  Adapters never recompute or coerce values: the ``Fraction``
(or float) objective and the chosen :class:`~repro.core.strategy.Strategy`
are the very objects the wrapped function returned, which the regression
tests in ``tests/solvers`` pin bit-for-bit.

Wrapped functions carry a ``replint: solver`` docstring marker; lint rule
RPL007 checks that every marked entry point is imported (hence registered)
here and that its module cites a paper anchor.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from ..core.adaptive import adaptive_expected_paging
from ..core.adaptive_optimal import (
    MAX_ADAPTIVE_CELLS,
    optimal_adaptive_expected_paging,
)
from ..core.adaptive_variants import (
    adaptive_quorum_expected_paging,
    optimal_adaptive_quorum_expected_paging,
)
from ..core.bandwidth import bandwidth_limited_heuristic, bandwidth_limited_optimal
from ..core.batch_plan import plan_batch
from ..core.clustered import clustered_exhaustive
from ..core.dp import optimize_over_order
from ..core.exact import (
    MAX_EXACT_CELLS,
    optimal_strategy,
    optimal_strategy_bruteforce,
)
from ..core.exact_variants import optimal_signature, optimal_yellow_pages
from ..core.fast import conference_call_heuristic_fast
from ..core.heuristic import (
    APPROXIMATION_FACTOR,
    conference_call_heuristic,
    profile_heuristic,
)
from ..core.instance import Number, PagingInstance
from ..core.signature import optimize_signature_over_order, signature_heuristic
from ..core.single_user import optimal_single_user
from ..core.special_case import FOUR_THIRDS, two_device_two_round_heuristic
from ..core.strategy import Strategy
from ..core.weighted import (
    optimal_weighted_strategy,
    weighted_heuristic,
    weighted_weight_order,
)
from ..core.yellow_pages import (
    optimize_yellow_over_order,
    yellow_pages_greedy,
    yellow_pages_m_approximation,
    yellow_pages_weight_order,
)
from .registry import register_solver

__all__ = ["MAX_ADAPTIVE_DEVICES", "MAX_BRUTEFORCE_CELLS"]

_Adapted = Tuple[Optional[Strategy], Number, Mapping[str, object]]

#: Practical ceiling for full set-partition enumeration (Bell numbers).
MAX_BRUTEFORCE_CELLS = 8

#: Branching of the adaptive recursion is 2^m per round; keep m small.
MAX_ADAPTIVE_DEVICES = 8


def _fits_exact(instance: PagingInstance) -> bool:
    return instance.num_cells <= MAX_EXACT_CELLS


# ---------------------------------------------------------------------------
# Conference Call objective — heuristics
# ---------------------------------------------------------------------------


@register_solver(
    "heuristic",
    kind="heuristic",
    capabilities=("bandwidth",),
    summary="weight ordering + Lemma 4.7 cut DP (the paper's main algorithm)",
    anchor="Fig. 1, Theorem 4.8",
    options=("max_rounds", "max_group_size"),
    factor=APPROXIMATION_FACTOR,
    wraps=(conference_call_heuristic,),
)
def _heuristic(instance: PagingInstance, **options: object) -> _Adapted:
    result = conference_call_heuristic(instance, **options)
    return result.strategy, result.expected_paging, {
        "order": result.order, "group_sizes": result.group_sizes,
    }


@register_solver(
    "heuristic-fast",
    kind="heuristic",
    capabilities=("bandwidth", "vectorized"),
    summary="float/numpy planner, same order and cuts as the reference",
    anchor="Fig. 1, Theorem 4.8",
    options=("max_rounds", "max_group_size"),
    factor=APPROXIMATION_FACTOR,
    wraps=(conference_call_heuristic_fast,),
)
def _heuristic_fast(instance: PagingInstance, **options: object) -> _Adapted:
    result = conference_call_heuristic_fast(instance, **options)
    return result.strategy, result.expected_paging, {
        "order": result.order, "group_sizes": result.group_sizes,
    }


def _plan_batch_many(instances, max_rounds=None, **options):
    """Batch adapter: one kernel call over a whole instance stack."""
    return plan_batch(instances, max_rounds, **options)


@register_solver(
    "heuristic-batch",
    kind="heuristic",
    capabilities=("bandwidth", "vectorized", "batch", "multi-backend"),
    summary="batched Fig. 1 planner: thousands of instances per kernel call",
    anchor="Fig. 1, Lemma 4.7, Theorem 4.8",
    options=("max_rounds", "max_group_size", "backend", "chunk"),
    factor=APPROXIMATION_FACTOR,
    wraps=(plan_batch,),
    batch=_plan_batch_many,
)
def _heuristic_batch(instance: PagingInstance, **options: object) -> _Adapted:
    max_rounds = options.pop("max_rounds", None)
    batch = plan_batch([instance], max_rounds, **options)  # type: ignore[arg-type]
    result = batch.result(0)
    return result.strategy, result.expected_paging, {
        "order": result.order,
        "group_sizes": result.group_sizes,
        "backend": batch.backend,
    }


@register_solver(
    "profile-heuristic",
    kind="heuristic",
    summary="closed-form b-profile cuts over the weight ordering (ablation)",
    anchor="Section 4 (b-sequence of Lemma 3.1)",
    wraps=(profile_heuristic,),
)
def _profile_heuristic(instance: PagingInstance) -> _Adapted:
    result = profile_heuristic(instance)
    return result.strategy, result.expected_paging, {
        "order": result.order, "group_sizes": result.group_sizes,
    }


@register_solver(
    "two-round-split",
    kind="heuristic",
    summary="the 4/3-approximation for two devices in two rounds",
    anchor="Section 3 (4/3 special case)",
    factor=float(FOUR_THIRDS),
    wraps=(two_device_two_round_heuristic,),
    supports=lambda inst: inst.num_devices == 2 and inst.max_rounds == 2,
)
def _two_round_split(instance: PagingInstance) -> _Adapted:
    result = two_device_two_round_heuristic(instance)
    return result.strategy, result.expected_paging, {
        "order": result.order, "first_round_size": result.first_round_size,
    }


@register_solver(
    "bandwidth-heuristic",
    kind="heuristic",
    capabilities=("bandwidth",),
    summary="weight ordering + cut DP under a per-round group-size cap",
    anchor="Section 5 (bandwidth limits)",
    options=("max_group_size", "max_rounds"),
    required=("max_group_size",),
    wraps=(bandwidth_limited_heuristic,),
)
def _bandwidth_heuristic(
    instance: PagingInstance, max_group_size: int, **options: object
) -> _Adapted:
    result = bandwidth_limited_heuristic(instance, max_group_size, **options)
    return result.strategy, result.expected_paging, {
        "order": result.order, "group_sizes": result.group_sizes,
    }


# ---------------------------------------------------------------------------
# Conference Call objective — order-restricted DP
# ---------------------------------------------------------------------------


@register_solver(
    "dp-cuts",
    kind="dp",
    capabilities=("bandwidth", "ordered"),
    summary="optimal cut points over a caller-supplied cell order",
    anchor="Lemma 4.7",
    options=("order", "max_rounds", "max_group_size"),
    required=("order",),
    wraps=(optimize_over_order,),
)
def _dp_cuts(instance: PagingInstance, order: object, **options: object) -> _Adapted:
    result = optimize_over_order(instance, order, **options)
    return result.strategy, result.expected_paging, {
        "order": result.order, "group_sizes": result.group_sizes,
    }


# ---------------------------------------------------------------------------
# Conference Call objective — exact solvers
# ---------------------------------------------------------------------------


@register_solver(
    "exact",
    kind="exact",
    capabilities=("bandwidth",),
    summary="optimal oblivious strategy by the subset DP (c <= 18)",
    anchor="Section 2 (Lemma 2.1 evaluation)",
    options=("max_rounds", "max_group_size"),
    wraps=(optimal_strategy,),
    supports=_fits_exact,
)
def _exact(instance: PagingInstance, **options: object) -> _Adapted:
    result = optimal_strategy(instance, **options)
    return result.strategy, result.expected_paging, {}


@register_solver(
    "exact-bruteforce",
    kind="exact",
    summary="optimal strategy by full ordered-partition enumeration (tiny c)",
    anchor="Section 2 (definition of EP)",
    options=("max_rounds", "enumeration_limit"),
    wraps=(optimal_strategy_bruteforce,),
    supports=lambda inst: inst.num_cells <= MAX_BRUTEFORCE_CELLS,
)
def _exact_bruteforce(instance: PagingInstance, **options: object) -> _Adapted:
    result = optimal_strategy_bruteforce(instance, **options)
    return result.strategy, result.expected_paging, {}


@register_solver(
    "single-user",
    kind="exact",
    capabilities=("bandwidth",),
    summary="optimal single-device strategy (classic paging, m = 1)",
    anchor="Section 3 (single user)",
    options=("max_rounds", "max_group_size"),
    wraps=(optimal_single_user,),
    supports=lambda inst: inst.num_devices == 1,
)
def _single_user(instance: PagingInstance, **options: object) -> _Adapted:
    result = optimal_single_user(instance, **options)
    return result.strategy, result.expected_paging, {
        "order": result.order, "group_sizes": result.group_sizes,
    }


@register_solver(
    "bandwidth-exact",
    kind="exact",
    capabilities=("bandwidth",),
    summary="optimal strategy under a per-round group-size cap (c <= 18)",
    anchor="Section 5 (bandwidth limits)",
    options=("max_group_size", "max_rounds"),
    required=("max_group_size",),
    wraps=(bandwidth_limited_optimal,),
    supports=_fits_exact,
)
def _bandwidth_exact(
    instance: PagingInstance, max_group_size: int, **options: object
) -> _Adapted:
    result = bandwidth_limited_optimal(instance, max_group_size, **options)
    return result.strategy, result.expected_paging, {}


@register_solver(
    "clustered",
    kind="exact",
    summary="exhaustive search over cluster-symmetric count matrices",
    anchor="Section 5 (clustered cells)",
    options=("max_rounds", "resolution", "limit"),
    wraps=(clustered_exhaustive,),
    supports=lambda inst: inst.num_cells <= 10,
)
def _clustered(instance: PagingInstance, **options: object) -> _Adapted:
    result = clustered_exhaustive(instance, **options)
    return result.strategy, result.expected_paging, {
        "clusters": result.clusters, "count_matrix": result.count_matrix,
    }


# ---------------------------------------------------------------------------
# Weighted costs (§5.1 Search Theory model) — objective is expected cost
# ---------------------------------------------------------------------------


@register_solver(
    "weighted-heuristic",
    kind="variant",
    capabilities=("weighted",),
    summary="density ordering + weighted cut DP (cost per unit mass)",
    anchor="Section 5 (Search Theory costs)",
    options=("costs", "max_rounds"),
    required=("costs",),
    wraps=(weighted_heuristic,),
)
def _weighted_heuristic(
    instance: PagingInstance, costs: object, **options: object
) -> _Adapted:
    result = weighted_heuristic(instance, costs, **options)
    return result.strategy, result.expected_cost, {
        "order": result.order, "objective": "expected-cost",
    }


@register_solver(
    "weighted-weight-order",
    kind="variant",
    capabilities=("weighted",),
    summary="the paper's weight ordering with weighted cuts (E25 ablation)",
    anchor="Section 5 (Search Theory costs)",
    options=("costs", "max_rounds"),
    required=("costs",),
    wraps=(weighted_weight_order,),
)
def _weighted_weight_order(
    instance: PagingInstance, costs: object, **options: object
) -> _Adapted:
    result = weighted_weight_order(instance, costs, **options)
    return result.strategy, result.expected_cost, {
        "order": result.order, "objective": "expected-cost",
    }


@register_solver(
    "weighted-exact",
    kind="variant",
    capabilities=("weighted", "exact-variant"),
    summary="exact minimum expected cost by the weighted subset DP (c <= 18)",
    anchor="Section 5 (Search Theory costs)",
    options=("costs", "max_rounds"),
    required=("costs",),
    wraps=(optimal_weighted_strategy,),
    supports=_fits_exact,
)
def _weighted_exact(
    instance: PagingInstance, costs: object, **options: object
) -> _Adapted:
    result = optimal_weighted_strategy(instance, costs, **options)
    return result.strategy, result.expected_cost, {
        "order": None, "objective": "expected-cost",
    }


# ---------------------------------------------------------------------------
# Yellow Pages (find any one device) — §5 variant objective
# ---------------------------------------------------------------------------


@register_solver(
    "yellow-pages-greedy",
    kind="variant",
    capabilities=("yellow-pages",),
    summary="hit-probability ordering cut for the find-one stopping rule",
    anchor="Section 5 (Yellow Pages)",
    options=("max_rounds",),
    wraps=(yellow_pages_greedy,),
)
def _yellow_pages_greedy(instance: PagingInstance, **options: object) -> _Adapted:
    result = yellow_pages_greedy(instance, **options)
    return result.strategy, result.expected_paging, {"order": result.order}


@register_solver(
    "yellow-pages-m-approx",
    kind="variant",
    capabilities=("yellow-pages",),
    summary="best per-device single-user order (the m-approximation)",
    anchor="Section 5 (Yellow Pages)",
    options=("max_rounds",),
    wraps=(yellow_pages_m_approximation,),
)
def _yellow_pages_m_approx(instance: PagingInstance, **options: object) -> _Adapted:
    result = yellow_pages_m_approximation(instance, **options)
    return result.strategy, result.expected_paging, {"order": result.order}


@register_solver(
    "yellow-pages-weight-order",
    kind="variant",
    capabilities=("yellow-pages",),
    summary="Conference Call weight ordering applied to find-one (degrades)",
    anchor="Section 5 (Yellow Pages)",
    options=("max_rounds",),
    wraps=(yellow_pages_weight_order,),
)
def _yellow_pages_weight_order(
    instance: PagingInstance, **options: object
) -> _Adapted:
    result = yellow_pages_weight_order(instance, **options)
    return result.strategy, result.expected_paging, {"order": result.order}


@register_solver(
    "yellow-pages-cuts",
    kind="variant",
    capabilities=("yellow-pages", "ordered", "bandwidth"),
    summary="optimal find-one cuts over a caller-supplied order",
    anchor="Section 5 (Yellow Pages)",
    options=("order", "max_rounds", "max_group_size"),
    required=("order",),
    wraps=(optimize_yellow_over_order,),
)
def _yellow_pages_cuts(
    instance: PagingInstance, order: object, **options: object
) -> _Adapted:
    result = optimize_yellow_over_order(instance, order, **options)
    return result.strategy, result.expected_paging, {"order": result.order}


@register_solver(
    "yellow-pages-exact",
    kind="variant",
    capabilities=("yellow-pages", "exact-variant"),
    summary="exact find-one optimum by the mask-stop subset DP (c <= 18)",
    anchor="Section 5 (Yellow Pages)",
    options=("max_rounds",),
    wraps=(optimal_yellow_pages,),
    supports=_fits_exact,
)
def _yellow_pages_exact(instance: PagingInstance, **options: object) -> _Adapted:
    result = optimal_yellow_pages(instance, **options)
    return result.strategy, result.expected_paging, {"rule": result.rule}


# ---------------------------------------------------------------------------
# Signature (find k of m, quorum) — §5 variant objective
# ---------------------------------------------------------------------------


@register_solver(
    "signature",
    kind="variant",
    capabilities=("signature",),
    summary="weight-ordered heuristic for the quorum-k stopping rule",
    anchor="Section 5 (Signature)",
    options=("quorum", "max_rounds"),
    required=("quorum",),
    wraps=(signature_heuristic,),
)
def _signature(instance: PagingInstance, quorum: int, **options: object) -> _Adapted:
    result = signature_heuristic(instance, quorum, **options)
    return result.strategy, result.expected_paging, {
        "order": result.order, "quorum": result.quorum,
    }


@register_solver(
    "signature-cuts",
    kind="variant",
    capabilities=("signature", "ordered", "bandwidth"),
    summary="optimal quorum-k cuts over a caller-supplied order",
    anchor="Section 5 (Signature)",
    options=("order", "quorum", "max_rounds", "max_group_size"),
    required=("order", "quorum"),
    wraps=(optimize_signature_over_order,),
)
def _signature_cuts(
    instance: PagingInstance, order: object, quorum: int, **options: object
) -> _Adapted:
    result = optimize_signature_over_order(instance, order, quorum, **options)
    return result.strategy, result.expected_paging, {
        "order": result.order, "quorum": result.quorum,
    }


@register_solver(
    "signature-exact",
    kind="variant",
    capabilities=("signature", "exact-variant"),
    summary="exact quorum-k optimum by the mask-stop subset DP (c <= 18)",
    anchor="Section 5 (Signature)",
    options=("quorum", "max_rounds"),
    required=("quorum",),
    wraps=(optimal_signature,),
    supports=_fits_exact,
)
def _signature_exact(
    instance: PagingInstance, quorum: int, **options: object
) -> _Adapted:
    result = optimal_signature(instance, quorum, **options)
    return result.strategy, result.expected_paging, {"rule": result.rule}


# ---------------------------------------------------------------------------
# Adaptive policies (§5) — value-only results, no oblivious strategy
# ---------------------------------------------------------------------------


@register_solver(
    "adaptive",
    kind="variant",
    capabilities=("adaptive",),
    summary="expected paging of the replan-each-round adaptive policy",
    anchor="Section 5 (adaptive searches)",
    wraps=(adaptive_expected_paging,),
    supports=lambda inst: inst.num_devices <= MAX_ADAPTIVE_DEVICES,
)
def _adaptive(instance: PagingInstance) -> _Adapted:
    value = adaptive_expected_paging(instance)
    return None, value, {"policy": "replan-heuristic"}


@register_solver(
    "adaptive-optimal",
    kind="variant",
    capabilities=("adaptive", "exact-variant"),
    summary="exact minimum expected paging over all adaptive policies",
    anchor="Section 5 (adaptive searches)",
    options=("max_rounds",),
    wraps=(optimal_adaptive_expected_paging,),
    supports=lambda inst: inst.num_cells <= MAX_ADAPTIVE_CELLS,
)
def _adaptive_optimal(instance: PagingInstance, **options: object) -> _Adapted:
    result = optimal_adaptive_expected_paging(instance, **options)
    return None, result.expected_paging, {"first_group": result.first_group}


@register_solver(
    "adaptive-quorum",
    kind="variant",
    capabilities=("adaptive", "signature"),
    summary="adaptive replanning under the quorum-k stopping rule",
    anchor="Section 5 (adaptive + Signature)",
    options=("quorum",),
    required=("quorum",),
    wraps=(adaptive_quorum_expected_paging,),
    supports=lambda inst: inst.num_devices <= MAX_ADAPTIVE_DEVICES,
)
def _adaptive_quorum(instance: PagingInstance, quorum: int) -> _Adapted:
    value = adaptive_quorum_expected_paging(instance, quorum)
    return None, value, {"quorum": quorum, "policy": "replan-signature"}


@register_solver(
    "adaptive-quorum-optimal",
    kind="variant",
    capabilities=("adaptive", "signature", "exact-variant"),
    summary="exact optimal adaptive policy for the find-k-of-m objective",
    anchor="Section 5 (adaptive + Signature)",
    options=("quorum",),
    required=("quorum",),
    wraps=(optimal_adaptive_quorum_expected_paging,),
    supports=lambda inst: inst.num_cells <= MAX_ADAPTIVE_CELLS
    and inst.num_devices <= MAX_ADAPTIVE_DEVICES,
)
def _adaptive_quorum_optimal(instance: PagingInstance, quorum: int) -> _Adapted:
    value = optimal_adaptive_quorum_expected_paging(instance, quorum)
    return None, value, {"quorum": quorum}

