"""Declarative solver registry: one seam in front of the algorithm zoo.

Every solver family of the paper — the Fig. 1 / Theorem 4.8 heuristic, the
Lemma 4.7 cut DP, the subset-DP exact solver of §2, and the §5 extensions
(adaptive, Yellow Pages, Signature, bandwidth caps, weighted costs,
clustered) — registers here under a stable name with a ``kind``, capability
flags, and a paper anchor.  Dispatch sites (experiments, CLI, bench,
cellnet) look solvers up by name instead of importing concrete functions,
so adding a backend or policy is a one-file change.

``kind`` is judged against the Conference Call expected-paging objective:

* ``exact`` — provably optimal expected paging (oblivious strategies);
* ``heuristic`` — approximate for that same objective (``factor`` records
  the proven ratio when one exists, e.g. e/(e-1) or 4/3);
* ``dp`` — order-restricted dynamic programs that need an explicit order;
* ``variant`` — a different objective or policy class (Yellow Pages,
  Signature quorums, weighted costs, adaptive replanning); the
  ``exact-variant`` capability marks the ones optimal *within* their
  variant.

Every run is wrapped in a uniform ``solver.run`` observability span
carrying the registry name, and timed into ``SolverResult.wall_time_s``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

try:  # pragma: no cover - import guard exercised at import time
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8 has no Protocol
    Protocol = object  # type: ignore[assignment]

from ..core.instance import Number, PagingInstance
from ..core.strategy import Strategy
from ..errors import ReproError
from ..obs import span
from .result import SolverResult

#: The allowed ``kind`` values, in display order.
KINDS: Tuple[str, ...] = ("exact", "heuristic", "dp", "variant")

#: An adapter maps ``(instance, **options)`` to (strategy-or-None, value,
#: extras).  The value must be bit-identical to the wrapped legacy call.
AdapterFn = Callable[..., Tuple[Optional[Strategy], Number, Mapping[str, object]]]

#: A batch adapter maps ``(instances, **options)`` to an implementation-
#: defined batch result (e.g. :class:`repro.core.batch_plan.BatchPlanResult`)
#: whose rows are bit-identical to per-instance scalar calls.
BatchAdapterFn = Callable[..., object]

#: Advisory predicate: can this solver handle the instance at all?
SupportsFn = Callable[[PagingInstance], bool]


class Solver(Protocol):
    """What dispatch sites may assume about a registry entry."""

    spec: "SolverSpec"

    def __call__(self, instance: PagingInstance, **options: object) -> SolverResult:
        ...  # pragma: no cover - protocol body

    def supports(self, instance: PagingInstance) -> bool:
        ...  # pragma: no cover - protocol body


class UnknownSolverError(ReproError, KeyError):
    """Raised by :func:`get_solver` for a name that was never registered."""


@dataclass(frozen=True)
class SolverSpec:
    """Static description of one registered solver."""

    name: str
    kind: str
    capabilities: FrozenSet[str]
    summary: str
    #: paper anchor (Lemma/Theorem/Section/Figure) for docs/paper_map.md
    anchor: str
    #: keyword options the adapter accepts (beyond the instance)
    options: Tuple[str, ...] = ()
    #: subset of ``options`` that must be supplied on every call
    required: Tuple[str, ...] = ()
    #: proven approximation factor vs the exact optimum, when one exists
    factor: Optional[float] = None
    #: dotted names of the legacy functions this adapter wraps
    wraps: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "capabilities": sorted(self.capabilities),
            "summary": self.summary,
            "anchor": self.anchor,
            "options": list(self.options),
            "required": list(self.required),
            "factor": None if self.factor is None else float(self.factor),
            "wraps": list(self.wraps),
        }


@dataclass(frozen=True)
class RegisteredSolver:
    """A spec plus the adapter that executes it.  Instances are callable."""

    spec: SolverSpec
    adapter: AdapterFn = field(repr=False)
    #: the primary wrapped legacy callables (for docs and meta-tests)
    wrapped: Tuple[Callable[..., object], ...] = field(default=(), repr=False)
    _supports: Optional[SupportsFn] = field(default=None, repr=False)
    #: optional many-instances entry point (see :meth:`run_batch`)
    batch_adapter: Optional[BatchAdapterFn] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def supports_batch(self) -> bool:
        """True when the solver registered a many-instances entry point."""
        return self.batch_adapter is not None

    def supports(self, instance: PagingInstance) -> bool:
        """Advisory: False means the call is known to raise on ``instance``."""
        if self._supports is None:
            return True
        return bool(self._supports(instance))

    def run_batch(self, instances: object, **options: object) -> object:
        """Plan many instances in one kernel call.

        Only solvers registered with a batch adapter (capability
        ``"batch"``) provide this; everyone else raises ``TypeError`` so
        dispatch sites can feature-test with :attr:`supports_batch` and
        fall back to a per-instance loop.  Options are validated against
        the same spec as scalar calls, and the run is wrapped in a
        ``solver.run_batch`` span carrying the batch size.
        """
        spec = self.spec
        if self.batch_adapter is None:
            raise TypeError(
                f"solver {spec.name!r} has no batched entry point; "
                "check supports_batch before calling run_batch"
            )
        unknown = sorted(set(options) - set(spec.options))
        if unknown:
            raise TypeError(
                f"solver {spec.name!r} got unknown option(s) {unknown}; "
                f"accepted: {sorted(spec.options)}"
            )
        missing = sorted(set(spec.required) - set(options))
        if missing:
            raise TypeError(
                f"solver {spec.name!r} requires option(s) {missing}"
            )
        size = len(instances) if hasattr(instances, "__len__") else None
        with span(
            "solver.run_batch", solver=spec.name, kind=spec.kind, batch=size
        ):
            return self.batch_adapter(instances, **options)

    def __call__(self, instance: PagingInstance, **options: object) -> SolverResult:
        spec = self.spec
        unknown = sorted(set(options) - set(spec.options))
        if unknown:
            raise TypeError(
                f"solver {spec.name!r} got unknown option(s) {unknown}; "
                f"accepted: {sorted(spec.options)}"
            )
        missing = sorted(set(spec.required) - set(options))
        if missing:
            raise TypeError(
                f"solver {spec.name!r} requires option(s) {missing}"
            )
        with span("solver.run", solver=spec.name, kind=spec.kind):
            start = time.perf_counter()
            strategy, value, extras = self.adapter(instance, **options)
            elapsed = time.perf_counter() - start
        return SolverResult(
            solver=spec.name,
            kind=spec.kind,
            strategy=strategy,
            expected_paging=value,
            capabilities=spec.capabilities,
            wall_time_s=elapsed,
            extras=dict(extras),
        )


_REGISTRY: Dict[str, RegisteredSolver] = {}


def register_solver(
    name: str,
    *,
    kind: str,
    capabilities: Sequence[str] = (),
    summary: str,
    anchor: str,
    options: Sequence[str] = (),
    required: Sequence[str] = (),
    factor: Optional[float] = None,
    wraps: Sequence[Callable[..., object]] = (),
    supports: Optional[SupportsFn] = None,
    batch: Optional[BatchAdapterFn] = None,
) -> Callable[[AdapterFn], AdapterFn]:
    """Decorator: register ``adapter`` under ``name`` with its spec.

    The adapter function itself is returned unchanged so the module stays
    plain; look the callable entry up with :func:`get_solver`.  ``batch``
    optionally attaches a many-instances entry point, exposed as
    :meth:`RegisteredSolver.run_batch` / :func:`solve_batch`.
    """
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    if name in _REGISTRY:
        raise ValueError(f"solver {name!r} is already registered")
    missing = set(required) - set(options)
    if missing:
        raise ValueError(f"required options {sorted(missing)} not in options")

    def decorate(adapter: AdapterFn) -> AdapterFn:
        spec = SolverSpec(
            name=name,
            kind=kind,
            capabilities=frozenset(capabilities),
            summary=summary,
            anchor=anchor,
            options=tuple(options),
            required=tuple(required),
            factor=factor,
            wraps=tuple(
                f"{fn.__module__}.{fn.__qualname__}" for fn in wraps
            ),
        )
        _REGISTRY[name] = RegisteredSolver(
            spec=spec,
            adapter=adapter,
            wrapped=tuple(wraps),
            _supports=supports,
            batch_adapter=batch,
        )
        return adapter

    return decorate


def get_solver(name: str) -> RegisteredSolver:
    """Look a solver up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownSolverError(
            f"unknown solver {name!r}; registered: {known}"
        ) from None


def list_solvers(
    *,
    kind: Optional[str] = None,
    capability: Optional[str] = None,
) -> List[SolverSpec]:
    """All registered specs, optionally filtered, sorted by name."""
    specs = (entry.spec for entry in _REGISTRY.values())
    selected = [
        spec
        for spec in specs
        if (kind is None or spec.kind == kind)
        and (capability is None or capability in spec.capabilities)
    ]
    return sorted(selected, key=lambda spec: spec.name)


def solver_names() -> List[str]:
    """Sorted names of every registered solver."""
    return sorted(_REGISTRY)


def solve_instance(
    name: str, instance: PagingInstance, **options: object
) -> SolverResult:
    """Convenience one-shot: ``get_solver(name)(instance, **options)``."""
    return get_solver(name)(instance, **options)


def solve_batch(name: str, instances: object, **options: object) -> object:
    """Convenience one-shot: ``get_solver(name).run_batch(instances, ...)``."""
    return get_solver(name).run_batch(instances, **options)


# ---------------------------------------------------------------------------
# Static-analysis metadata (consumed by repro.lint.flow)
# ---------------------------------------------------------------------------

def analysis_sinks() -> List[Dict[str, object]]:
    """Machine-readable sink/option metadata for every registered solver.

    The deep linter (RPL008) derives its exact-arithmetic sink set from
    this surface instead of hard-coding function names, so registering a
    new exact adapter automatically extends the taint analysis.
    """
    entries: List[Dict[str, object]] = []
    for spec in list_solvers():
        entries.append(
            {
                "solver": spec.name,
                "kind": spec.kind,
                "exact": spec.kind == "exact"
                or "exact-variant" in spec.capabilities,
                "functions": list(spec.wraps),
                "options": list(spec.options),
                "required": list(spec.required),
            }
        )
    return entries


def exact_sink_functions() -> List[str]:
    """Dotted names of wrapped functions with exact-arithmetic semantics.

    These are the registry-derived RPL008 taint sinks: any float-tainted
    value reaching one of them would silently void the paper's exactness
    guarantees (Theorem 4.8 optimality, Lemma 2.1 evaluation).
    """
    names = {
        str(fn)
        for entry in analysis_sinks()
        if entry["exact"]
        for fn in entry["functions"]  # type: ignore[union-attr]
    }
    return sorted(names)
