"""``repro.solvers`` — the unified solver protocol and registry.

One import gives the whole seam: the :class:`SolverResult` normal form, the
:class:`Solver` protocol, the registry API (:func:`register_solver`,
:func:`get_solver`, :func:`list_solvers`), and — by importing
``repro.solvers.adapters`` for its side effects — a populated registry
covering every solver family of the paper (Fig. 1 heuristic, Lemma 4.7 DP,
§2 exact subset DP, and the §5 extensions).

``APPROXIMATION_FACTOR`` is re-exported so dispatch sites that quote the
e/(e-1) guarantee of Theorem 4.8 need no direct ``repro.core.heuristic``
import.
"""

from __future__ import annotations

import types as _types

from ..core.heuristic import APPROXIMATION_FACTOR
from . import adapters as _adapters  # noqa: F401  (populates the registry)
from .registry import (
    KINDS,
    RegisteredSolver,
    Solver,
    SolverSpec,
    UnknownSolverError,
    analysis_sinks,
    exact_sink_functions,
    get_solver,
    list_solvers,
    register_solver,
    solve_batch,
    solve_instance,
    solver_names,
)
from .result import SolverResult

#: Generated export list: every public, non-module name bound above, sorted.
#: tests/test_public_api.py asserts this matches the static imports exactly.
__all__ = sorted(
    name
    for name, value in globals().items()
    if not name.startswith("_")
    and name != "annotations"
    and not isinstance(value, _types.ModuleType)
)
