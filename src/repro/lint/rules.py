"""The domain-specific rule registry for ``repro lint``.

Each rule guards an invariant the test suite can only sample:

* **RPL001** — float equality: bare ``==``/``!=`` between float-valued
  expressions silently breaks the exact-``Fraction`` evaluation paths of
  Lemma 2.1.  Use ``math.isclose`` or compare exact ``Fraction`` values.
* **RPL002** — unseeded randomness: every stochastic component must draw
  from an explicit seeded ``np.random.Generator`` (EXPERIMENTS.md
  reproducibility contract); module-level ``random.*`` / ``np.random.*``
  state is forbidden.
* **RPL003** — float contamination of exact arithmetic:
  ``Fraction(<float>)`` or float literals passed to functions marked
  exact (name contains ``exact`` or docstring carries ``replint: exact``).
* **RPL004** — public-API drift between ``repro.__init__.__all__`` and
  ``docs/api.md`` (both directions).
* **RPL005** — paper traceability: modules under ``core/``, ``analysis/``
  and ``hardness/`` must cite a Lemma/Theorem/Section/Figure anchor in
  their module docstring (docs/paper_map.md contract).
* **RPL006** — Python hygiene that has bitten reproducibility before:
  mutable default arguments, and missing
  ``from __future__ import annotations`` in ``src/repro``.
* **RPL007** — solver registration: every entry point whose docstring
  carries ``replint: solver`` must be imported (hence wrapped and
  registered) by ``src/repro/solvers/adapters.py``, and any module
  defining such an entry point must cite a paper anchor.

Rules are deliberately single-file AST passes (plus project-level
passes for RPL004 and RPL007) so the linter stays dependency-free and
fast.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from decimal import Decimal, InvalidOperation
from fractions import Fraction
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at ``path:line:col``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a per-file rule needs to inspect one module."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    config: "LintConfig"
    root: Path


@dataclass
class LintConfig:
    """Configuration, loaded from ``[tool.replint]`` in pyproject.toml."""

    exclude: Tuple[str, ...] = ()
    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    traceability_paths: Tuple[str, ...] = (
        "src/repro/core",
        "src/repro/analysis",
        "src/repro/hardness",
    )
    future_import_paths: Tuple[str, ...] = ("src/repro",)
    api_init: str = "src/repro/__init__.py"
    api_doc: str = "docs/api.md"
    solver_adapters: str = "src/repro/solvers/adapters.py"
    solver_mark_paths: Tuple[str, ...] = ("src/repro/core",)

    def rule_enabled(self, code: str) -> bool:
        if self.select is not None and code not in self.select:
            return False
        return code not in self.ignore


def _under(relpath: str, prefixes: Iterable[str]) -> bool:
    return any(
        relpath == prefix or relpath.startswith(prefix.rstrip("/") + "/")
        for prefix in prefixes
    )


class Rule:
    """Base class: per-file AST rules override :meth:`check`."""

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        return iter(())


class ProjectRule(Rule):
    """Project-wide rules run once per invocation, not per file."""

    def check_project(self, root: Path, config: LintConfig) -> Iterator[Violation]:
        return iter(())


# ---------------------------------------------------------------------------
# RPL001 — float equality
# ---------------------------------------------------------------------------

_FLOAT_CAST_NAMES = {"float"}
_FLOAT_CAST_ATTRS = {"float16", "float32", "float64", "float_"}


def _is_float_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _FLOAT_CAST_NAMES or func.id.endswith("_float")
    if isinstance(func, ast.Attribute):
        return func.attr in _FLOAT_CAST_ATTRS or func.attr.endswith("_float")
    return False


def _float_literal_is_inexact(node: ast.Constant, source: str) -> bool:
    """True when the decimal text of a float literal is not the float's value.

    ``x == 6.0`` is a deterministic comparison (6.0 is exactly
    representable); ``x == 0.3`` is not — no computation lands exactly on
    the double nearest to 0.3 except by copying the same literal.
    """
    segment = ast.get_source_segment(source, node)
    if segment is None:  # pragma: no cover - only for synthetic trees
        return True
    text = segment.strip().replace("_", "")
    try:
        return Fraction(Decimal(text)) != Fraction(node.value)
    except (InvalidOperation, ValueError, OverflowError):
        return True


_TOLERANT_COMPARATORS = {"approx", "isclose"}


def _is_tolerant_call(node: ast.AST) -> bool:
    """``pytest.approx(...)`` / ``isclose(...)`` overload ``==`` safely."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (
        func.id if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute)
        else ""
    )
    return name in _TOLERANT_COMPARATORS


def _is_unsafe_float_expr(node: ast.AST, source: str) -> bool:
    """Expressions whose ``==`` comparison is numerically fragile."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return _float_literal_is_inexact(node, source)
    if _is_float_call(node):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_unsafe_float_expr(node.operand, source)
    if isinstance(node, ast.BinOp):
        # arithmetic that mixes in any float literal or float() cast
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if _is_float_call(sub):
                return True
    return False


class FloatEqualityRule(Rule):
    code = "RPL001"
    name = "float-equality"
    rationale = (
        "bare ==/!= on float-valued expressions breaks the exact Lemma 2.1 "
        "evaluation contract; use math.isclose or exact Fractions"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_tolerant_call(left) or _is_tolerant_call(right):
                    continue
                if _is_unsafe_float_expr(left, ctx.source) or _is_unsafe_float_expr(
                    right, ctx.source
                ):
                    yield Violation(
                        ctx.relpath,
                        node.lineno,
                        node.col_offset + 1,
                        self.code,
                        "float-valued equality comparison; use math.isclose "
                        "or keep the computation in exact Fractions",
                    )
                    break


# ---------------------------------------------------------------------------
# RPL002 — unseeded randomness
# ---------------------------------------------------------------------------

_NP_LEGACY_SAMPLERS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "normal", "permutation", "poisson",
    "rand", "randint", "randn", "random", "random_sample", "ranf", "sample",
    "seed", "shuffle", "standard_normal", "uniform", "zipf",
}

_STDLIB_SAMPLERS = {
    "betavariate", "choice", "choices", "expovariate", "gauss", "getrandbits",
    "paretovariate", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}


def _attr_chain(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("")
    return parts[::-1]


class UnseededRandomnessRule(Rule):
    code = "RPL002"
    name = "unseeded-randomness"
    rationale = (
        "stochastic components must take an explicit seeded "
        "np.random.Generator so every experiment is reproducible"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        imports_stdlib_random = any(
            (isinstance(node, ast.Import) and any(a.name == "random" for a in node.names))
            or (isinstance(node, ast.ImportFrom) and node.module == "random")
            for node in ast.walk(ctx.tree)
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            tail = chain[-1]
            # default_rng() / np.random.default_rng() with no seed argument
            if tail == "default_rng" and not node.args and not node.keywords:
                yield Violation(
                    ctx.relpath, node.lineno, node.col_offset + 1, self.code,
                    "default_rng() without a seed; pass an explicit seed or "
                    "a spawned SeedSequence",
                )
                continue
            # random.Random() with no seed argument
            if tail == "Random" and len(chain) >= 2 and chain[-2] == "random" \
                    and not node.args and not node.keywords:
                yield Violation(
                    ctx.relpath, node.lineno, node.col_offset + 1, self.code,
                    "random.Random() without a seed; pass an explicit seed",
                )
                continue
            # legacy numpy global RNG: np.random.uniform(...), np.random.seed(...)
            if len(chain) >= 3 and chain[-2] == "random" and tail in _NP_LEGACY_SAMPLERS:
                yield Violation(
                    ctx.relpath, node.lineno, node.col_offset + 1, self.code,
                    f"module-level np.random.{tail}() uses hidden global "
                    "state; draw from a passed-in np.random.Generator",
                )
                continue
            # stdlib random module functions: random.random(), random.choice(...)
            if (
                imports_stdlib_random
                and len(chain) == 2
                and chain[0] == "random"
                and tail in _STDLIB_SAMPLERS
            ):
                yield Violation(
                    ctx.relpath, node.lineno, node.col_offset + 1, self.code,
                    f"module-level random.{tail}() uses hidden global state; "
                    "use a seeded np.random.Generator or random.Random(seed)",
                )


# ---------------------------------------------------------------------------
# RPL003 — float contamination of exact arithmetic
# ---------------------------------------------------------------------------

_EXACT_DOC_MARK = re.compile(r"replint:\s*exact", re.IGNORECASE)


class ExactnessRule(Rule):
    code = "RPL003"
    name = "exactness"
    rationale = (
        "Fraction(<float>) and float literals flowing into exact-marked "
        "functions silently poison exact-arithmetic paths"
    )

    @staticmethod
    def _exact_function_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                doc = ast.get_docstring(node) or ""
                if "exact" in node.name.lower() or _EXACT_DOC_MARK.search(doc):
                    names.add(node.name)
        return names

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        exact_names = self._exact_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else ""
            )
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            if callee == "Fraction" and node.args:
                first = node.args[0]
                if (
                    isinstance(first, ast.Constant) and isinstance(first.value, float)
                ) or _is_float_call(first):
                    yield Violation(
                        ctx.relpath, node.lineno, node.col_offset + 1, self.code,
                        "Fraction(<float>) captures binary rounding error; "
                        "construct from a string or integer ratio",
                    )
                    continue
            if callee in exact_names:
                for arg in arguments:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, float):
                        yield Violation(
                            ctx.relpath, node.lineno, node.col_offset + 1, self.code,
                            f"float literal passed to exact-marked function "
                            f"{callee!r}; pass a Fraction or integer",
                        )
                        break


# ---------------------------------------------------------------------------
# RPL004 — public-API drift
# ---------------------------------------------------------------------------

_DOC_REF = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)")


def _bound_names(tree: ast.Module) -> Set[str]:
    """Names statically bound at module level (imports, defs, assignments)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            bound.add(element.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Import):
                    for alias in sub.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
                elif isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            bound.add(target.id)
    return bound


def _extract_all(tree: ast.Module) -> List[Tuple[str, int]]:
    entries: List[Tuple[str, int]] = []
    for node in tree.body:
        targets: Sequence[ast.expr] = ()
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        if value is None:
            continue
        if any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        entries.append((element.value, element.lineno))
    return entries


class ApiDriftRule(ProjectRule):
    code = "RPL004"
    name = "api-drift"
    rationale = (
        "repro.__all__ entries must resolve and be documented in "
        "docs/api.md, and doc references must resolve in the source tree"
    )

    def __init__(self) -> None:
        self._module_cache: Dict[Path, Optional[Set[str]]] = {}

    def _module_names(self, path: Path) -> Optional[Set[str]]:
        if path not in self._module_cache:
            try:
                tree = ast.parse(path.read_text())
            except (OSError, SyntaxError):
                self._module_cache[path] = None
            else:
                self._module_cache[path] = _bound_names(tree)
        return self._module_cache[path]

    def _resolve_doc_ref(self, package_dir: Path, parts: Sequence[str]) -> bool:
        """Statically resolve ``repro.a.b.c`` against the source tree."""
        current = package_dir
        for index, part in enumerate(parts):
            if (current / part).is_dir():
                current = current / part
                continue
            if (current / (part + ".py")).is_file():
                names = self._module_names(current / (part + ".py"))
                if names is None:
                    return False
                remaining = parts[index + 1:]
                return not remaining or remaining[0] in names
            names = self._module_names(current / "__init__.py")
            return names is not None and part in names
        return (current / "__init__.py").is_file()

    def check_project(self, root: Path, config: LintConfig) -> Iterator[Violation]:
        init_path = root / config.api_init
        doc_path = root / config.api_doc
        if not init_path.is_file():
            return
        init_rel = config.api_init
        doc_rel = config.api_doc
        try:
            tree = ast.parse(init_path.read_text())
        except SyntaxError:
            return
        bound = _bound_names(tree)
        all_entries = _extract_all(tree)
        all_names = {name for name, _ in all_entries}
        doc_text = doc_path.read_text() if doc_path.is_file() else ""

        for name, lineno in all_entries:
            if name not in bound:
                yield Violation(
                    init_rel, lineno, 1, self.code,
                    f"__all__ entry {name!r} does not resolve to a name "
                    "bound in the package __init__",
                )
            elif not name.startswith("__") and not re.search(
                r"\b%s\b" % re.escape(name), doc_text
            ):
                yield Violation(
                    init_rel, lineno, 1, self.code,
                    f"__all__ entry {name!r} is not documented in {doc_rel}",
                )
        for node in tree.body:
            if isinstance(node, ast.ImportFrom) and node.level > 0:
                for alias in node.names:
                    exported = alias.asname or alias.name
                    if not exported.startswith("_") and exported not in all_names:
                        yield Violation(
                            init_rel, node.lineno, 1, self.code,
                            f"{exported!r} is imported into the public "
                            "package namespace but missing from __all__",
                        )
        package_dir = init_path.parent
        seen: Set[str] = set()
        for lineno, line in enumerate(doc_text.splitlines(), start=1):
            for match in _DOC_REF.finditer(line):
                ref = match.group(1)
                if ref in seen:
                    continue
                seen.add(ref)
                if not self._resolve_doc_ref(package_dir, ref.split(".")[1:]):
                    yield Violation(
                        doc_rel, lineno, match.start() + 1, self.code,
                        f"documented symbol {ref!r} does not resolve in the "
                        "source tree",
                    )


# ---------------------------------------------------------------------------
# RPL005 — paper traceability
# ---------------------------------------------------------------------------

_ANCHOR = re.compile(
    r"(Lemma|Theorem|Thm\.?|Corollary|Cor\.?|Proposition|Prop\.?"
    r"|Section|§|Figure|Fig\.?|Eq\.?)\s*~?\s*[0-9]"
)


class PaperTraceabilityRule(Rule):
    code = "RPL005"
    name = "paper-traceability"
    rationale = (
        "every core/analysis/hardness module must stay traceable to a "
        "paper anchor (docs/paper_map.md contract)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not _under(ctx.relpath, ctx.config.traceability_paths):
            return
        if not ctx.tree.body:  # empty namespace file — nothing to anchor
            return
        doc = ast.get_docstring(ctx.tree)
        if doc is None:
            yield Violation(
                ctx.relpath, 1, 1, self.code,
                "module has no docstring; cite its paper anchor "
                "(Lemma/Theorem/Section/Figure)",
            )
        elif not _ANCHOR.search(doc):
            yield Violation(
                ctx.relpath, 1, 1, self.code,
                "module docstring cites no paper anchor "
                "(Lemma/Theorem/Section/Figure N)",
            )


# ---------------------------------------------------------------------------
# RPL006 — defaults & future-annotations hygiene
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"}


class HygieneRule(Rule):
    code = "RPL006"
    name = "hygiene"
    rationale = (
        "mutable default arguments alias state across calls; "
        "src/repro modules must import annotations from __future__"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    mutable = isinstance(
                        default,
                        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp),
                    ) or (
                        isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in _MUTABLE_CALLS
                    )
                    if mutable:
                        yield Violation(
                            ctx.relpath, default.lineno, default.col_offset + 1,
                            self.code,
                            "mutable default argument; use None and create "
                            "the object inside the function",
                        )
        if _under(ctx.relpath, ctx.config.future_import_paths) and ctx.tree.body:
            has_future = any(
                isinstance(node, ast.ImportFrom)
                and node.module == "__future__"
                and any(alias.name == "annotations" for alias in node.names)
                for node in ctx.tree.body
            )
            only_docstring = len(ctx.tree.body) == 1 and isinstance(
                ctx.tree.body[0], ast.Expr
            ) and isinstance(ctx.tree.body[0].value, ast.Constant)
            if not has_future and not only_docstring:
                yield Violation(
                    ctx.relpath, 1, 1, self.code,
                    "missing 'from __future__ import annotations'",
                )


# ---------------------------------------------------------------------------
# RPL007 — solver registration
# ---------------------------------------------------------------------------

_SOLVER_DOC_MARK = re.compile(r"replint:\s*solver\b", re.IGNORECASE)


class SolverRegistrationRule(ProjectRule):
    code = "RPL007"
    name = "solver-registration"
    rationale = (
        "every 'replint: solver'-marked entry point must be wrapped by the "
        "repro.solvers adapters module, and its module must cite a paper "
        "anchor (the registry dispatch contract)"
    )

    @staticmethod
    def _imported_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module != "__future__":
                for alias in node.names:
                    names.add(alias.name)
        return names

    @staticmethod
    def _marked_functions(
        tree: ast.Module,
    ) -> List["ast.FunctionDef | ast.AsyncFunctionDef"]:
        return [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and _SOLVER_DOC_MARK.search(ast.get_docstring(node) or "")
        ]

    def check_project(self, root: Path, config: LintConfig) -> Iterator[Violation]:
        adapters_path = root / config.solver_adapters
        if not adapters_path.is_file():
            return
        try:
            imported = self._imported_names(ast.parse(adapters_path.read_text()))
        except SyntaxError:
            return
        for prefix in config.solver_mark_paths:
            base = root / prefix
            candidates = [base] if base.is_file() else sorted(base.rglob("*.py"))
            for path in candidates:
                if not path.is_file():
                    continue
                relpath = path.relative_to(root).as_posix()
                try:
                    tree = ast.parse(path.read_text())
                except (OSError, SyntaxError):
                    continue
                marked = self._marked_functions(tree)
                if not marked:
                    continue
                for node in marked:
                    if node.name not in imported:
                        yield Violation(
                            relpath, node.lineno, node.col_offset + 1, self.code,
                            f"solver entry point {node.name!r} carries the "
                            "'replint: solver' marker but is never imported by "
                            f"{config.solver_adapters}; register it in "
                            "repro.solvers",
                        )
                doc = ast.get_docstring(tree)
                if doc is None or not _ANCHOR.search(doc):
                    yield Violation(
                        relpath, 1, 1, self.code,
                        "module defines registered solver entry points but its "
                        "docstring cites no paper anchor "
                        "(Lemma/Theorem/Section/Figure N)",
                    )


#: Registry, in code order.  The engine consults this.
RULES: Tuple[Rule, ...] = (
    FloatEqualityRule(),
    UnseededRandomnessRule(),
    ExactnessRule(),
    ApiDriftRule(),
    PaperTraceabilityRule(),
    HygieneRule(),
    SolverRegistrationRule(),
)

ALL_CODES: Tuple[str, ...] = tuple(rule.code for rule in RULES)
