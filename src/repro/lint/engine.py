"""The ``repro lint`` engine: discovery, config, suppressions, output.

Design goals (mirroring what sanitizers do for a systems stack):

* **Zero dependencies** — pure stdlib ``ast``; runs anywhere the package
  does, including the Python 3.9 floor (a tiny TOML-subset reader stands
  in for :mod:`tomllib` there).
* **Deterministic output** — violations sort by path, line, column, code,
  so CI diffs are stable.
* **Escape hatches that leave a trail** — inline
  ``# replint: disable=RPL001`` suppressions and a ``[tool.replint]``
  table in pyproject.toml, both of which are grep-able.

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .flow import (
    DEEP_CODES,
    FLOW_RULES,
    apply_baseline,
    load_baseline,
    run_deep,
    sarif_payload,
    write_baseline,
)
from .rules import (
    ALL_CODES,
    LintConfig,
    ModuleContext,
    ProjectRule,
    RULES,
    Violation,
)

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2

_SUPPRESS = re.compile(r"#\s*replint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE = re.compile(r"#\s*replint:\s*disable-file=([A-Za-z0-9_,\s]+)")


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

def _parse_toml_subset(text: str) -> Dict[str, Dict[str, object]]:
    """Parse just enough TOML for ``[tool.replint]`` on Python < 3.11.

    Supports tables, string values, booleans, integers, and (possibly
    multi-line) arrays of strings.  This is not a general TOML parser —
    it exists so the linter works on the 3.9 CI floor without adding a
    dependency.
    """
    tables: Dict[str, Dict[str, object]] = {}
    current: Dict[str, object] = tables.setdefault("", {})
    pending_key: Optional[str] = None
    pending_chunks: List[str] = []

    def parse_scalar(token: str) -> object:
        token = token.strip()
        if token.startswith(("\"", "'")):
            return token[1:-1]
        if token in ("true", "false"):
            return token == "true"
        try:
            return int(token)
        except ValueError:
            return token

    def parse_array(body: str) -> List[object]:
        items: List[object] = []
        for part in re.findall(r"\"(?:[^\"\\]|\\.)*\"|'[^']*'|[^,\s\[\]]+", body):
            if part.strip():
                items.append(parse_scalar(part))
        return items

    for raw_line in text.splitlines():
        line = raw_line
        if "#" in line and "\"" not in line and "'" not in line:
            line = line.split("#", 1)[0]
        stripped = line.strip()
        if pending_key is not None:
            pending_chunks.append(stripped)
            if stripped.endswith("]"):
                body = " ".join(pending_chunks)
                current[pending_key] = parse_array(body[1:-1] if body.startswith("[") else body.rstrip("]"))
                pending_key, pending_chunks = None, []
            continue
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("[") and stripped.endswith("]") and "=" not in stripped:
            current = tables.setdefault(stripped[1:-1].strip(), {})
            continue
        if "=" in stripped:
            key, _, value = stripped.partition("=")
            key, value = key.strip().strip("\"'"), value.strip()
            if value.startswith("["):
                if value.endswith("]") and value.count("[") == value.count("]"):
                    current[key] = parse_array(value[1:-1])
                else:
                    pending_key, pending_chunks = key, [value[1:]]
            else:
                current[key] = parse_scalar(value)
    return tables


def _load_pyproject(path: Path) -> Dict[str, object]:
    text = path.read_text()
    try:
        import tomllib  # Python >= 3.11

        return tomllib.loads(text)
    except ImportError:  # pragma: no cover - exercised on the 3.9 CI floor
        tables = _parse_toml_subset(text)
        result: Dict[str, object] = {}
        for name, table in tables.items():
            if not name:
                continue
            node = result
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})  # type: ignore[assignment]
            node[parts[-1]] = table
        return result


def find_project_root(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest directory with pyproject.toml."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current] + list(current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def _tuple_of_str(value: object) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)):
        return tuple(str(item) for item in value)
    return ()


def load_config(root: Optional[Path]) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.replint]``, with defaults."""
    config = LintConfig()
    if root is None:
        return config
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    data = _load_pyproject(pyproject)
    table = data.get("tool", {})
    table = table.get("replint", {}) if isinstance(table, dict) else {}
    if not isinstance(table, dict):
        return config

    def get(key: str) -> object:
        return table.get(key, table.get(key.replace("_", "-")))

    if get("exclude") is not None:
        config.exclude = _tuple_of_str(get("exclude"))
    if get("select") is not None:
        config.select = _tuple_of_str(get("select"))
    if get("ignore") is not None:
        config.ignore = _tuple_of_str(get("ignore"))
    if get("traceability_paths") is not None:
        config.traceability_paths = _tuple_of_str(get("traceability_paths"))
    if get("future_import_paths") is not None:
        config.future_import_paths = _tuple_of_str(get("future_import_paths"))
    if get("api_init") is not None:
        config.api_init = str(get("api_init"))
    if get("api_doc") is not None:
        config.api_doc = str(get("api_doc"))
    if get("solver_adapters") is not None:
        config.solver_adapters = str(get("solver_adapters"))
    if get("solver_mark_paths") is not None:
        config.solver_mark_paths = _tuple_of_str(get("solver_mark_paths"))
    return config


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------

def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _excluded(relpath: str, config: LintConfig) -> bool:
    for pattern in config.exclude:
        pattern = pattern.rstrip("/")
        if (
            relpath == pattern
            or relpath.startswith(pattern + "/")
            or fnmatch.fnmatch(relpath, pattern)
        ):
            return True
    return False


def iter_python_files(
    targets: Sequence[Path], root: Path, config: LintConfig
) -> Iterator[Path]:
    """Yield the ``.py`` files under ``targets`` that survive excludes."""
    seen = set()
    for target in targets:
        if target.is_file():
            candidates: Iterable[Path] = [target]
        else:
            candidates = sorted(target.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if "__pycache__" in resolved.parts:
                continue
            if _excluded(_relpath(resolved, root), config):
                continue
            yield resolved


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def _codes_from_match(match: "re.Match[str]") -> Tuple[str, ...]:
    # each comma-separated chunk may carry a trailing justification
    # ("RPL001 returns the stored literal"); only its first token is a code
    return tuple(
        chunk.split()[0].upper() for chunk in match.group(1).split(",") if chunk.split()
    )


def _line_suppresses(line: str, code: str) -> bool:
    match = _SUPPRESS.search(line)
    if not match:
        return False
    codes = _codes_from_match(match)
    return "ALL" in codes or code in codes


def _suppressed(violation: Violation, lines: Sequence[str]) -> bool:
    """Inline ``# replint: disable=`` on the flagged line, on a decorator
    line directly above it, or file-level ``disable-file=``."""
    for line in lines:
        match = _SUPPRESS_FILE.search(line)
        if match:
            codes = _codes_from_match(match)
            if "ALL" in codes or violation.code in codes:
                return True
    if not (1 <= violation.line <= len(lines)):
        return False
    if _line_suppresses(lines[violation.line - 1], violation.code):
        return True
    # A suppression on a decorator also covers the decorated definition:
    # findings anchor at the `def` line, one-plus lines below `@decorator`.
    index = violation.line - 2
    while index >= 0 and lines[index].lstrip().startswith("@"):
        if _line_suppresses(lines[index], violation.code):
            return True
        index -= 1
    return False


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    targets: Tuple[str, ...] = ()
    #: populated by ``--deep``: files/edges/taint-steps/cache stats
    deep_stats: Optional[Dict[str, object]] = None
    #: findings dropped by a ``--baseline`` file
    baseline_suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if self.clean else EXIT_VIOLATIONS

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.code] = tally.get(violation.code, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "tool": "replint",
            "targets": list(self.targets),
            "files_checked": self.files_checked,
            "clean": self.clean,
            "counts": self.counts(),
            "violations": [violation.to_json() for violation in self.violations],
        }
        if self.deep_stats is not None:
            payload["deep"] = self.deep_stats
        if self.baseline_suppressed:
            payload["baseline_suppressed"] = self.baseline_suppressed
        return payload

    def to_sarif(self) -> Dict[str, object]:
        rules = [(r.code, r.name, r.rationale) for r in RULES]
        rules += [(r.code, r.name, r.rationale) for r in FLOW_RULES]
        rules.append(("RPL000", "syntax-error", "file does not parse"))
        return sarif_payload(self.violations, rules)


def run_lint(
    targets: Sequence[str],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
    *,
    deep: bool = False,
    deep_cache: bool = True,
    baseline: Optional[Path] = None,
) -> LintResult:
    """Lint ``targets`` (files or directories) and return the result.

    ``root`` anchors relative paths (config path prefixes, RPL004 file
    locations); it defaults to the nearest ancestor of the first target
    holding a pyproject.toml, falling back to the current directory.

    ``deep=True`` additionally runs the whole-program RPL008-RPL010 pass
    (:mod:`repro.lint.flow`); ``baseline`` drops findings recorded in a
    ``replint-baseline/1`` file.
    """
    target_paths = [Path(target) for target in targets]
    for target in target_paths:
        if not target.exists():
            raise FileNotFoundError(f"lint target does not exist: {target}")
    if root is None:
        anchor = target_paths[0] if target_paths else Path.cwd()
        root = find_project_root(anchor) or Path.cwd()
    root = root.resolve()
    if config is None:
        config = load_config(root)

    result = LintResult(targets=tuple(str(t) for t in targets))
    file_lines: Dict[str, Sequence[str]] = {}
    parsed: List[Tuple[str, str, ast.Module, Path]] = []
    for path in iter_python_files(target_paths, root, config):
        relpath = _relpath(path, root)
        # utf-8-sig transparently strips a BOM, which ast.parse rejects
        source = path.read_text(encoding="utf-8-sig")
        result.files_checked += 1
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            result.violations.append(
                Violation(
                    relpath, error.lineno or 1, (error.offset or 1), "RPL000",
                    f"syntax error: {error.msg}",
                )
            )
            continue
        file_lines[relpath] = source.splitlines()
        parsed.append((relpath, source, tree, path))
        ctx = ModuleContext(
            path=path, relpath=relpath, source=source, tree=tree,
            config=config, root=root,
        )
        for rule in RULES:
            if isinstance(rule, ProjectRule) or not config.rule_enabled(rule.code):
                continue
            result.violations.extend(rule.check(ctx))
    for rule in RULES:
        if isinstance(rule, ProjectRule) and config.rule_enabled(rule.code):
            result.violations.extend(rule.check_project(root, config))

    if deep:
        deep_violations, deep_stats = run_deep(
            parsed, root, config, use_cache=deep_cache
        )
        result.violations.extend(deep_violations)
        result.deep_stats = deep_stats

    kept: List[Violation] = []
    for violation in result.violations:
        lines = file_lines.get(violation.path)
        if lines is None:
            candidate = root / violation.path
            if candidate.is_file():
                lines = candidate.read_text(encoding="utf-8-sig").splitlines()
                file_lines[violation.path] = lines
            else:
                lines = ()
        if not _suppressed(violation, lines):
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    if baseline is not None:
        kept, result.baseline_suppressed = apply_baseline(
            kept, load_baseline(baseline)
        )
    result.violations = kept
    return result


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` options to an argparse parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks", "scripts"],
        help="files or directories to lint (default: src tests benchmarks scripts)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default=None,
        help="output format (--json is shorthand for --format json)",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program RPL008-RPL010 dataflow pass",
    )
    parser.add_argument(
        "--no-deep-cache", action="store_true",
        help="ignore and do not write the deep-pass findings cache",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="drop findings recorded in a replint-baseline/1 file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write the run's findings to a baseline file and exit clean",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.replint] in pyproject.toml",
    )
    parser.add_argument(
        "--root", default=None, help="project root (default: auto-detected)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit"
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed CLI arguments."""
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        for flow_rule in FLOW_RULES:
            print(
                f"{flow_rule.code}  {flow_rule.name} (--deep): "
                f"{flow_rule.rationale}"
            )
        return EXIT_CLEAN
    root = Path(args.root).resolve() if args.root else None
    if args.no_config:
        config = LintConfig()
    else:
        detected = root or find_project_root(Path(args.paths[0])) or Path.cwd()
        config = load_config(detected)
    if args.select:
        config.select = tuple(
            code.strip().upper() for code in args.select.split(",") if code.strip()
        )
    if args.ignore:
        config.ignore = tuple(
            code.strip().upper() for code in args.ignore.split(",") if code.strip()
        )
    unknown = [
        code
        for code in (config.select or ()) + config.ignore
        if code not in ALL_CODES + DEEP_CODES + ("RPL000",)
    ]
    if unknown:
        print(f"unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
        return EXIT_USAGE
    output = args.format or ("json" if args.json else "text")
    baseline = Path(args.baseline) if args.baseline else None
    try:
        result = run_lint(
            args.paths,
            config=config,
            root=root,
            deep=args.deep,
            deep_cache=not args.no_deep_cache,
            baseline=baseline,
        )
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    except ValueError as error:  # malformed baseline file
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    if args.write_baseline:
        written = write_baseline(result.violations, Path(args.write_baseline))
        print(
            f"replint: wrote {written} baseline entr"
            f"{'y' if written == 1 else 'ies'} to {args.write_baseline}"
        )
        return EXIT_CLEAN
    if output == "json":
        print(json.dumps(result.to_json(), indent=2))
    elif output == "sarif":
        print(json.dumps(result.to_sarif(), indent=2))
    else:
        for violation in result.violations:
            print(violation.render())
        noun = "violation" if len(result.violations) == 1 else "violations"
        summary = (
            f"replint: {len(result.violations)} {noun} "
            f"({result.files_checked} files checked"
        )
        if result.deep_stats is not None:
            stats = result.deep_stats
            summary += (
                f"; deep: {stats.get('call_graph_edges', 0)} call edges, "
                f"{stats.get('taint_steps', 0)} taint steps, "
                f"cache {'hit' if stats.get('cache_hit') else 'miss'}"
            )
        if result.baseline_suppressed:
            summary += f"; {result.baseline_suppressed} baselined"
        print(summary + ")")
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point: ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="domain-aware static analysis for the reproduction "
        "(exactness, reproducibility, paper traceability)",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))
