"""Allow ``python -m repro.lint src tests``."""

from __future__ import annotations

import sys

from .engine import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
