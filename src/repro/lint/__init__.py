"""``repro.lint`` — domain-aware static analysis for the reproduction.

Machine-checked guardrails for invariants the test suite can only
sample: exact-``Fraction`` arithmetic (Lemma 2.1 evaluators), seeded
randomness (EXPERIMENTS.md), paper traceability (docs/paper_map.md),
and public-API/doc coherence.  See docs/linting.md for the rule
catalogue and rationale.

Programmatic use::

    from repro.lint import run_lint

    result = run_lint(["src", "tests"])
    assert result.clean, result.violations
"""

from __future__ import annotations

from .callgraph import DefUse, ProjectGraph, def_use_chains
from .engine import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    LintResult,
    find_project_root,
    load_config,
    main,
    run_lint,
)
from .flow import DEEP_CODES, FLOW_RULES, run_deep, write_baseline
from .rules import ALL_CODES, LintConfig, RULES, Rule, Violation

__all__ = [
    "ALL_CODES",
    "DEEP_CODES",
    "DefUse",
    "EXIT_CLEAN",
    "EXIT_USAGE",
    "EXIT_VIOLATIONS",
    "FLOW_RULES",
    "LintConfig",
    "LintResult",
    "ProjectGraph",
    "RULES",
    "Rule",
    "Violation",
    "def_use_chains",
    "find_project_root",
    "load_config",
    "main",
    "run_deep",
    "run_lint",
    "write_baseline",
]
