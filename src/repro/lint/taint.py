"""Interprocedural taint analysis for the deep lint pass (Lemma 2.1 guard).

A small summary-based dataflow engine over :class:`~repro.lint.callgraph.
ProjectGraph`.  Taint values are frozensets over two kinds of tags:

* ``"T"`` — concretely tainted here (a float literal, an unseeded RNG, ...);
* ``("P", i)`` — tainted **iff** the enclosing function's ``i``-th
  parameter is tainted by some caller.

Each function gets a :class:`Summary` — the taint of its return value
expressed over those tags, plus the set of parameters that reach a sink
inside it (transitively, through further calls).  Summaries are computed
by **fixpoint iteration over the call graph**: every pass re-runs the
intraprocedural abstract evaluation against the current summary table
until nothing changes (the lattice is finite and the transfer functions
monotone, so this terminates).  A final reporting pass emits findings
where a concrete ``"T"`` meets a sink — directly, or by feeding a
sink-reaching parameter of a callee.

Two policies instantiate the engine:

* :class:`ExactnessPolicy` (RPL008) — float taint must not reach exact
  arithmetic: ``Fraction(x)`` on a tainted ``x``, or a call into an
  exact-marked / registry-declared exact solver function.
* :class:`SeedFlowPolicy` (RPL009) — entropy that does not descend from
  an explicit seed (no-arg ``default_rng()``, ``time.time()``-seeded
  generators, ``os.urandom``...) must not reach the seeded domain
  (``repro.cellnet``, ``repro.distributions``, ``repro.experiments``,
  ``FaultInjector``, or any module marked ``replint: seed-domain``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import (
    Callee,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    stmt_expressions,
)

TAINTED = "T"
Taint = FrozenSet[object]
EMPTY: Taint = frozenset()
HOT: Taint = frozenset({TAINTED})

#: Iteration bounds — generous backstops, never hit on real code shapes.
MAX_FIXPOINT_PASSES = 24
MAX_BODY_PASSES = 3


def param_tag(index: int) -> Tuple[str, int]:
    return ("P", index)


def substitute(taint: Taint, arg_taints: Sequence[Taint]) -> Taint:
    """Rewrite a callee-relative taint into the caller's frame.

    Parameter tags resolve to the caller's argument taints; every other
    tag (``"T"``, policy-specific markers like exactness/entropy) passes
    through unchanged.
    """
    out: Set[object] = set()
    for tag in taint:
        if isinstance(tag, tuple) and tag[0] == "P":
            index = tag[1]
            if 0 <= index < len(arg_taints):
                out |= arg_taints[index]
        else:
            out.add(tag)
    return frozenset(out)


@dataclass
class Summary:
    """What a function does with taint, from the outside."""

    ret: Taint = EMPTY
    #: parameter index → description of the sink it (transitively) reaches
    sink_params: Dict[int, str] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Summary)
            and self.ret == other.ret
            and self.sink_params == other.sink_params
        )


@dataclass(frozen=True)
class Finding:
    relpath: str
    line: int
    col: int
    code: str
    message: str


class TaintPolicy:
    """Hook points a rule family implements over the generic engine."""

    code = "RPL9XX"

    def literal(self, node: ast.Constant) -> Taint:
        return EMPTY

    def binop(self, node: ast.BinOp, left: Taint, right: Taint) -> Optional[Taint]:
        """Override the default union for an operator, or return None."""
        return None

    def attribute_source(self, dotted: str) -> Optional[Taint]:
        """Taint for a bare attribute read like ``math.pi`` (dotted chain)."""
        return None

    def intercept_call(
        self, node: ast.Call, callee: Callee, ev: "Evaluator"
    ) -> Optional[Taint]:
        """Fully handle a call (sources, sanitizers, direct sinks).

        Return the result taint to short-circuit the default handling, or
        ``None`` to fall through (project summaries / arg-union default).
        ``ev`` exposes :meth:`Evaluator.eval`, :meth:`Evaluator.report`
        and :meth:`Evaluator.mark_param_sink`.
        """
        return None

    def project_sink(self, info: FunctionInfo, ev: "Evaluator") -> Optional[str]:
        """If calling ``info`` with tainted args is a sink, describe it."""
        return None

    def sink_slots(self, info: FunctionInfo) -> Optional[Sequence[int]]:
        """Which parameter slots :meth:`project_sink` guards (None = all)."""
        return None


class Evaluator:
    """Abstract interpretation of one function body (or module body)."""

    def __init__(
        self,
        engine: "TaintAnalysis",
        module: ModuleInfo,
        func: Optional[FunctionInfo],
        report: bool,
    ) -> None:
        self.engine = engine
        self.policy = engine.policy
        self.graph = engine.graph
        self.module = module
        self.func = func
        self.reporting = report
        self.env: Dict[str, Taint] = {}
        self.ret: Taint = EMPTY
        self.sink_params: Dict[int, str] = {}
        self._depth = 0
        if func is not None:
            for index, name in enumerate(func.params):
                self.env[name] = frozenset({param_tag(index)})

    # -- engine API exposed to policies --------------------------------
    def report(self, node: ast.AST, message: str) -> None:
        if self.reporting:
            self.engine.findings.add(
                Finding(
                    self.module.relpath,
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0) + 1,
                    self.policy.code,
                    message,
                )
            )

    def mark_param_sink(self, index: int, description: str) -> None:
        self.sink_params.setdefault(index, description)

    def sink_check(self, node: ast.AST, taint: Taint, description: str) -> None:
        """Concrete taint → finding; param taint → conditional sink."""
        if TAINTED in taint:
            self.report(node, description)
        for tag in taint:
            if isinstance(tag, tuple) and tag[0] == "P":
                self.mark_param_sink(
                    tag[1],
                    f"parameter {self._param_name(tag[1])!r} flows into: "
                    + description,
                )

    def _param_name(self, index: int) -> str:
        if self.func is not None and 0 <= index < len(self.func.params):
            return self.func.params[index]
        return f"#{index}"

    # -- statement walk -------------------------------------------------
    def run(self) -> Summary:
        body = self.func.node.body if self.func is not None else self.module.tree.body
        self._block(body)
        return Summary(ret=self.ret, sink_params=dict(self.sink_params))

    def _block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _loop(self, body: Sequence[ast.stmt]) -> None:
        """Approximate loop-carried flow: run the body twice, weakly."""
        self._depth += 1
        for _ in range(MAX_BODY_PASSES - 1):
            self._block(body)
        self._depth -= 1

    def _branch(self, *bodies: Sequence[ast.stmt]) -> None:
        self._depth += 1
        for body in bodies:
            self._block(body)
        self._depth -= 1

    def _stmt(self, stmt: ast.stmt) -> None:
        self.engine.steps += 1
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate scopes, analyzed on their own
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                previous = self.env.get(stmt.target.id, EMPTY)
                self.env[stmt.target.id] = previous | taint
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.ret |= self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            self._branch(stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self.eval(stmt.iter)
            self._bind(stmt.target, iter_taint, weak=True)
            self._loop(stmt.body)
            self._branch(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._loop(stmt.body)
            self._branch(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._branch(stmt.body, stmt.orelse, stmt.finalbody)
            for handler in stmt.handlers:
                self._branch(handler.body)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        else:
            for expr in stmt_expressions(stmt):
                self.eval(expr)

    def _bind(self, target: ast.expr, taint: Taint, *, weak: bool = False) -> None:
        if isinstance(target, ast.Name):
            if weak or self._depth > 0:
                self.env[target.id] = self.env.get(target.id, EMPTY) | taint
            else:
                self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint, weak=weak)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, weak=weak)
        # attribute / subscript stores: taint escapes into the object;
        # the coarse object model drops it (objects are opaque here).

    # -- expression evaluation ------------------------------------------
    def eval(self, node: ast.expr) -> Taint:
        self.engine.steps += 1
        if isinstance(node, ast.Constant):
            return self.policy.literal(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            override = self.policy.binop(node, left, right)
            return override if override is not None else left | right
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for comparator in node.comparators:
                self.eval(comparator)
            return EMPTY  # comparisons yield bools
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            chain = _attr_dotted(node, self.module)
            if chain is not None:
                source = self.policy.attribute_source(chain)
                if source is not None:
                    return source
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice if isinstance(node.slice, ast.expr) else node.value)
            return self.eval(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = EMPTY
            for element in node.elts:
                out |= self.eval(element)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self.eval(key)
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension(node.generators, node.elt)
        if isinstance(node, ast.DictComp):
            taint = self._comprehension(node.generators, node.value)
            return taint | self.eval(node.key)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                self.eval(value)
            return EMPTY  # strings are never taint carriers here
        if isinstance(node, ast.FormattedValue):
            self.eval(node.value)
            return EMPTY
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            self._bind(node.target, taint)
            return taint
        # conservative default: union over child expressions
        out = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child)
        return out

    def _comprehension(self, generators, elt: ast.expr) -> Taint:
        self._depth += 1
        for gen in generators:
            self._bind(gen.target, self.eval(gen.iter), weak=True)
            for condition in gen.ifs:
                self.eval(condition)
        taint = self.eval(elt)
        self._depth -= 1
        return taint

    def _call(self, node: ast.Call) -> Taint:
        callee = self.graph.resolve_call(
            self.module, self.func, node, local_names=set(self.env)
        )
        override = self.policy.intercept_call(node, callee, self)
        if override is not None:
            return override
        arg_taints = [self.eval(arg) for arg in node.args]
        kw_taints = {
            kw.arg: self.eval(kw.value) for kw in node.keywords
        }
        if callee.kind == "project" and callee.qualname is not None:
            info = self.graph.functions[callee.qualname]
            positional = self._frame(info, node, arg_taints, kw_taints)
            summary = self.engine.summaries.get(callee.qualname, Summary())
            sink = self.policy.project_sink(info, self)
            if sink is not None:
                slots = self.policy.sink_slots(info)
                for index, taint in enumerate(positional):
                    if slots is None or index in slots:
                        self.sink_check(node, taint, sink)
            for index, description in summary.sink_params.items():
                if 0 <= index < len(positional):
                    self.sink_check(
                        node,
                        positional[index],
                        f"value reaches exact/seeded sink via "
                        f"{info.local}(): {description}",
                    )
            return substitute(summary.ret, positional)
        # unknown/external: result carries whatever the arguments carried
        out = EMPTY
        for taint in arg_taints:
            out |= taint
        for taint in kw_taints.values():
            out |= taint
        return out

    def _frame(
        self,
        info: FunctionInfo,
        node: ast.Call,
        arg_taints: List[Taint],
        kw_taints: Dict[Optional[str], Taint],
    ) -> List[Taint]:
        """Lay caller argument taints out against the callee's parameters."""
        offset = 1 if info.class_name is not None and info.params[:1] == ("self",) else 0
        frame: List[Taint] = [EMPTY] * len(info.params)
        if offset and isinstance(node.func, ast.Attribute):
            frame[0] = self.eval(node.func.value)
        for position, taint in enumerate(arg_taints):
            index = position + offset
            if index < len(frame):
                frame[index] = taint
        for name, taint in kw_taints.items():
            if name is None:
                continue
            if name in info.params:
                frame[info.params.index(name)] = taint
        return frame


def _attr_dotted(node: ast.Attribute, module: ModuleInfo) -> Optional[str]:
    """``np.pi`` → ``numpy.pi`` (through the import map), else None."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    head = module.imports.get(current.id, current.id)
    return ".".join([head] + parts[::-1])


# ---------------------------------------------------------------------------
# The fixpoint engine
# ---------------------------------------------------------------------------

class TaintAnalysis:
    """Run one policy to fixpoint over the project call graph."""

    def __init__(self, graph: ProjectGraph, policy: TaintPolicy) -> None:
        self.graph = graph
        self.policy = policy
        self.summaries: Dict[str, Summary] = {
            qualname: Summary() for qualname in graph.functions
        }
        self.findings: Set[Finding] = set()
        self.steps = 0
        self.passes = 0

    def run(self) -> List[Finding]:
        changed = True
        while changed and self.passes < MAX_FIXPOINT_PASSES:
            changed = False
            self.passes += 1
            for qualname, info in self.graph.functions.items():
                module = self.graph.modules[info.relpath]
                summary = Evaluator(self, module, info, report=False).run()
                if summary != self.summaries[qualname]:
                    self.summaries[qualname] = summary
                    changed = True
        # reporting pass: functions, then module-level statements
        for info in self.graph.functions.values():
            module = self.graph.modules[info.relpath]
            Evaluator(self, module, info, report=True).run()
        for module in self.graph.modules.values():
            Evaluator(self, module, None, report=True).run()
        return sorted(
            self.findings,
            key=lambda f: (f.relpath, f.line, f.col, f.message),
        )


# ---------------------------------------------------------------------------
# RPL008 — exactness taint
# ---------------------------------------------------------------------------

_FLOAT_CASTS = {"float", "float16", "float32", "float64", "float_"}
_MATH_FLOAT_FUNCS = {
    "sqrt", "exp", "expm1", "log", "log2", "log10", "log1p", "sin", "cos",
    "tan", "atan", "atan2", "asin", "acos", "sinh", "cosh", "tanh", "hypot",
    "pow", "fsum", "dist", "degrees", "radians", "copysign", "fmod", "ldexp",
    "nextafter", "ulp",
}
#: math functions that return int in Python 3 — sanitizers, not sources
_MATH_INT_FUNCS = {
    "ceil", "floor", "trunc", "isqrt", "gcd", "lcm", "comb", "perm",
    "factorial",
}
_NUMPY_FLOAT_FUNCS = {
    "mean", "average", "std", "var", "exp", "log", "log2", "log10", "sqrt",
    "dot", "trapz", "linspace", "interp", "median", "percentile", "quantile",
    "divide", "true_divide",
}
_RNG_FLOAT_METHODS = {
    "uniform", "normal", "random", "standard_normal", "dirichlet", "beta",
    "gamma", "exponential", "chisquare", "lognormal", "triangular", "wald",
}
_FLOAT_ATTRS = {
    "math.pi", "math.e", "math.tau", "math.inf", "math.nan",
    "numpy.pi", "numpy.e", "numpy.inf", "numpy.nan",
}
#: methods whose result deliberately crosses the exact/float boundary —
#: audited seams, so the result is NOT treated as contaminating taint:
#: ``float_view``/``as_integer_ratio`` leave the exact domain on purpose,
#: ``limit_denominator`` re-enters it by sanctioned quantization, and
#: ``from_array`` constructs the (explicitly float-capable) instance
#: payload whose exactness is tracked by ``PagingInstance.is_exact``.
_EXACT_BOUNDARY_METHODS = {
    "float_view", "as_integer_ratio", "limit_denominator", "from_array",
}
_UNTAINTED_CALLS = {
    "str", "repr", "int", "bool", "len", "abs", "ord", "hash", "range",
    "enumerate", "zip", "isinstance", "getattr", "hasattr", "print",
}

#: tag carried by values the analysis knows to be exact (Fraction-built);
#: division between exact values stays exact, so it is not a float source.
EXACT = "E"
EXACT_T: Taint = frozenset({EXACT})


class ExactnessPolicy(TaintPolicy):
    """RPL008: no float-tainted value may reach exact arithmetic."""

    code = "RPL008"
    name = "exactness-taint"
    rationale = (
        "interprocedural Fraction/exact-path protection: float-tainted "
        "values (float literals, true division, numpy/math results) must "
        "not reach Fraction() or exact-marked/registry-exact functions"
    )

    def __init__(self, registry_sinks: Iterable[str] = ()) -> None:
        #: dotted names of solver-registry functions with exact semantics
        self.registry_sinks = frozenset(registry_sinks)

    def literal(self, node: ast.Constant) -> Taint:
        return HOT if isinstance(node.value, float) else EMPTY

    def binop(self, node: ast.BinOp, left: Taint, right: Taint) -> Optional[Taint]:
        if isinstance(node.op, ast.Div):
            combined = left | right
            if EXACT in combined:
                # Fraction / Fraction (either side provably exact) stays
                # exact under PEP 238 — not a float source.
                return combined
            if combined:
                # Operands tied to parameters (or already tainted): the
                # exactness of the quotient is decided at the call sites,
                # where the parameter tags resolve to real taints.
                return combined
            return HOT
        return None

    def attribute_source(self, dotted: str) -> Optional[Taint]:
        if dotted in _FLOAT_ATTRS:
            return HOT
        return None

    def intercept_call(
        self, node: ast.Call, callee: Callee, ev: Evaluator
    ) -> Optional[Taint]:
        attr = callee.attr
        # -- sanitizers / audited boundaries ---------------------------
        if attr in _EXACT_BOUNDARY_METHODS:
            # evaluate the receiver for bookkeeping, but: Fraction(x) under
            # .limit_denominator() is the sanctioned float→exact
            # quantization, so suppress the inner Fraction sink.
            if (
                attr == "limit_denominator"
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Call)
                and _is_fraction_call(node.func.value, ev)
            ):
                for arg in node.func.value.args:
                    ev.eval(arg)
            elif isinstance(node.func, ast.Attribute):
                ev.eval(node.func.value)
            for arg in node.args:
                ev.eval(arg)
            # limit_denominator() re-enters the exact domain; the other
            # boundary methods deliberately leave it (plain float/ints).
            return EXACT_T if attr == "limit_denominator" else EMPTY
        if attr in _UNTAINTED_CALLS and callee.kind == "external":
            for arg in node.args:
                ev.eval(arg)
            return EMPTY
        if attr == "round" and callee.kind == "external":
            taints = [ev.eval(arg) for arg in node.args]
            return EMPTY if len(node.args) == 1 else (HOT if taints else EMPTY)
        # -- Fraction(): sink for tainted args, sanitizer otherwise ----
        if _is_fraction_callee(callee):
            return self._fraction(node, ev)
        # -- float sources ---------------------------------------------
        if attr in _FLOAT_CASTS and callee.kind in ("external", "method"):
            for arg in node.args:
                ev.eval(arg)
            return HOT
        dotted = callee.dotted
        if dotted.startswith("math.") and attr in _MATH_INT_FUNCS:
            for arg in node.args:
                ev.eval(arg)
            return EMPTY
        if dotted.startswith("math.") and attr in _MATH_FLOAT_FUNCS:
            for arg in node.args:
                ev.eval(arg)
            return HOT
        if dotted.startswith(("numpy.", "np.")) and attr in _NUMPY_FLOAT_FUNCS:
            for arg in node.args:
                ev.eval(arg)
            return HOT
        if callee.kind == "method" and attr in _RNG_FLOAT_METHODS | {
            "mean", "std", "var"
        }:
            for arg in node.args:
                ev.eval(arg)
            return HOT
        return None

    def _fraction(self, node: ast.Call, ev: Evaluator) -> Taint:
        args = node.args
        if len(args) >= 2 or not args:
            for arg in args:
                ev.eval(arg)
            return EXACT_T  # integer-ratio (or empty) construction is exact
        first = args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, (str, int)):
            return EXACT_T
        if isinstance(first, ast.Call):
            chain_attr = first.func
            name = (
                chain_attr.id if isinstance(chain_attr, ast.Name)
                else chain_attr.attr if isinstance(chain_attr, ast.Attribute)
                else ""
            )
            if name == "str":
                for arg in first.args:
                    ev.eval(arg)
                return EXACT_T  # Fraction(str(x)): the sanctioned sanitizer
        taint = ev.eval(first)
        ev.sink_check(
            node,
            taint,
            "float-tainted value flows into Fraction(); binary rounding "
            "error becomes exact — sanitize with Fraction(str(x)) or "
            "quantize with Fraction(x).limit_denominator(...)",
        )
        return EXACT_T

    def project_sink(self, info: FunctionInfo, ev: Evaluator) -> Optional[str]:
        if info.exact_marked or info.dotted in self.registry_sinks:
            origin = (
                "registry-exact solver" if info.dotted in self.registry_sinks
                else "exact-marked function"
            )
            return (
                f"float-tainted value passed to {origin} {info.local!r}; "
                "keep exact paths in Fraction/int arithmetic"
            )
        return None

    def sink_slots(self, info: FunctionInfo) -> Optional[Sequence[int]]:
        # Only the payload argument (instance / probabilities) must stay
        # exact; trailing tolerance/limit knobs are float by design.
        return (1,) if info.params[:1] == ("self",) else (0,)


def _is_fraction_callee(callee: Callee) -> bool:
    return callee.attr == "Fraction" and (
        callee.kind == "external" or callee.dotted.endswith("Fraction")
    )


def _is_fraction_call(node: ast.Call, ev: Evaluator) -> bool:
    callee = ev.graph.resolve_call(ev.module, ev.func, node, local_names=set(ev.env))
    return _is_fraction_callee(callee)


# ---------------------------------------------------------------------------
# RPL009 — seed flow
# ---------------------------------------------------------------------------

_ENTROPY_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes", "secrets.token_hex",
    "secrets.randbits", "secrets.randbelow", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
}
_RNG_CONSTRUCTORS = {"default_rng", "SeedSequence", "Random", "PCG64",
                     "MT19937", "Philox", "SFC64", "Generator"}
_GLOBAL_SAMPLERS = {
    "random", "rand", "randint", "randn", "choice", "shuffle", "uniform",
    "normal", "sample", "randrange", "gauss", "betavariate", "randbytes",
    "random_sample", "permutation", "seed",
}

#: tag for nondeterministic entropy (wall clock, OS randomness).  Harmless
#: on its own — a perf_counter() duration may flow anywhere — but an RNG
#: *seeded* from it is as irreproducible as an unseeded one.
ENTROPY = "N"
ENTROPY_T: Taint = frozenset({ENTROPY})

#: module prefixes whose functions form the seeded domain (ISSUE 6 scope)
DEFAULT_SEED_DOMAIN = ("repro.cellnet", "repro.distributions", "repro.experiments")


class SeedFlowPolicy(TaintPolicy):
    """RPL009: every RNG reaching the seeded domain descends from a seed."""

    code = "RPL009"
    name = "seed-flow"
    rationale = (
        "RNGs reaching cellnet/distributions/experiments/FaultInjector "
        "must descend from an explicit SeedSequence or seeded Generator; "
        "no-arg default_rng() and wall-clock/OS-entropy seeds break the "
        "EXPERIMENTS.md reproducibility contract"
    )

    def __init__(self, domain_prefixes: Sequence[str] = DEFAULT_SEED_DOMAIN) -> None:
        self.domain_prefixes = tuple(domain_prefixes)

    # -- helpers --------------------------------------------------------
    def _in_domain(self, ev: Evaluator) -> bool:
        if ev.module.seed_domain:
            return True
        module = ev.module.name
        if any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.domain_prefixes
        ):
            return True
        func = ev.func
        return func is not None and func.class_name == "FaultInjector"

    def _domain_sink(self, info: FunctionInfo, graph_module: ModuleInfo) -> bool:
        if graph_module.seed_domain:
            return True
        if any(
            info.module == prefix or info.module.startswith(prefix + ".")
            for prefix in self.domain_prefixes
        ):
            return True
        return info.class_name == "FaultInjector"

    # -- policy hooks ---------------------------------------------------
    def intercept_call(
        self, node: ast.Call, callee: Callee, ev: Evaluator
    ) -> Optional[Taint]:
        dotted = callee.dotted
        if dotted in _ENTROPY_CALLS or (
            dotted.startswith("secrets.") and callee.kind == "external"
        ):
            return ENTROPY_T
        if callee.attr in _RNG_CONSTRUCTORS and callee.kind in (
            "external", "method"
        ):
            return self._construct_rng(node, ev)
        if (
            callee.kind == "external"
            and callee.attr in _GLOBAL_SAMPLERS
            and (
                dotted.startswith("random.")
                or dotted.startswith("numpy.random.")
                or dotted.startswith("np.random.")
            )
        ):
            for arg in node.args:
                ev.eval(arg)
            if self._in_domain(ev):
                ev.report(
                    node,
                    f"module-level RNG state ({dotted}) used inside the "
                    "seeded domain; draw from a Generator that descends "
                    "from an explicit SeedSequence instead",
                )
            return HOT
        return None

    def _construct_rng(self, node: ast.Call, ev: Evaluator) -> Taint:
        seeds = [ev.eval(arg) for arg in node.args]
        seeds += [ev.eval(kw.value) for kw in node.keywords if kw.arg != "spawn_key"]
        explicit_none = any(
            isinstance(arg, ast.Constant) and arg.value is None for arg in node.args
        )
        union: Taint = EMPTY
        for seed in seeds:
            union |= seed
        if not seeds or explicit_none or TAINTED in union or ENTROPY in union:
            # unseeded, or seeded from wall clock/OS entropy/another
            # unseeded generator — the result is nondeterministic.
            taint = HOT | (union - {ENTROPY})
        else:
            taint = union
        if TAINTED in taint and self._in_domain(ev):
            ev.report(
                node,
                "generator created without a reproducible seed inside the "
                "seeded domain; derive it from a SeedSequence or a seeded "
                "Generator parameter",
            )
        return taint

    def project_sink(self, info: FunctionInfo, ev: Evaluator) -> Optional[str]:
        module = ev.graph.modules.get(info.relpath)
        if module is not None and self._domain_sink(info, module):
            return (
                f"unseeded/nondeterministic RNG state reaches seeded-domain "
                f"function {info.local!r}; every generator must descend from "
                "an explicit seed (EXPERIMENTS.md contract)"
            )
        return None
