"""The deep lint pass: RPL008-RPL010 over the whole-program model.

``run_deep`` is the orchestration layer the engine calls for
``repro lint --deep``:

1. build a :class:`~repro.lint.callgraph.ProjectGraph` from the already
   parsed files;
2. run the two taint fixpoints (:class:`~repro.lint.taint.
   ExactnessPolicy` for RPL008, :class:`~repro.lint.taint.SeedFlowPolicy`
   for RPL009) and the RPL010 shared-state scan;
3. cache the findings keyed by a digest of every file's content hash, the
   analyzer version, and the effective configuration — CI reruns on an
   unchanged tree are a single JSON read;
4. emit a ``lint.deep`` span and counters through :mod:`repro.obs`.

The module also owns the SARIF serialization and the baseline-file
support (``--baseline`` / ``--write-baseline``) for adopting the deep
rules on a tree with known, justified findings.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..obs import count, span
from .callgraph import FunctionInfo, ModuleInfo, ProjectGraph, own_calls
from .rules import LintConfig, Violation
from .taint import (
    DEFAULT_SEED_DOMAIN,
    ExactnessPolicy,
    Finding,
    SeedFlowPolicy,
    TaintAnalysis,
)

#: Bump when analysis semantics change — invalidates every cache.
ANALYZER_VERSION = "1"
CACHE_FILENAME = ".replint-deep-cache.json"
BASELINE_SCHEMA = "replint-baseline/1"


@dataclass(frozen=True)
class FlowRule:
    """Descriptor for one deep rule (mirrors the shallow Rule surface)."""

    code: str
    name: str
    rationale: str


FLOW_RULES: Tuple[FlowRule, ...] = (
    FlowRule(
        "RPL008",
        "exactness-taint",
        "interprocedural float→Fraction contamination tracking: float "
        "literals, true division, and numpy/math results must not reach "
        "Fraction() or exact-marked/registry-exact solver functions "
        "(sanitizers: Fraction(str(x)), Fraction(x).limit_denominator(n))",
    ),
    FlowRule(
        "RPL009",
        "seed-flow",
        "dataflow proof that every RNG reaching repro.cellnet/"
        "repro.distributions/repro.experiments/FaultInjector descends "
        "from an explicit SeedSequence or seeded Generator parameter",
    ),
    FlowRule(
        "RPL010",
        "shared-state-safety",
        "module-level mutables and closure-captured state must not be "
        "mutated inside functions dispatched by the parallel runner "
        "(pool.submit/map targets, Process/Thread targets, replint: "
        "worker functions)",
    ),
)

DEEP_CODES: Tuple[str, ...] = tuple(rule.code for rule in FLOW_RULES)


def registry_exact_sinks() -> FrozenSet[str]:
    """Dotted names of exact-path functions declared by the solver
    registry — the RPL008 sink set the tentpole derives from the
    registry's adapter metadata.  Degrades to the marker-based sinks
    alone when the registry (and its numpy dependency) is unavailable.
    """
    try:
        import repro.solvers  # noqa: F401  (populates the registry)
        from repro.solvers.registry import exact_sink_functions
    except Exception:
        return frozenset()
    try:
        return frozenset(exact_sink_functions())
    except Exception:
        return frozenset()


# ---------------------------------------------------------------------------
# RPL010 — shared-state safety
# ---------------------------------------------------------------------------

_SUBMIT_METHODS = {"submit"}
_MAP_METHODS = {
    "map", "imap", "imap_unordered", "starmap", "starmap_async",
    "map_async", "apply", "apply_async",
}
_THREAD_CONSTRUCTORS = {"Process", "Thread"}
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    "__setitem__",
}


def _resolve_func_ref(
    graph: ProjectGraph,
    module: ModuleInfo,
    func: Optional[FunctionInfo],
    expr: ast.expr,
) -> Optional[FunctionInfo]:
    """Resolve a function *reference* (not a call) to a project function."""
    if isinstance(expr, ast.Call):
        # functools.partial(f, ...) and friends: chase the first argument
        if expr.args:
            return _resolve_func_ref(graph, module, func, expr.args[0])
        return None
    if isinstance(expr, ast.Name):
        target = module.functions.get(expr.id)
        if target is not None and target.parent is None and target.class_name is None:
            return target
        if expr.id in module.imports:
            return graph.resolve_dotted(module.imports[expr.id], module)
        return None
    if isinstance(expr, ast.Attribute):
        parts: List[str] = []
        node: ast.expr = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        parts = parts[::-1]
        if head == "self" and func is not None and func.class_name is not None:
            return module.functions.get(f"{func.class_name}.{parts[-1]}")
        if head in module.imports:
            dotted = module.imports[head] + "." + ".".join(parts)
            return graph.resolve_dotted(dotted, module)
        return module.functions.get(".".join([head] + parts))
    return None


def _dispatch_roots(graph: ProjectGraph) -> List[str]:
    """Qualnames of functions handed to a parallel executor (or marked)."""
    roots = [
        qualname
        for qualname, info in graph.functions.items()
        if info.worker_marked
    ]
    for module in graph.modules.values():
        scopes: List[Tuple[Optional[FunctionInfo], ast.AST]] = [(None, module.tree)]
        scopes += [(info, info.node) for info in module.functions.values()]
        for func, node in scopes:
            for call in own_calls(node):  # type: ignore[arg-type]
                callee = graph.resolve_call(module, func, call)
                candidates: List[ast.expr] = []
                if callee.kind == "method" and callee.attr in (
                    _SUBMIT_METHODS | _MAP_METHODS
                ):
                    candidates = list(call.args[:1])
                elif callee.attr in _THREAD_CONSTRUCTORS:
                    candidates = [
                        kw.value for kw in call.keywords if kw.arg == "target"
                    ]
                for expr in candidates:
                    target = _resolve_func_ref(graph, module, func, expr)
                    if target is not None:
                        roots.append(target.qualname)
    return roots


def _assigned_names(info: FunctionInfo) -> Set[str]:
    """Names bound inside ``info`` itself (params + stores, no nested defs)."""
    from .callgraph import own_statements, stmt_expressions, walk_expr

    names = set(info.params)
    for stmt in own_statements(info.node):
        for expr in stmt_expressions(stmt):
            for child in walk_expr(expr):
                if isinstance(child, ast.Name) and isinstance(
                    child.ctx, (ast.Store, ast.Del)
                ):
                    names.add(child.id)
    return names


def _enclosing_locals(graph: ProjectGraph, info: FunctionInfo) -> Dict[str, str]:
    """name → enclosing function local-name, for every closure candidate."""
    captured: Dict[str, str] = {}
    parent = info.parent
    while parent is not None:
        outer = graph.functions.get(parent)
        if outer is None:
            break
        for name in _assigned_names(outer):
            captured.setdefault(name, outer.local)
        parent = outer.parent
    return captured


def shared_state_findings(graph: ProjectGraph) -> Tuple[List[Finding], int]:
    """RPL010: mutations of shared state reachable from parallel dispatch.

    Returns the findings plus the number of functions in the dispatch
    closure (for the stats/obs surface).
    """
    from .callgraph import own_statements, stmt_expressions, walk_expr

    roots = _dispatch_roots(graph)
    reachable = graph.reachable_from(roots)
    findings: Set[Finding] = set()

    def report(info: FunctionInfo, node: ast.AST, message: str) -> None:
        findings.add(
            Finding(
                info.relpath,
                getattr(node, "lineno", info.lineno),
                getattr(node, "col_offset", 0) + 1,
                "RPL010",
                f"{message} (reached from parallel dispatch via "
                f"{info.local!r})",
            )
        )

    for qualname in sorted(reachable):
        info = graph.functions[qualname]
        module = graph.modules[info.relpath]
        local_names = _assigned_names(info)
        closure = _enclosing_locals(graph, info)
        declared_global: Set[str] = set()
        declared_nonlocal: Set[str] = set()
        for stmt in own_statements(info.node):
            if isinstance(stmt, ast.Global):
                declared_global.update(stmt.names)
            elif isinstance(stmt, ast.Nonlocal):
                declared_nonlocal.update(stmt.names)
        for stmt in own_statements(info.node):
            for expr in stmt_expressions(stmt):
                for child in walk_expr(expr):
                    if isinstance(child, ast.Name) and isinstance(
                        child.ctx, (ast.Store, ast.Del)
                    ):
                        if child.id in declared_global:
                            report(
                                info, child,
                                f"module-level name {child.id!r} rebound in "
                                "a worker; per-process/thread state races",
                            )
                        elif child.id in declared_nonlocal:
                            report(
                                info, child,
                                f"closure variable {child.id!r} rebound in "
                                "a worker; captured state is shared",
                            )
                    elif isinstance(child, ast.Call) and isinstance(
                        child.func, ast.Attribute
                    ):
                        receiver = child.func.value
                        method = child.func.attr
                        if (
                            method in _MUTATOR_METHODS
                            and isinstance(receiver, ast.Name)
                            and receiver.id not in local_names
                        ):
                            name = receiver.id
                            if name in module.mutable_globals:
                                report(
                                    info, child,
                                    f"module-level mutable {name!r} "
                                    f"(defined line "
                                    f"{module.mutable_globals[name]}) "
                                    f"mutated via .{method}() in a worker",
                                )
                            elif name in closure:
                                report(
                                    info, child,
                                    f"closure-captured {name!r} (from "
                                    f"{closure[name]!r}) mutated via "
                                    f".{method}() in a worker",
                                )
                    elif isinstance(
                        child, (ast.Subscript, ast.Attribute)
                    ) and isinstance(child.ctx, ast.Store):
                        base = child.value
                        while isinstance(base, (ast.Subscript, ast.Attribute)):
                            base = base.value
                        if (
                            isinstance(base, ast.Name)
                            and base.id not in local_names
                            and base.id != "self"
                        ):
                            name = base.id
                            if name in module.mutable_globals:
                                report(
                                    info, child,
                                    f"module-level mutable {name!r} written "
                                    "by subscript/attribute in a worker",
                                )
                            elif name in closure:
                                report(
                                    info, child,
                                    f"closure-captured {name!r} (from "
                                    f"{closure[name]!r}) written by "
                                    "subscript/attribute in a worker",
                                )
    ordered = sorted(
        findings, key=lambda f: (f.relpath, f.line, f.col, f.message)
    )
    return ordered, len(reachable)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def _file_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _config_key(config: LintConfig, sinks: FrozenSet[str]) -> str:
    payload = json.dumps(
        {
            "version": ANALYZER_VERSION,
            "select": sorted(config.select or ()),
            "ignore": sorted(config.ignore),
            "sinks": sorted(sinks),
            "domain": list(DEFAULT_SEED_DOMAIN),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _read_cache(path: Path) -> Optional[Dict[str, object]]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def _write_cache(
    path: Path,
    config_key: str,
    hashes: Dict[str, str],
    violations: Sequence[Violation],
    stats: Dict[str, object],
) -> None:
    payload = {
        "schema": "replint-deep-cache/1",
        "analyzer_version": ANALYZER_VERSION,
        "config_key": config_key,
        "files": hashes,
        "violations": [v.to_json() for v in violations],
        "stats": {
            key: value
            for key, value in stats.items()
            if key not in ("cache_hit", "cache_hit_rate")
        },
    }
    try:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass  # read-only checkout: caching is best-effort


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def violation_fingerprints(violations: Sequence[Violation]) -> List[str]:
    """Stable fingerprints: content-based, line-number-free.

    Identical (code, path, message) triples are disambiguated by their
    occurrence index so a baseline survives unrelated line shifts but
    still tracks *how many* instances were accepted.
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    fingerprints = []
    for violation in violations:
        triple = (violation.code, violation.path, violation.message)
        index = seen.get(triple, 0)
        seen[triple] = index + 1
        raw = f"{violation.code}|{violation.path}|{violation.message}|{index}"
        fingerprints.append(hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16])
    return fingerprints


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    payload = json.loads(path.read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"not a {BASELINE_SCHEMA} file: {path} "
            f"(schema={payload.get('schema')!r})"
        )
    entries = payload.get("entries", {})
    return entries if isinstance(entries, dict) else {}


def apply_baseline(
    violations: Sequence[Violation], entries: Dict[str, Dict[str, object]]
) -> Tuple[List[Violation], int]:
    """Drop baselined violations; returns (kept, suppressed count)."""
    kept: List[Violation] = []
    suppressed = 0
    for violation, fingerprint in zip(
        violations, violation_fingerprints(violations)
    ):
        if fingerprint in entries:
            suppressed += 1
        else:
            kept.append(violation)
    return kept, suppressed


def write_baseline(
    violations: Sequence[Violation],
    path: Path,
    justification: str = "accepted pre-existing finding; see PR discussion",
) -> int:
    entries = {
        fingerprint: {
            "code": violation.code,
            "path": violation.path,
            "line": violation.line,
            "message": violation.message,
            "justification": justification,
        }
        for violation, fingerprint in zip(
            violations, violation_fingerprints(violations)
        )
    }
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------

def sarif_payload(
    violations: Sequence[Violation],
    rules: Sequence[Tuple[str, str, str]],
) -> Dict[str, object]:
    """Minimal SARIF 2.1.0 document for CI code-scanning upload."""
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "replint",
                        "informationUri": "docs/linting.md",
                        "rules": [
                            {
                                "id": code,
                                "name": name,
                                "shortDescription": {"text": rationale},
                            }
                            for code, name, rationale in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": violation.code,
                        "level": "error",
                        "message": {"text": violation.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": violation.path
                                    },
                                    "region": {
                                        "startLine": violation.line,
                                        "startColumn": violation.col,
                                    },
                                }
                            }
                        ],
                    }
                    for violation in violations
                ],
            }
        ],
    }


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------

def run_deep(
    parsed: Sequence[Tuple[str, str, ast.Module, Path]],
    root: Path,
    config: LintConfig,
    *,
    use_cache: bool = True,
    cache_path: Optional[Path] = None,
) -> Tuple[List[Violation], Dict[str, object]]:
    """Run the RPL008-RPL010 deep pass over already-parsed files.

    ``parsed`` holds ``(relpath, source, tree, path)`` tuples.  Returns
    the violations plus a stats mapping (files, call-graph edges, taint
    steps, cache behavior) that also flows into ``repro.obs``.
    """
    with span("lint.deep", files=len(parsed), root=str(root)):
        sinks = registry_exact_sinks() if config.rule_enabled("RPL008") else frozenset()
        hashes = {relpath: _file_digest(source) for relpath, source, _, _ in parsed}
        key = _config_key(config, sinks)
        cache_file = cache_path or (root / CACHE_FILENAME)

        cached = _read_cache(cache_file) if use_cache else None
        hit_rate = 0.0
        if cached is not None and cached.get("config_key") == key:
            old_files = cached.get("files", {})
            if isinstance(old_files, dict) and old_files:
                matching = sum(
                    1 for rel, digest in hashes.items()
                    if old_files.get(rel) == digest
                )
                hit_rate = matching / max(len(hashes), 1)
            if cached.get("files") == hashes:
                violations = [
                    Violation(
                        str(entry["path"]), int(entry["line"]),
                        int(entry["col"]), str(entry["code"]),
                        str(entry["message"]),
                    )
                    for entry in cached.get("violations", [])
                ]
                stats = dict(cached.get("stats", {}))
                stats["cache_hit"] = True
                stats["cache_hit_rate"] = 1.0
                count("lint.deep.cache_hits")
                count("lint.deep.files", len(parsed))
                return violations, stats

        graph = ProjectGraph.build(
            [(relpath, tree, path) for relpath, _, tree, path in parsed]
        )
        findings: List[Finding] = []
        taint_steps = 0
        fixpoint_passes = 0
        if config.rule_enabled("RPL008"):
            analysis = TaintAnalysis(graph, ExactnessPolicy(registry_sinks=sinks))
            findings.extend(analysis.run())
            taint_steps += analysis.steps
            fixpoint_passes = max(fixpoint_passes, analysis.passes)
        if config.rule_enabled("RPL009"):
            analysis = TaintAnalysis(graph, SeedFlowPolicy())
            findings.extend(analysis.run())
            taint_steps += analysis.steps
            fixpoint_passes = max(fixpoint_passes, analysis.passes)
        worker_count = 0
        if config.rule_enabled("RPL010"):
            race_findings, worker_count = shared_state_findings(graph)
            findings.extend(race_findings)

        violations = [
            Violation(f.relpath, f.line, f.col, f.code, f.message)
            for f in findings
        ]
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        stats: Dict[str, object] = {
            "files": len(parsed),
            "functions": len(graph.functions),
            "call_graph_edges": graph.edge_count,
            "taint_steps": taint_steps,
            "fixpoint_passes": fixpoint_passes,
            "dispatch_reachable": worker_count,
            "registry_sinks": len(sinks),
            "cache_hit": False,
            "cache_hit_rate": round(hit_rate, 4),
        }
        if use_cache:
            _write_cache(cache_file, key, hashes, violations, stats)
        count("lint.deep.files", len(parsed))
        count("lint.deep.callgraph_edges", graph.edge_count)
        count("lint.deep.taint_steps", taint_steps)
        count("lint.deep.findings", len(violations))
        return violations, stats
