"""Whole-program model for the deep lint pass: modules, imports, calls.

This is the substrate the RPL008-RPL010 flow rules run on:

* a **project-wide import/symbol graph** — every analyzed file becomes a
  :class:`ModuleInfo` with its local-name → dotted-target import map and
  the functions/classes/globals it binds;
* **call resolution** — each ``ast.Call`` inside a function resolves to a
  :class:`Callee`: a project function (by qualified name), an external
  dotted name (``numpy.random.default_rng``), or a method on an opaque
  receiver;
* the **call graph** — edges between project functions, used for the
  taint fixpoint (:mod:`repro.lint.taint`) and the RPL010 dispatch
  reachability closure;
* **per-function def-use chains** — the line-level def/use index that
  backs diagnostics and the docs examples.

Everything here is pure stdlib ``ast``; nothing imports the analyzed
code.  Resolution is deliberately *static and partial*: a call that
cannot be resolved safely degrades to an external/method callee, which
the flow rules treat conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Constructor calls whose result is a mutable container (RPL010).
MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
}

_EXACT_MARK = "replint: exact"
_WORKER_MARK = "replint: worker"
_SEED_DOMAIN_MARK = "replint: seed-domain"


@dataclass
class FunctionInfo:
    """One function (or method, or nested function) in the project."""

    qualname: str          # "<module>:<local path>", e.g. "repro.core.dp:plan"
    module: str            # dotted module name
    local: str             # "plan", "Cls.method", "outer.inner"
    relpath: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    params: Tuple[str, ...]
    class_name: Optional[str] = None
    parent: Optional[str] = None   # qualname of the enclosing function
    exact_marked: bool = False     # name contains "exact" or docstring mark
    worker_marked: bool = False    # docstring carries "replint: worker"

    @property
    def dotted(self) -> str:
        """Importable dotted spelling, e.g. ``repro.core.dp.plan``."""
        return f"{self.module}.{self.local}"

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """One analyzed file: bindings, imports, and its functions."""

    name: str              # dotted module name ("repro.core.dp")
    relpath: str
    path: Path
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    toplevel: Set[str] = field(default_factory=set)
    classes: Set[str] = field(default_factory=set)
    #: module-level names bound to mutable containers → def line (RPL010)
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    seed_domain: bool = False      # docstring carries "replint: seed-domain"


@dataclass(frozen=True)
class Callee:
    """The resolution of one call expression.

    ``kind`` is ``"project"`` (``qualname`` set), ``"external"`` (a
    best-effort ``dotted`` name such as ``fractions.Fraction``), or
    ``"method"`` (attribute call on an opaque receiver; only ``attr`` is
    trustworthy).
    """

    kind: str
    attr: str
    dotted: str = ""
    qualname: Optional[str] = None


def attr_chain(node: ast.AST) -> List[str]:
    """``a.b.c(...)`` → ``["a", "b", "c"]``; leading ``""`` if the head
    of the chain is not a plain name (call result, subscript, ...)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    parts.append(node.id if isinstance(node, ast.Name) else "")
    return parts[::-1]


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/core/dp.py`` → ``repro.core.dp``; other roots keep their
    directory spine (``tests/lint/fixtures/x.py`` → ``tests.lint.fixtures.x``).
    """
    parts = list(Path(relpath).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "__main__"


def _docstring(node: ast.AST) -> str:
    try:
        return ast.get_docstring(node) or ""  # type: ignore[arg-type]
    except TypeError:
        return ""


def _mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MUTABLE_CONSTRUCTORS
    )


class ProjectGraph:
    """The whole-program model: modules, functions, and the call graph."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}       # by relpath
        self.by_name: Dict[str, str] = {}              # dotted name → relpath
        self.functions: Dict[str, FunctionInfo] = {}   # by qualname
        #: caller qualname → set of project callee qualnames
        self.edges: Dict[str, Set[str]] = {}
        #: (qualname, call node) → resolved Callee, filled lazily
        self._call_cache: Dict[Tuple[str, int, int], Callee] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Sequence[Tuple[str, ast.Module, Path]]) -> "ProjectGraph":
        """Build the model from ``(relpath, parsed tree, path)`` triples."""
        graph = cls()
        for relpath, tree, path in files:
            graph._add_module(relpath, tree, path)
        for module in graph.modules.values():
            graph._link_module(module)
        return graph

    def _add_module(self, relpath: str, tree: ast.Module, path: Path) -> None:
        name = module_name_for(relpath)
        module = ModuleInfo(name=name, relpath=relpath, path=path, tree=tree)
        module.seed_domain = _SEED_DOMAIN_MARK in _docstring(tree)
        self._collect_imports(module)
        self._collect_bindings(module)
        self._collect_functions(module)
        self.modules[relpath] = module
        self.by_name[name] = relpath

    def _collect_imports(self, module: ModuleInfo) -> None:
        package = module.name.rsplit(".", 1)[0] if "." in module.name else ""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                if node.level == 0:
                    base = node.module or ""
                else:
                    spine = module.name.split(".")
                    spine = spine[: len(spine) - node.level]
                    base = ".".join(spine)
                    if node.module:
                        base = f"{base}.{node.module}" if base else node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _collect_bindings(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.toplevel.add(node.name)
            elif isinstance(node, ast.ClassDef):
                module.toplevel.add(node.name)
                module.classes.add(node.name)
            elif isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name):
                    module.toplevel.add(target.id)
                    if value is not None and _mutable_value(value):
                        module.mutable_globals[target.id] = target.lineno
        for local in module.imports:
            module.toplevel.add(local)

    def _collect_functions(self, module: ModuleInfo) -> None:
        def visit(body: Sequence[ast.stmt], prefix: str,
                  class_name: Optional[str], parent: Optional[str]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local = f"{prefix}{node.name}" if prefix else node.name
                    doc = _docstring(node)
                    args = node.args
                    params = tuple(
                        a.arg
                        for a in [*getattr(args, "posonlyargs", []), *args.args,
                                  *args.kwonlyargs]
                    )
                    info = FunctionInfo(
                        qualname=f"{module.name}:{local}",
                        module=module.name,
                        local=local,
                        relpath=module.relpath,
                        node=node,
                        params=params,
                        class_name=class_name,
                        parent=parent,
                        exact_marked="exact" in node.name.lower()
                        or _EXACT_MARK in doc.lower(),
                        worker_marked=_WORKER_MARK in doc.lower(),
                    )
                    module.functions[local] = info
                    self.functions[info.qualname] = info
                    visit(node.body, local + ".", class_name, info.qualname)
                elif isinstance(node, ast.ClassDef):
                    visit(node.body, f"{node.name}.", node.name,
                          parent)
        visit(module.tree.body, "", None, None)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve_module(self, dotted: str, importer: ModuleInfo) -> Optional[str]:
        """Map a dotted module spelling to a relpath, if it is in-project.

        Tries the exact name, then the importer's package-relative
        spelling (bare ``helper`` next to the importer), then a unique
        ``*.name`` suffix match — in that order.
        """
        if dotted in self.by_name:
            return self.by_name[dotted]
        if "." in importer.name:
            sibling = importer.name.rsplit(".", 1)[0] + "." + dotted
            if sibling in self.by_name:
                return self.by_name[sibling]
        suffix = "." + dotted
        matches = [rel for name, rel in self.by_name.items()
                   if name.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve_dotted(self, dotted: str, importer: ModuleInfo) -> Optional[FunctionInfo]:
        """Resolve ``pkg.mod.func`` / ``pkg.mod.Cls.method`` to a project
        function, trying the longest module prefix first."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            relpath = self._resolve_module(".".join(parts[:cut]), importer)
            if relpath is None:
                continue
            module = self.modules[relpath]
            local = ".".join(parts[cut:])
            if local in module.functions:
                return module.functions[local]
            return None
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        func: Optional[FunctionInfo],
        node: ast.Call,
        local_names: Optional[Set[str]] = None,
    ) -> Callee:
        """Resolve one call expression inside ``func`` (or module level)."""
        chain = attr_chain(node.func)
        head, attr = chain[0], chain[-1]
        if head == "":
            return Callee(kind="method", attr=attr)
        # self.method() inside a class body
        if (
            head == "self"
            and len(chain) == 2
            and func is not None
            and func.class_name is not None
        ):
            local = f"{func.class_name}.{attr}"
            target = module.functions.get(local)
            if target is not None:
                return Callee(kind="project", attr=attr,
                              dotted=target.dotted, qualname=target.qualname)
            return Callee(kind="method", attr=attr)
        # a local variable shadows everything: opaque method / callable
        if local_names and head in local_names:
            return Callee(kind="method", attr=attr)
        if len(chain) == 1:
            target = module.functions.get(head)
            if target is not None and "." not in head:
                # only top-level functions are callable by bare name
                if target.parent is None and target.class_name is None:
                    return Callee(kind="project", attr=attr,
                                  dotted=target.dotted, qualname=target.qualname)
            if head in module.imports:
                dotted = module.imports[head]
                resolved = self.resolve_dotted(dotted, module)
                if resolved is not None:
                    return Callee(kind="project", attr=attr,
                                  dotted=resolved.dotted,
                                  qualname=resolved.qualname)
                return Callee(kind="external", attr=dotted.split(".")[-1],
                              dotted=dotted)
            return Callee(kind="external", attr=head, dotted=head)
        if head in module.imports:
            dotted = module.imports[head] + "." + ".".join(chain[1:])
            resolved = self.resolve_dotted(dotted, module)
            if resolved is not None:
                return Callee(kind="project", attr=attr,
                              dotted=resolved.dotted, qualname=resolved.qualname)
            return Callee(kind="external", attr=attr, dotted=dotted)
        if head in module.toplevel:
            # method on a module-level object (or Class.method)
            dotted = f"{module.name}.{'.'.join(chain)}"
            local = ".".join(chain)
            target = module.functions.get(local)
            if target is not None:
                return Callee(kind="project", attr=attr,
                              dotted=target.dotted, qualname=target.qualname)
            return Callee(kind="method", attr=attr, dotted=dotted)
        return Callee(kind="method", attr=attr, dotted=".".join(chain))

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def link(self) -> None:
        """(Re)build the project call-graph edges."""
        self.edges = {}
        for module in self.modules.values():
            self._link_module(module)

    def _link_module(self, module: ModuleInfo) -> None:
        for info in module.functions.values():
            edges = self.edges.setdefault(info.qualname, set())
            for call in self.calls_in(info):
                callee = self.resolve_call(module, info, call)
                if callee.kind == "project" and callee.qualname is not None:
                    edges.add(callee.qualname)

    def calls_in(self, func: FunctionInfo) -> Iterator[ast.Call]:
        """Call expressions directly inside ``func`` (not in nested defs)."""
        return own_calls(func.node)

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """Transitive closure over call-graph edges from ``roots``."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())


def own_statements(
    node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Module",
) -> Iterator[ast.stmt]:
    """Statements belonging to ``node`` itself, descending into control
    flow but not into nested function/class definitions."""
    stack: List[ast.stmt] = list(node.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.excepthandler, ast.withitem)):
                stack.extend(
                    grand for grand in ast.iter_child_nodes(child)
                    if isinstance(grand, ast.stmt)
                )


def stmt_expressions(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The expressions directly attached to one statement (no sub-stmts)."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child
        elif isinstance(child, ast.withitem):
            yield child.context_expr
            if child.optional_vars is not None:
                yield child.optional_vars
        elif isinstance(child, ast.excepthandler) and child.type is not None:
            yield child.type


def walk_expr(expr: ast.expr) -> Iterator[ast.AST]:
    """Walk an expression tree without descending into lambda bodies."""
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


def own_calls(
    node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Module",
) -> Iterator[ast.Call]:
    """Call expressions in ``node``'s own statements (not nested defs)."""
    for stmt in own_statements(node):
        for expr in stmt_expressions(stmt):
            for child in walk_expr(expr):
                if isinstance(child, ast.Call):
                    yield child


@dataclass
class DefUse:
    """Line-level def/use chain of one name inside one function."""

    name: str
    defs: List[int] = field(default_factory=list)
    uses: List[int] = field(default_factory=list)


def def_use_chains(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Dict[str, DefUse]:
    """Per-function def-use chains: every binding and read of each local.

    Parameters count as a definition on the ``def`` line.  Nested
    function bodies are excluded — they have their own chains.
    """
    chains: Dict[str, DefUse] = {}

    def chain(name: str) -> DefUse:
        return chains.setdefault(name, DefUse(name))

    args = node.args
    for arg in [*getattr(args, "posonlyargs", []), *args.args, *args.kwonlyargs]:
        chain(arg.arg).defs.append(node.lineno)
    for stmt in own_statements(node):
        for expr in stmt_expressions(stmt):
            for child in walk_expr(expr):
                if isinstance(child, ast.Name):
                    if isinstance(child.ctx, (ast.Store, ast.Del)):
                        chain(child.id).defs.append(child.lineno)
                    else:
                        chain(child.id).uses.append(child.lineno)
    for entry in chains.values():
        entry.defs.sort()
        entry.uses.sort()
    return chains
