"""Exception hierarchy for the ``repro`` package.

All errors raised deliberately by this library derive from :class:`ReproError`
so that callers can catch library-specific failures without catching unrelated
bugs.  The subclasses mirror the main failure categories: malformed problem
data, malformed strategies, infeasible requests, and solver-internal limits.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class InvalidInstanceError(ReproError, ValueError):
    """A probability matrix or problem parameter fails validation.

    Raised for non-stochastic rows, non-positive probabilities when zeros are
    disallowed, inconsistent dimensions, or out-of-range delay bounds.
    """


class InvalidStrategyError(ReproError, ValueError):
    """A paging strategy is not an ordered partition of the cell set."""


class InfeasibleError(ReproError, ValueError):
    """The requested optimization has no feasible solution.

    For example a bandwidth-limited search with ``d * b < c`` cannot cover
    every cell within the delay constraint.
    """


class SolverLimitError(ReproError, RuntimeError):
    """An exact solver was asked to enumerate a space larger than its cap."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event cellular simulator reached an inconsistent state."""
