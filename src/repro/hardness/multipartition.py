"""The Multipartition problem (Section 3.2) and the Lemma 3.6 reduction.

Multipartition is parameterized by cardinality fractions ``r_1..r_d`` and
mass fractions ``x_1..x_d`` (both summing to 1, with ``M`` the least common
multiple of the ``r_j`` denominators).  Given ``c = M k`` non-negative
rational sizes, it asks for a partition ``P_1..P_d`` with ``|P_j| = r_j c``
and ``sum_{P_j} = x_j * total``.

For the paper's Theorem 3.8 chain the parameters come from the Lemma 3.4
recursion: ``r_j = (b_j - b_{j-1}) / c`` and prefix masses ``b_r / (2c)``,
i.e. ``x_j = r_j / 2`` for ``j < d`` and ``x_d = 1 - b_{d-1} / (2c)``
(:func:`multipartition_parameters`).

Lemma 3.6 reduces Quasipartition2 to Multipartition by rescaling the input
sizes into the two largest-cardinality groups and pinning every other group
``x_j`` with one dominant "big" size plus ``i_j - 1`` tiny equal fillers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..core.bounds import b_sequence
from ..errors import InvalidInstanceError, SolverLimitError
from .quasipartition import QuasipartitionParameters


@dataclass(frozen=True)
class MultipartitionParameters:
    """Cardinality fractions ``r_j`` and mass fractions ``x_j``."""

    cardinality_fractions: Tuple[Fraction, ...]
    mass_fractions: Tuple[Fraction, ...]

    def __post_init__(self) -> None:
        r, x = self.cardinality_fractions, self.mass_fractions
        if len(r) != len(x) or len(r) < 2:
            raise InvalidInstanceError("need matching r and x sequences of length >= 2")
        if sum(r) != 1 or sum(x) != 1:
            raise InvalidInstanceError("r_j and x_j must each sum to 1")
        if any(value <= 0 for value in r) or any(value < 0 for value in x):
            raise InvalidInstanceError("fractions must be positive (x_j non-negative)")

    @property
    def num_groups(self) -> int:
        return len(self.cardinality_fractions)

    @property
    def scale(self) -> int:
        """``M``: the least common multiple of the ``r_j`` denominators."""
        return math.lcm(*(r.denominator for r in self.cardinality_fractions))

    def group_sizes(self, num_items: int) -> Tuple[int, ...]:
        """``i_j = r_j c`` — raises unless ``c`` is a multiple of ``M``."""
        if num_items % self.scale != 0:
            raise InvalidInstanceError(
                f"instance length {num_items} is not a multiple of M = {self.scale}"
            )
        return tuple(int(r * num_items) for r in self.cardinality_fractions)


def multipartition_parameters(
    num_devices: int, num_rounds: int
) -> MultipartitionParameters:
    """The ``(r_j, x_j)`` of Theorem 3.8, from the Lemma 3.4 recursion."""
    bs = b_sequence(num_devices, num_rounds, Fraction(1), exact=True)
    r = tuple(bs[j] - bs[j - 1] for j in range(1, len(bs)))
    x = [value / 2 for value in r[:-1]]
    x.append(1 - sum(x))
    return MultipartitionParameters(
        # b_sequence(..., exact=True) yields Fractions; the casts are
        # identities.  The deep analysis unions the float mode of the
        # dual-mode helper into the result, hence the suppressions.
        cardinality_fractions=tuple(Fraction(v) for v in r),  # replint: disable=RPL008 exact=True path yields Fractions
        mass_fractions=tuple(Fraction(v) for v in x),  # replint: disable=RPL008 exact=True path yields Fractions
    )


def derive_quasipartition2(
    parameters: MultipartitionParameters,
) -> Tuple[QuasipartitionParameters, Tuple[int, int]]:
    """The ``(M, r_u, r_v, x_u, x_v)`` template and the (u, v) group indices.

    Following the paper: sort the ``x_j`` non-increasingly; among the two
    groups with the smallest masses, ``u`` is the one with the smaller
    cardinality fraction (``v`` the other).  Returns 0-based group indices.
    """
    r, x = parameters.cardinality_fractions, parameters.mass_fractions
    order = sorted(range(len(x)), key=lambda j: (-x[j], j))
    last, second_last = order[-1], order[-2]
    if r[last] <= r[second_last]:
        u, v = last, second_last
    else:
        u, v = second_last, last
    template = QuasipartitionParameters(
        scale=parameters.scale, r_u=r[u], r_v=r[v], x_u=x[u], x_v=x[v]
    )
    return template, (u, v)


def verify_multipartition(
    sizes: Sequence[Fraction],
    parameters: MultipartitionParameters,
    partition: Sequence[Sequence[int]],
) -> bool:
    """Check a claimed witness: disjoint cover with the right counts and masses."""
    sizes = [Fraction(size) for size in sizes]
    total = sum(sizes)
    counts = parameters.group_sizes(len(sizes))
    if len(partition) != parameters.num_groups:
        return False
    seen: set = set()
    for j, group in enumerate(partition):
        group = list(group)
        if len(group) != counts[j] or seen & set(group):
            return False
        seen |= set(group)
        if sum(sizes[i] for i in group) != parameters.mass_fractions[j] * total:
            return False
    return seen == set(range(len(sizes)))


def solve_multipartition(
    sizes: Sequence[Fraction],
    parameters: MultipartitionParameters,
    *,
    node_limit: int = 2_000_000,
) -> Optional[Tuple[Tuple[int, ...], ...]]:
    """Backtracking search for a Multipartition witness (small instances).

    Items are assigned group by group in index order with count and residual
    mass pruning.  Intended for the reduction round-trip tests; raises
    :class:`SolverLimitError` past ``node_limit`` search nodes.
    """
    sizes = [Fraction(size) for size in sizes]
    total = sum(sizes)
    counts = parameters.group_sizes(len(sizes))
    targets = [x * total for x in parameters.mass_fractions]
    c = len(sizes)
    groups: List[List[int]] = [[] for _ in range(parameters.num_groups)]
    remaining_count = list(counts)
    remaining_mass = list(targets)
    nodes = 0

    # Suffix sums let the search prune branches that cannot reach the target.
    suffix = [Fraction(0)] * (c + 1)
    for index in range(c - 1, -1, -1):
        suffix[index] = suffix[index + 1] + sizes[index]

    def backtrack(index: int) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > node_limit:
            raise SolverLimitError(
                f"multipartition search exceeded {node_limit} nodes"
            )
        if index == c:
            return all(count == 0 for count in remaining_count) and all(
                mass == 0 for mass in remaining_mass
            )
        if suffix[index] < sum(remaining_mass):
            return False
        slots = sum(remaining_count)
        if slots != c - index:
            return False
        size = sizes[index]
        for j in range(parameters.num_groups):
            if remaining_count[j] == 0 or remaining_mass[j] < size:
                continue
            groups[j].append(index)
            remaining_count[j] -= 1
            remaining_mass[j] -= size
            if backtrack(index + 1):
                return True
            groups[j].pop()
            remaining_count[j] += 1
            remaining_mass[j] += size
        return False

    if backtrack(0):
        return tuple(tuple(group) for group in groups)
    return None


# ----------------------------------------------------------------------
# Lemma 3.6: Quasipartition2 -> Multipartition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Lemma36Reduction:
    """The constructed Multipartition instance with its bookkeeping."""

    sizes: Tuple[Fraction, ...]
    parameters: MultipartitionParameters
    #: index range holding the rescaled Quasipartition2 sizes
    original_slice: Tuple[int, int]
    #: (u, v) group indices within the parameter ordering
    uv_groups: Tuple[int, int]
    #: per non-(u,v) group: (big-size index, tuple of small-size indices)
    pinned_groups: Tuple[Tuple[int, Tuple[int, ...]], ...]


def reduce_quasipartition2_to_multipartition(
    quasi_sizes: Sequence[Fraction],
    parameters: MultipartitionParameters,
) -> Lemma36Reduction:
    """Lemma 3.6's construction, as executable code.

    The rescaled input sizes carry total mass ``x_u + x_v`` and must fill the
    groups ``u`` and ``v``; every other group ``j`` is pinned by one big size
    ``x_j - s (i_j - 1) / (2c)`` plus ``i_j - 1`` small sizes ``s / (2c)``,
    where ``s`` is a positive number no larger than any positive input size
    or any positive gap between consecutive sorted masses.
    """
    quasi_sizes = [Fraction(size) for size in quasi_sizes]
    template, (u, v) = derive_quasipartition2(parameters)
    n = len(quasi_sizes)
    per_h = template.total_size(1)
    if n % per_h != 0 or n == 0:
        raise InvalidInstanceError(
            f"input length {n} is not a multiple of M(r_u + r_v) = {per_h}"
        )
    h = n // per_h
    c = parameters.scale * h
    counts = parameters.group_sizes(c)
    if counts[u] + counts[v] != n:
        raise AssertionError("u/v groups must absorb exactly the input sizes")

    total_in = sum(quasi_sizes)
    if total_in <= 0:
        raise InvalidInstanceError("input sizes must have positive total")
    mass_uv = parameters.mass_fractions[u] + parameters.mass_fractions[v]
    scaled = [size * mass_uv / total_in for size in quasi_sizes]

    # The paper's `s`: a positive value below every positive size and every
    # positive gap of the sorted mass fractions.
    sorted_masses = sorted(parameters.mass_fractions, reverse=True)
    gaps = [
        sorted_masses[j] - sorted_masses[j + 1]
        for j in range(len(sorted_masses) - 1)
        if sorted_masses[j] != sorted_masses[j + 1]
    ]
    candidates = [size for size in scaled if size > 0] + gaps
    small_unit = (min(candidates) if candidates else Fraction(1)) / (2 * c)

    sizes: List[Fraction] = list(scaled)
    pinned: List[Tuple[int, Tuple[int, ...]]] = []
    for j in range(parameters.num_groups):
        if j in (u, v):
            continue
        i_j = counts[j]
        big = parameters.mass_fractions[j] - small_unit * (i_j - 1)
        if big <= 0:
            raise InvalidInstanceError(
                f"group {j} mass {parameters.mass_fractions[j]} too small to pin"
            )
        big_index = len(sizes)
        sizes.append(big)
        small_indices = tuple(range(len(sizes), len(sizes) + i_j - 1))
        sizes.extend([small_unit] * (i_j - 1))
        pinned.append((big_index, small_indices))

    if len(sizes) != c:
        raise AssertionError(f"constructed {len(sizes)} sizes, expected c = {c}")
    return Lemma36Reduction(
        sizes=tuple(sizes),
        parameters=parameters,
        original_slice=(0, n),
        uv_groups=(u, v),
        pinned_groups=tuple(pinned),
    )


def multipartition_witness_from_quasipartition(
    reduction: Lemma36Reduction, quasi_witness: Sequence[int]
) -> Tuple[Tuple[int, ...], ...]:
    """Assemble the Multipartition witness implied by a Quasipartition2 one."""
    u, v = reduction.uv_groups
    start, stop = reduction.original_slice
    witness_set = set(quasi_witness)
    groups: List[Tuple[int, ...]] = [()] * reduction.parameters.num_groups
    groups[v] = tuple(sorted(witness_set))
    groups[u] = tuple(i for i in range(start, stop) if i not in witness_set)
    pinned_iter = iter(reduction.pinned_groups)
    for j in range(reduction.parameters.num_groups):
        if j in (u, v):
            continue
        big_index, small_indices = next(pinned_iter)
        groups[j] = (big_index,) + small_indices
    return tuple(groups)


def quasipartition_witness_from_multipartition(
    reduction: Lemma36Reduction, partition: Sequence[Sequence[int]]
) -> Tuple[int, ...]:
    """Extract the Quasipartition2 witness from a Multipartition one."""
    _u, v = reduction.uv_groups
    start, stop = reduction.original_slice
    return tuple(sorted(i for i in partition[v] if start <= i < stop))
