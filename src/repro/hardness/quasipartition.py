"""Quasipartition problems (Section 3 of the paper) and the Lemma 3.7 reduction.

``Quasipartition1`` — given ``c`` (divisible by 3) non-negative rational
sizes, decide whether some subset of exactly ``2c/3`` of them sums to half
the total.  It seeds the ``m = 2, d = 2`` NP-hardness proof (Lemma 3.2).

``Quasipartition2`` — the parameterized template behind Theorem 3.8: with
parameters ``(M, r_u, r_v, x_u, x_v)`` and ``n = M (r_u + r_v) h`` sizes,
decide whether a subset of exactly ``M r_v h`` sizes sums to the fraction
``x_v / (x_u + x_v)`` of the total.  Setting ``M = 3, r_u = 1/3, r_v = 2/3,
x_u = x_v = 1/2`` recovers Quasipartition1.

Lemma 3.7 reduces Partition to Quasipartition2 by padding each Partition size
with a large power of two (forcing the witness cardinality), adding filler
zeros, and planting two dominant "special" sizes that pin down which side of
the split each falls on.  :func:`reduce_partition_to_quasipartition2`
implements that construction verbatim; the round-trip is validated by exact
solvers on both ends in the tests and in benchmark E14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidInstanceError
from .partition import PartitionInstance


@dataclass(frozen=True)
class QuasipartitionParameters:
    """The ``(M, r_u, r_v, x_u, x_v)`` template of Quasipartition2."""

    scale: int  # M
    r_u: Fraction
    r_v: Fraction
    x_u: Fraction
    x_v: Fraction

    def __post_init__(self) -> None:
        for name in ("r_u", "r_v", "x_u", "x_v"):
            value = getattr(self, name)
            if value <= 0:
                raise InvalidInstanceError(f"{name} must be positive, got {value}")
        if (self.scale * self.r_u).denominator != 1:
            raise InvalidInstanceError("M * r_u must be an integer")
        if (self.scale * self.r_v).denominator != 1:
            raise InvalidInstanceError("M * r_v must be an integer")
        if self.r_u > self.r_v:
            raise InvalidInstanceError(
                "the template assumes r_u <= r_v (u is the smaller-cardinality side)"
            )

    @property
    def mass_fraction(self) -> Fraction:
        """The target sum fraction ``x_v / (x_u + x_v)``."""
        return self.x_v / (self.x_u + self.x_v)

    def subset_size(self, h: int) -> int:
        """``M r_v h`` — the required witness cardinality."""
        return int(self.scale * self.r_v * h)

    def total_size(self, h: int) -> int:
        """``n = M (r_u + r_v) h`` — the instance length."""
        return int(self.scale * (self.r_u + self.r_v) * h)


#: The Quasipartition1 parameters (paper, end of Section 3.2).
QUASIPARTITION1 = QuasipartitionParameters(
    scale=3,
    r_u=Fraction(1, 3),
    r_v=Fraction(2, 3),
    x_u=Fraction(1, 2),
    x_v=Fraction(1, 2),
)


def subset_with_count_and_sum(
    sizes: Sequence[Fraction], count: int, target: Fraction
) -> Optional[Tuple[int, ...]]:
    """A subset of exactly ``count`` indices summing to ``target``, or ``None``.

    Rational sizes are scaled to integers by the common denominator, then a
    ``(count, sum)`` reachability DP with predecessor links finds a witness.
    """
    sizes = [Fraction(size) for size in sizes]
    if any(size < 0 for size in sizes):
        raise InvalidInstanceError("sizes must be non-negative")
    if not 0 <= count <= len(sizes):
        return None
    denominator = math.lcm(
        target.denominator, *(size.denominator for size in sizes)
    )
    scaled = [int(size * denominator) for size in sizes]
    goal_value = target * denominator
    if goal_value.denominator != 1:
        return None
    goal = (count, int(goal_value))
    if goal[1] < 0 or goal[1] > sum(scaled):
        return None

    reachable: Dict[Tuple[int, int], Optional[Tuple[int, Tuple[int, int]]]] = {
        (0, 0): None
    }
    for index, size in enumerate(scaled):
        updates = {}
        for (chosen, value), _parent in reachable.items():
            if chosen == count:
                continue
            state = (chosen + 1, value + size)
            if state[1] > goal[1]:
                continue
            if state not in reachable and state not in updates:
                updates[state] = (index, (chosen, value))
        reachable.update(updates)

    if goal not in reachable:
        return None
    subset: List[int] = []
    state: Tuple[int, int] = goal
    while reachable[state] is not None:
        index, parent = reachable[state]  # type: ignore[misc]
        subset.append(index)
        state = parent
    return tuple(sorted(subset))


# ----------------------------------------------------------------------
# Quasipartition1
# ----------------------------------------------------------------------
def solve_quasipartition1(sizes: Sequence[Fraction]) -> Optional[Tuple[int, ...]]:
    """A subset of ``2c/3`` indices summing to half the total, or ``None``."""
    sizes = [Fraction(size) for size in sizes]
    c = len(sizes)
    if c % 3 != 0 or c == 0:
        raise InvalidInstanceError("Quasipartition1 needs c divisible by 3")
    total = sum(sizes)
    return subset_with_count_and_sum(sizes, 2 * c // 3, total / 2)


def has_quasipartition1(sizes: Sequence[Fraction]) -> bool:
    """Decision version of :func:`solve_quasipartition1`."""
    return solve_quasipartition1(sizes) is not None


# ----------------------------------------------------------------------
# Quasipartition2 (the parameterized template)
# ----------------------------------------------------------------------
def solve_quasipartition2(
    sizes: Sequence[Fraction], parameters: QuasipartitionParameters
) -> Optional[Tuple[int, ...]]:
    """A witness for the Quasipartition2 template, or ``None``."""
    sizes = [Fraction(size) for size in sizes]
    n = len(sizes)
    per_h = parameters.total_size(1)
    if n % per_h != 0 or n == 0:
        raise InvalidInstanceError(
            f"instance length {n} is not a multiple of M(r_u + r_v) = {per_h}"
        )
    h = n // per_h
    total = sum(sizes)
    return subset_with_count_and_sum(
        sizes, parameters.subset_size(h), parameters.mass_fraction * total
    )


def has_quasipartition2(
    sizes: Sequence[Fraction], parameters: QuasipartitionParameters
) -> bool:
    """Decision version of :func:`solve_quasipartition2`."""
    return solve_quasipartition2(sizes, parameters) is not None


# ----------------------------------------------------------------------
# Lemma 3.7: Partition -> Quasipartition2
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Lemma37Reduction:
    """The constructed Quasipartition2 instance with its bookkeeping."""

    sizes: Tuple[Fraction, ...]
    parameters: QuasipartitionParameters
    h: int
    padding_exponent: int
    #: index range of the rescaled Partition sizes within `sizes`
    partition_slice: Tuple[int, int]
    special_big_index: int
    special_small_index: int


def reduce_partition_to_quasipartition2(
    instance: PartitionInstance,
    parameters: QuasipartitionParameters = QUASIPARTITION1,
) -> Lemma37Reduction:
    """Lemma 3.7's construction, as executable code.

    * ``h = 2 * ceil(g / (2 M r_u))`` so both sides can absorb ``g/2`` real
      sizes plus one special size.
    * Each Partition size gains a ``2^p`` summand (``p = ceil(log2(sum+1))``),
      forcing every valid witness to take exactly ``g/2`` of them.
    * Filler zeros bring the cardinalities up to ``M r_u h - 1`` and
      ``M r_v h - 1``.
    * Two special sizes — ``(x_hi - x_lo/3)/X`` and ``(2/3) x_lo / X`` with
      ``X = x_u + x_v`` — dominate both sides, leaving exactly
      ``(x_lo/3)/X`` of slack per side for half of the real mass.
    """
    g = instance.count
    p = parameters
    m_ru = int(p.scale * p.r_u)
    m_rv = int(p.scale * p.r_v)
    h = 2 * math.ceil(g / (2 * m_ru))
    u_fill = m_ru * h - 1 - g // 2
    v_fill = m_rv * h - 1 - g // 2
    if u_fill < 0 or v_fill < 0:
        raise InvalidInstanceError("h too small to absorb the Partition sizes")

    padding_exponent = math.ceil(math.log2(instance.total + 1))
    padded = [Fraction(size + 2**padding_exponent) for size in instance.sizes]

    x_sum = p.x_u + p.x_v
    x_hi = max(p.x_u, p.x_v)
    x_lo = min(p.x_u, p.x_v)
    special_big = (x_hi - x_lo / 3) / x_sum
    special_small = Fraction(2, 3) * x_lo / x_sum
    real_mass = 1 - special_big - special_small  # equals (2/3) x_lo / X

    scale = real_mass / sum(padded)
    sizes: List[Fraction] = [size * scale for size in padded]
    sizes.extend([Fraction(0)] * (u_fill + v_fill))
    special_big_index = len(sizes)
    sizes.append(special_big)
    special_small_index = len(sizes)
    sizes.append(special_small)

    expected_length = p.total_size(h)
    if len(sizes) != expected_length:
        raise AssertionError(
            f"constructed {len(sizes)} sizes, expected n = {expected_length}"
        )
    return Lemma37Reduction(
        sizes=tuple(sizes),
        parameters=p,
        h=h,
        padding_exponent=padding_exponent,
        partition_slice=(0, g),
        special_big_index=special_big_index,
        special_small_index=special_small_index,
    )


def extract_partition_witness(
    reduction: Lemma37Reduction, quasi_witness: Sequence[int]
) -> Tuple[int, ...]:
    """Map a Quasipartition2 witness back to Partition indices (Lemma 3.7)."""
    start, stop = reduction.partition_slice
    return tuple(sorted(i for i in quasi_witness if start <= i < stop))
