"""Reductions from partition-type problems to the Conference Call problem.

Two probability gadgets from Section 3 of the paper:

* **Lemma 3.2** (``m = 2, d = 2``): from Quasipartition1 sizes ``s_j`` build

  - ``p_j = (1 - 3/(2c) + s_j/S) / (c - 1/2)``   (device 1)
  - ``q_j = (1 - s_j/S) / (c - 1)``              (device 2)

  The expected paging of paging ``I`` first is
  ``c - f(x, y) / ((c - 1/2)(c - 1))`` with ``x`` the mass fraction and ``y``
  the cardinality of ``I`` and ``f`` from Lemma 3.1, so the minimum equals
  ``LB = c - f(1/2, 2c/3)/((c-1/2)(c-1))`` exactly when a quasipartition
  exists.

* **Lemma 3.5** (general fixed ``m >= 2, d >= 2``): from Multipartition sizes
  build

  - ``p_j = (1 - 1/c + s_j/S) / c``              (device 1)
  - ``q_j = (1 - s_j/S) / (c - 1)``              (device 2)
  - ``m - 2`` devices uniform on the cells.

  A strategy with prefix cardinalities ``y_r`` and prefix masses ``X_r`` pays
  ``c - (1/(c(c-1))) sum_r i_{r+1} ((1-1/c) y_r + X_r)(y_r - X_r)(y_r/c)^{m-2}``
  which by Lemma 3.4 is minimized — at
  ``LB = c - (2c-1)^2/(4(c-1)c^{m+1}) * sum_r (b_{r+1}-b_r) b_r^m`` — exactly
  when the groups realize the Multipartition cardinalities and masses.

Also here: the Section 5 remark lifting a ``(c, 2, d)`` instance into a
``(c+1, m, d+1)`` instance by parking ``m - 2`` devices on an extra cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Tuple

from ..core.bounds import b_sequence, lemma32_lower_bound
from ..core.instance import PagingInstance
from ..core.strategy import Strategy
from ..errors import InvalidInstanceError
from .multipartition import MultipartitionParameters, multipartition_parameters


@dataclass(frozen=True)
class ConferenceCallReduction:
    """A Conference Call instance whose optimum encodes a partition question."""

    instance: PagingInstance
    sizes: Tuple[Fraction, ...]
    lower_bound: Fraction

    def witness_from_strategy(self, strategy: Strategy) -> Tuple[int, ...]:
        """The candidate subset: the cells paged in the first round."""
        return tuple(sorted(strategy.group(0)))


def reduce_quasipartition1_to_conference_call(
    sizes: Sequence[Fraction],
) -> ConferenceCallReduction:
    """The Lemma 3.2 gadget (``m = 2, d = 2``).

    Requires ``c`` divisible by 3 and every ``s_i < S`` (otherwise no
    quasipartition exists and the reduction is vacuous, per the proof).
    """
    sizes = tuple(Fraction(size) for size in sizes)
    c = len(sizes)
    if c % 3 != 0 or c < 3:
        raise InvalidInstanceError("Quasipartition1 needs c >= 3 divisible by 3")
    total = sum(sizes)
    if total <= 0 or any(size >= total for size in sizes):
        raise InvalidInstanceError(
            "the gadget requires every size strictly below the total"
        )
    half_over_c = Fraction(3, 2) / c
    p_row = [(1 - half_over_c + size / total) / (c - Fraction(1, 2)) for size in sizes]
    q_row = [(1 - size / total) / (c - 1) for size in sizes]
    instance = PagingInstance([p_row, q_row], max_rounds=2)
    return ConferenceCallReduction(
        instance=instance, sizes=sizes, lower_bound=lemma32_lower_bound(c)
    )


def lemma35_lower_bound(num_devices: int, num_rounds: int, num_cells: int) -> Fraction:
    """``c - (2c-1)^2/(4(c-1)c^{m+1}) * sum_r (b_{r+1}-b_r) b_r^m`` exactly."""
    m, d = num_devices, num_rounds
    c = Fraction(num_cells)
    bs = b_sequence(m, d, c, exact=True)
    inner = sum((bs[r + 1] - bs[r]) * bs[r] ** m for r in range(1, d))
    return c - (2 * c - 1) ** 2 / (4 * (c - 1) * c ** (m + 1)) * inner


def reduce_multipartition_to_conference_call(
    sizes: Sequence[Fraction],
    num_devices: int,
    num_rounds: int,
) -> ConferenceCallReduction:
    """The Lemma 3.5 gadget for fixed ``m >= 2, d >= 2``."""
    m, d = num_devices, num_rounds
    if m < 2 or d < 2:
        raise InvalidInstanceError("the gadget requires m >= 2 and d >= 2")
    sizes = tuple(Fraction(size) for size in sizes)
    c = len(sizes)
    parameters = multipartition_parameters(m, d)
    if c % parameters.scale != 0 or c == 0:
        raise InvalidInstanceError(
            f"instance length {c} must be a positive multiple of M = {parameters.scale}"
        )
    total = sum(sizes)
    if total <= 0 or any(size >= total for size in sizes):
        raise InvalidInstanceError(
            "the gadget requires every size strictly below the total"
        )
    p_row = [(1 - Fraction(1, c) + size / total) / c for size in sizes]
    q_row = [(1 - size / total) / (c - 1) for size in sizes]
    rows = [p_row, q_row]
    uniform = [Fraction(1, c)] * c
    rows.extend([uniform] * (m - 2))
    instance = PagingInstance(rows, max_rounds=d)
    return ConferenceCallReduction(
        instance=instance,
        sizes=sizes,
        lower_bound=lemma35_lower_bound(m, d, c),
    )


def gadget_expected_paging(
    reduction: ConferenceCallReduction, strategy: Strategy
) -> Fraction:
    """Expected paging of a strategy on the gadget (exact, via Lemma 2.1)."""
    from ..core.expected_paging import expected_paging

    return expected_paging(reduction.instance, strategy)  # type: ignore[return-value]


def multipartition_witness_from_strategy(
    parameters: MultipartitionParameters, strategy: Strategy
) -> Tuple[Tuple[int, ...], ...]:
    """Read the Multipartition witness off an optimal gadget strategy."""
    return tuple(tuple(sorted(group)) for group in strategy.groups)


# ----------------------------------------------------------------------
# Section 5 remark: (c, 2, d) -> (c + 1, m, d + 1)
# ----------------------------------------------------------------------
def lift_two_device_instance(
    instance: PagingInstance,
    num_devices: int,
    attraction: Fraction = None,
) -> PagingInstance:
    """Solve ``(c, 2, d)`` via ``(c + 1, m, d + 1)``: the Section 5 remark.

    Appends one extra cell.  The ``m - 2`` new devices sit on it with
    probability ``attraction`` (spread uniformly elsewhere), and the original
    two devices move mass ``attraction`` onto it (scaling their old rows by
    ``1 - attraction``).  For ``attraction >= 1 - 1/c^2`` an optimal lifted
    strategy pages only the extra cell in round one and then follows an
    optimal strategy of the original instance.
    """
    if instance.num_devices != 2:
        raise InvalidInstanceError("lifting starts from a two-device instance")
    c = instance.num_cells
    if num_devices < 2:
        raise InvalidInstanceError("need m >= 2 devices after lifting")
    if attraction is None:
        attraction = 1 - Fraction(1, c**2) / 2
    if not 0 < attraction < 1:
        raise InvalidInstanceError("attraction must lie strictly between 0 and 1")
    a = Fraction(attraction)
    rows = []
    for row in instance.rows:
        rows.append([Fraction(p) * (1 - a) for p in row] + [a])
    leftover = (1 - a) / c
    for _ in range(num_devices - 2):
        rows.append([leftover] * c + [a])
    return PagingInstance(rows, max_rounds=instance.max_rounds + 1)


def unlift_strategy(strategy: Strategy, num_cells: int) -> Strategy:
    """Drop the extra cell/round from a lifted strategy.

    Expects the first group to be exactly the extra cell (index ``c``); the
    remaining groups then form a strategy of the original instance.
    """
    extra = num_cells  # the appended cell's index
    first = strategy.group(0)
    if first != frozenset({extra}):
        raise InvalidInstanceError(
            "lifted strategy does not page the extra cell alone first; "
            f"first group is {sorted(first)}"
        )
    return Strategy([sorted(group) for group in strategy.groups[1:]])
