"""The Quadratic Assignment connection (Section 5.1 of the paper).

Burkard et al.'s Koopmans–Beckmann QAP: given symmetric non-negative
``c x c`` matrices ``A`` and ``B``, find a permutation ``pi`` maximizing
``sum_{i,j} A[i][j] B[pi(i)][pi(j)]``.

For ``m = 2`` and ``d = c`` (one cell per round), paging the cells in the
permutation order ``pi`` (cell ``k`` paged in round ``pi(k)``) costs

    EP = c - sum_{r=1}^{c-1} P(L_r) Q(L_r)
       = c - sum_{k,l} p_k q_l (c - max(pi(k), pi(l)))

because cell pair ``(k, l)`` contributes to every round from
``max(pi(k), pi(l))`` through ``c - 1``.  Hence minimizing EP is the QAP with
``A[k][l] = (p_k q_l + p_l q_k) / 2`` and ``B[r][s] = c - max(r, s)``
(1-based rounds).  This module builds those matrices and cross-checks a
brute-force QAP maximizer against the exact Conference Call solver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..core.instance import Number, PagingInstance
from ..core.strategy import Strategy
from ..errors import InvalidInstanceError, SolverLimitError

#: Largest cell count the brute-force QAP maximizer will enumerate (c!).
MAX_QAP_CELLS = 9


@dataclass(frozen=True)
class QAPFormulation:
    """The Koopmans–Beckmann matrices encoding a two-device instance."""

    flow: Tuple[Tuple[Number, ...], ...]  # A (cell pair affinity)
    distance: Tuple[Tuple[int, ...], ...]  # B (round pair value)
    num_cells: int


def formulate_qap(instance: PagingInstance) -> QAPFormulation:
    """Build ``A`` and ``B`` for an ``m = 2`` instance with ``d = c``."""
    if instance.num_devices != 2:
        raise InvalidInstanceError("the QAP formulation applies to m = 2")
    c = instance.num_cells
    p_row, q_row = instance.rows
    half = Fraction(1, 2) if instance.is_exact else 0.5
    flow = tuple(
        tuple(
            (p_row[k] * q_row[l] + p_row[l] * q_row[k]) * half for l in range(c)
        )
        for k in range(c)
    )
    distance = tuple(
        tuple(c - max(r, s) for s in range(1, c + 1)) for r in range(1, c + 1)
    )
    return QAPFormulation(flow=flow, distance=distance, num_cells=c)


def qap_objective(
    formulation: QAPFormulation, permutation: Sequence[int]
) -> Number:
    """``sum_{k,l} A[k][l] B[pi(k)][pi(l)]`` for a 0-based permutation."""
    c = formulation.num_cells
    total: Number = 0 * formulation.flow[0][0]
    for k in range(c):
        row = formulation.flow[k]
        for l in range(c):
            total = total + row[l] * formulation.distance[permutation[k]][permutation[l]]
    return total


def solve_qap_bruteforce(
    formulation: QAPFormulation,
) -> Tuple[Tuple[int, ...], Number]:
    """The maximizing permutation by full enumeration (tiny instances)."""
    c = formulation.num_cells
    if c > MAX_QAP_CELLS:
        raise SolverLimitError(f"brute-force QAP limited to {MAX_QAP_CELLS} cells")
    best_value: Optional[Number] = None
    best_pi: Optional[Tuple[int, ...]] = None
    for pi in itertools.permutations(range(c)):
        value = qap_objective(formulation, pi)
        if best_value is None or value > best_value:
            best_value = value
            best_pi = pi
    assert best_pi is not None and best_value is not None
    return best_pi, best_value


def strategy_from_permutation(permutation: Sequence[int]) -> Strategy:
    """The one-cell-per-round strategy: cell ``k`` paged in round ``pi(k)``."""
    c = len(permutation)
    cells_by_round: List[Optional[int]] = [None] * c
    for cell, round_index in enumerate(permutation):
        if cells_by_round[round_index] is not None:
            raise InvalidInstanceError("permutation has a repeated round")
        cells_by_round[round_index] = cell
    return Strategy([[cell] for cell in cells_by_round])  # type: ignore[list-item]


def expected_paging_from_qap(
    formulation: QAPFormulation, objective_value: Number
) -> Number:
    """``EP = c - objective``: translate a QAP value back to expected paging."""
    return formulation.num_cells - objective_value


# ----------------------------------------------------------------------
# General d: "if d is constant then the reduction is polynomial time"
# ----------------------------------------------------------------------
def formulate_qap_for_sizes(
    instance: PagingInstance, sizes: Sequence[int]
) -> QAPFormulation:
    """The Koopmans–Beckmann matrices for a FIXED group-size vector.

    With group sizes ``(s_1..s_d)`` fixed, a strategy assigns cells to ``c``
    slots: slots ``1..s_1`` form round 1, the next ``s_2`` round 2, etc.
    Cell pair ``(k, l)`` contributes ``p_k q_l`` to every bonus term from
    round ``max(round_k, round_l)`` onward, i.e. ``c - L(max round)`` where
    ``L(r)`` is the cells paged through round ``r`` — a pure function of the
    two slots.  Minimizing EP over strategies with these sizes is therefore
    one QAP; minimizing over ALL strategies enumerates the ``O(c^{d-1})``
    size vectors (polynomial for constant ``d``), the paper's §5.1 claim.
    """
    if instance.num_devices != 2:
        raise InvalidInstanceError("the QAP formulation applies to m = 2")
    c = instance.num_cells
    if sum(sizes) != c or any(size < 1 for size in sizes):
        raise InvalidInstanceError("sizes must be positive and sum to c")
    p_row, q_row = instance.rows
    half = Fraction(1, 2) if instance.is_exact else 0.5
    flow = tuple(
        tuple((p_row[k] * q_row[l] + p_row[l] * q_row[k]) * half for l in range(c))
        for k in range(c)
    )
    # round_of_slot and L(round) from the size vector.
    round_of_slot = []
    paged_through = []
    cumulative = 0
    for round_index, size in enumerate(sizes):
        cumulative += size
        round_of_slot.extend([round_index] * size)
        paged_through.append(cumulative)
    distance = tuple(
        tuple(
            c - paged_through[max(round_of_slot[a], round_of_slot[b])]
            for b in range(c)
        )
        for a in range(c)
    )
    return QAPFormulation(flow=flow, distance=distance, num_cells=c)


def solve_via_qap(
    instance: PagingInstance, *, max_rounds: Optional[int] = None
) -> Tuple[Strategy, Number]:
    """The §5.1 route: minimize EP over all size vectors, one QAP each.

    Brute-force QAP inside (tiny instances only); exists to machine-check
    the claim that the two-device problem reduces to QAP for every ``d``.
    """
    c = instance.num_cells
    d = instance.max_rounds if max_rounds is None else int(max_rounds)
    d = min(d, c)
    if c > MAX_QAP_CELLS:
        raise SolverLimitError(f"brute-force QAP limited to {MAX_QAP_CELLS} cells")
    best_value: Optional[Number] = None
    best_strategy: Optional[Strategy] = None
    for cuts in itertools.combinations(range(1, c), d - 1):
        bounds = (0,) + cuts + (c,)
        sizes = tuple(bounds[i + 1] - bounds[i] for i in range(d))
        formulation = formulate_qap_for_sizes(instance, sizes)
        permutation, objective = solve_qap_bruteforce(formulation)
        value = formulation.num_cells - objective
        if best_value is None or value < best_value:
            best_value = value
            # permutation maps cell -> slot; slots map to rounds via sizes.
            round_of_slot = []
            for round_index, size in enumerate(sizes):
                round_of_slot.extend([round_index] * size)
            assignment = [round_of_slot[permutation[cell]] for cell in range(c)]
            best_strategy = Strategy.from_assignment(assignment)
    assert best_strategy is not None and best_value is not None
    return best_strategy, best_value
