"""The Partition problem used as the NP-complete seed of Section 3.

Garey & Johnson's variant: given ``g`` positive integer sizes (``g`` even),
decide whether some subset of exactly ``g/2`` of them sums to half the total.
The pseudo-polynomial dynamic program here is exact and reconstructs a
witness, which the reduction round-trip tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class PartitionInstance:
    """Sizes for the equal-cardinality Partition problem."""

    sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) % 2 != 0:
            raise InvalidInstanceError("Partition requires an even number of sizes")
        if not self.sizes:
            raise InvalidInstanceError("Partition requires at least two sizes")
        if any(size <= 0 for size in self.sizes):
            raise InvalidInstanceError("Partition sizes must be positive integers")

    @property
    def total(self) -> int:
        return sum(self.sizes)

    @property
    def count(self) -> int:
        return len(self.sizes)


def solve_partition(instance: PartitionInstance) -> Optional[Tuple[int, ...]]:
    """A subset of indices of size ``g/2`` summing to ``total/2``, or ``None``.

    DP over ``(index, chosen count, chosen sum)`` with predecessor links;
    ``O(g^2 * total)`` time, exact.
    """
    sizes = instance.sizes
    g = len(sizes)
    total = instance.total
    if total % 2 != 0:
        return None
    half_count = g // 2
    target = total // 2

    # reachable[(count, value)] -> index of the last size chosen, with a link
    # to the predecessor state; states are discovered in index order.
    reachable: Dict[Tuple[int, int], Optional[Tuple[int, Tuple[int, int]]]] = {
        (0, 0): None
    }
    for index, size in enumerate(sizes):
        updates = {}
        for (count, value), _parent in reachable.items():
            if count == half_count:
                continue
            state = (count + 1, value + size)
            if state[1] > target:
                continue
            if state not in reachable and state not in updates:
                updates[state] = (index, (count, value))
        reachable.update(updates)

    goal = (half_count, target)
    if goal not in reachable:
        return None
    subset: List[int] = []
    state: Tuple[int, int] = goal
    while reachable[state] is not None:
        index, parent = reachable[state]  # type: ignore[misc]
        subset.append(index)
        state = parent
    return tuple(sorted(subset))


def has_partition(instance: PartitionInstance) -> bool:
    """Decision version of :func:`solve_partition`."""
    return solve_partition(instance) is not None


def verify_partition(instance: PartitionInstance, subset: Sequence[int]) -> bool:
    """Check a claimed witness: right cardinality and half the total sum."""
    chosen = set(subset)
    if len(chosen) != len(subset) or len(chosen) != instance.count // 2:
        return False
    if any(not 0 <= index < instance.count for index in chosen):
        return False
    return 2 * sum(instance.sizes[index] for index in chosen) == instance.total


def random_yes_instance(
    count: int, rng: np.random.Generator, *, magnitude: int = 50
) -> PartitionInstance:
    """A Partition instance guaranteed to have a solution.

    Draws ``count/2`` sizes freely, then mirrors their multiset sum with a
    second half of equal cardinality and sum (by adjusting the last element).
    """
    if count % 2 != 0 or count < 2:
        raise InvalidInstanceError("count must be even and at least 2")
    half = count // 2
    first = [int(rng.integers(1, magnitude + 1)) for _ in range(half)]
    second = [int(rng.integers(1, magnitude + 1)) for _ in range(half - 1)]
    balance = sum(first) - sum(second)
    if balance < 1:
        # Push the first half up so the mirror element stays positive.
        first[0] += 1 - balance
        balance = 1
    second.append(balance)
    sizes = first + second
    rng.shuffle(sizes)
    return PartitionInstance(tuple(int(size) for size in sizes))


def random_instance(
    count: int, rng: np.random.Generator, *, magnitude: int = 50
) -> PartitionInstance:
    """A Partition instance with no planted structure (may be yes or no)."""
    if count % 2 != 0 or count < 2:
        raise InvalidInstanceError("count must be even and at least 2")
    sizes = tuple(int(rng.integers(1, magnitude + 1)) for _ in range(count))
    return PartitionInstance(sizes)
