"""NP-hardness machinery of Section 3 (and the Section 5.1 QAP connection).

The reduction chain ``Partition -> Quasipartition -> Multipartition ->
Conference Call`` is implemented constructively, with exact solvers on every
intermediate problem so the iff-equivalences can be verified end to end on
small instances.
"""

from __future__ import annotations

from .multipartition import (
    Lemma36Reduction,
    MultipartitionParameters,
    derive_quasipartition2,
    multipartition_parameters,
    multipartition_witness_from_quasipartition,
    quasipartition_witness_from_multipartition,
    reduce_quasipartition2_to_multipartition,
    solve_multipartition,
    verify_multipartition,
)
from .partition import (
    PartitionInstance,
    has_partition,
    random_instance,
    random_yes_instance,
    solve_partition,
    verify_partition,
)
from .qap import (
    MAX_QAP_CELLS,
    QAPFormulation,
    expected_paging_from_qap,
    formulate_qap,
    formulate_qap_for_sizes,
    qap_objective,
    solve_qap_bruteforce,
    solve_via_qap,
    strategy_from_permutation,
)
from .quasipartition import (
    QUASIPARTITION1,
    Lemma37Reduction,
    QuasipartitionParameters,
    extract_partition_witness,
    has_quasipartition1,
    has_quasipartition2,
    reduce_partition_to_quasipartition2,
    solve_quasipartition1,
    solve_quasipartition2,
    subset_with_count_and_sum,
)
from .reductions import (
    ConferenceCallReduction,
    gadget_expected_paging,
    lemma35_lower_bound,
    lift_two_device_instance,
    multipartition_witness_from_strategy,
    reduce_multipartition_to_conference_call,
    reduce_quasipartition1_to_conference_call,
    unlift_strategy,
)

__all__ = [
    "MAX_QAP_CELLS",
    "QUASIPARTITION1",
    "ConferenceCallReduction",
    "Lemma36Reduction",
    "Lemma37Reduction",
    "MultipartitionParameters",
    "PartitionInstance",
    "QAPFormulation",
    "QuasipartitionParameters",
    "derive_quasipartition2",
    "expected_paging_from_qap",
    "extract_partition_witness",
    "formulate_qap",
    "formulate_qap_for_sizes",
    "gadget_expected_paging",
    "has_partition",
    "has_quasipartition1",
    "has_quasipartition2",
    "lemma35_lower_bound",
    "lift_two_device_instance",
    "multipartition_parameters",
    "multipartition_witness_from_quasipartition",
    "multipartition_witness_from_strategy",
    "qap_objective",
    "quasipartition_witness_from_multipartition",
    "random_instance",
    "random_yes_instance",
    "reduce_multipartition_to_conference_call",
    "reduce_partition_to_quasipartition2",
    "reduce_quasipartition1_to_conference_call",
    "reduce_quasipartition2_to_multipartition",
    "solve_multipartition",
    "solve_partition",
    "solve_qap_bruteforce",
    "solve_quasipartition1",
    "solve_quasipartition2",
    "solve_via_qap",
    "strategy_from_permutation",
    "subset_with_count_and_sum",
    "unlift_strategy",
    "verify_multipartition",
    "verify_partition",
]
