#!/usr/bin/env python
"""Compare two BENCH_<n>.json trajectory snapshots for regressions.

Usage::

    python scripts/bench_diff.py PREV.json [CURR.json] [--fail-rows REGEX]

Without CURR the newest ``BENCH_<n>.json`` at the repo root is used.
Exits 1 when any per-metric regression exceeds the 20% threshold (a
benchmark's ``min_s`` growing, or a derived speedup shrinking), 0
otherwise, 2 on unreadable input.  With ``--fail-rows`` only regressed
metrics matching the regex are fatal — CI uses this to keep the full
report advisory while gating hard on the cheap planner rows, whose
interleaved timing makes a >20% move a real regression rather than
environment drift.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402  (path bootstrap above)
    diff_payloads,
    latest_bench_path,
    render_diff,
)


def main(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prev", metavar="PREV.json")
    parser.add_argument("curr", metavar="CURR.json", nargs="?", default=None)
    parser.add_argument("--fail-rows", metavar="REGEX", default=None)
    args = parser.parse_args(argv)

    prev_path = Path(args.prev)
    curr_path = Path(args.curr) if args.curr else latest_bench_path(REPO_ROOT)
    if curr_path is None:
        print(f"no BENCH_<n>.json found under {REPO_ROOT}", file=sys.stderr)
        return 2
    try:
        previous = json.loads(prev_path.read_text())
        current = json.loads(curr_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read trajectory: {error}", file=sys.stderr)
        return 2
    diff = diff_payloads(previous, current)
    print(render_diff(diff))
    regressions = [str(name) for name in diff["regressions"]]
    if args.fail_rows is not None:
        pattern = re.compile(args.fail_rows)
        fatal = [name for name in regressions if pattern.search(name)]
        if fatal:
            print(
                f"fatal regression(s) matching {args.fail_rows!r}: "
                + ", ".join(fatal),
                file=sys.stderr,
            )
        return 1 if fatal else 0
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
