#!/usr/bin/env python
"""Compare two BENCH_<n>.json trajectory snapshots for regressions.

Usage::

    python scripts/bench_diff.py PREV.json [CURR.json]

Without CURR the newest ``BENCH_<n>.json`` at the repo root is used.
Exits 1 when any per-metric regression exceeds the 20% threshold (a
benchmark's ``min_s`` growing, or a derived speedup shrinking), 0
otherwise, 2 on unreadable input — so CI can surface drift like the
committed BENCH_0 -> BENCH_1 ``planner_reference`` slowdown as a
non-fatal report step.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402  (path bootstrap above)
    diff_payloads,
    latest_bench_path,
    render_diff,
)


def main(argv: "list[str]") -> int:
    if not argv or len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    import json

    prev_path = Path(argv[0])
    curr_path = Path(argv[1]) if len(argv) == 2 else latest_bench_path(REPO_ROOT)
    if curr_path is None:
        print(f"no BENCH_<n>.json found under {REPO_ROOT}", file=sys.stderr)
        return 2
    try:
        previous = json.loads(prev_path.read_text())
        current = json.loads(curr_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read trajectory: {error}", file=sys.stderr)
        return 2
    diff = diff_payloads(previous, current)
    print(render_diff(diff))
    return 1 if diff["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
