#!/usr/bin/env python
"""Record one performance-trajectory snapshot (``BENCH_<n>.json``).

Thin wrapper over ``repro bench`` for use without an installed console
script::

    PYTHONPATH=src python scripts/bench_trajectory.py --profile smoke

See docs/performance.md for the trajectory schema and workflow.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.bench import main

    raise SystemExit(main())
