#!/usr/bin/env python
"""Fault-matrix smoke check for the resilience layer (``make faults-smoke``).

Runs a tiny grid of fault configurations through the cellular simulator and
asserts the three invariants the layer guarantees (see docs/robustness.md):

1. a zero fault model is bypassed — bit-identical metrics to ``faults=None``;
2. a faulty run is byte-for-byte reproducible from its seed;
3. no call, however faulty, ever pages past the delay constraint ``d``.

Exits non-zero on the first violation; prints one summary line per cell of
the matrix so CI logs show what was exercised.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    import numpy as np

    from repro.cellnet import (
        CellOutage,
        CellTopology,
        CellularSimulator,
        FaultModel,
        LocationAreaPlan,
        RandomWalk,
        RecoveryPolicy,
        SimulationConfig,
    )

    SEED = 11
    ROUNDS = 5

    def run(faults=None, recovery=None):
        topology = CellTopology.hexagonal_disk(2)
        plan = LocationAreaPlan.by_bfs(topology, 3)
        models = [RandomWalk(topology, stay_probability=0.3) for _ in range(4)]
        config = SimulationConfig(
            horizon=120,
            call_rate=0.1,
            max_paging_rounds=ROUNDS,
            reporting="la",
            pager="heuristic",
            faults=faults,
            recovery=recovery,
        )
        rng = np.random.default_rng(SEED)
        return CellularSimulator(topology, plan, models, config, rng=rng).run()

    matrix = [
        ("zero", FaultModel(), None),
        ("page-loss", FaultModel(page_loss=0.3), RecoveryPolicy(max_retries=1)),
        (
            "lossy-cell",
            FaultModel(cell_page_loss={2: 0.9}),
            RecoveryPolicy(max_retries=2),
        ),
        (
            "outage+stale",
            FaultModel(
                page_loss=0.2,
                update_loss=0.2,
                stale_after=15,
                outages=(CellOutage(cell=4, start=30, end=80),),
            ),
            RecoveryPolicy(max_retries=1),
        ),
    ]

    baseline = run()
    failures = 0
    for label, faults, recovery in matrix:
        first = run(faults=faults, recovery=recovery)
        second = run(faults=faults, recovery=recovery)
        checks = {
            "reproducible": first.metrics == second.metrics,
            "within-budget": all(
                record.rounds_used <= ROUNDS
                for record in first.metrics.call_records
            ),
        }
        if label == "zero":
            checks["bypassed"] = first.metrics == baseline.metrics
        summary = first.summary()
        status = "ok" if all(checks.values()) else "FAIL"
        failures += status == "FAIL"
        print(
            f"{label:>12}: {status}  calls={summary['calls']:.0f} "
            f"degraded={summary['degraded_calls']:.0f} "
            f"pages_lost={summary['pages_lost']:.0f} "
            f"retry_rounds={summary['retry_rounds']:.0f} "
            f"checks={sorted(k for k, v in checks.items() if not v) or 'all'}"
        )
    if failures:
        print(f"faults-smoke: {failures} configuration(s) failed", file=sys.stderr)
        raise SystemExit(1)
    print("faults-smoke: all invariants hold")
