#!/usr/bin/env bash
# One-shot replication: install, test, benchmark, and regenerate every
# experiment table.  Outputs land in test_output.txt, bench_output.txt,
# and reports/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install =="
pip install -e . 2>/dev/null || python setup.py develop

echo "== tests =="
pytest tests/ 2>&1 | tee test_output.txt

echo "== benchmarks (every experiment) =="
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== experiment report =="
python -c "from repro.experiments import save_report; print('\n'.join(save_report('reports')))"
python -m repro.experiments.runner > reports/full_report.txt
echo "tables written to reports/"
