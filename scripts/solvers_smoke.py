#!/usr/bin/env python
"""Solver-registry smoke check (``make solvers-smoke``).

Exercises the registry seam end to end (docs/architecture.md):

1. ``repro solvers --json`` emits the machine-readable registry —
   schema ``repro-solvers/1``, at least ten solvers, every spec complete
   with a legal kind, a summary, and a paper anchor;
2. every registered solver without required options runs on the §4.3
   gadget (when it supports it) and returns a well-formed
   ``SolverResult`` carrying its own registry name;
3. the gadget pins the exact/heuristic pair bit-for-bit
   (317/49 vs 320/49, the Theorem 4.8 tightness witness).

Exits non-zero if any check fails; prints one line per check so CI logs
show what was exercised.
"""

from __future__ import annotations

import io
import json
import sys
from contextlib import redirect_stdout
from fractions import Fraction
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    from repro.cli import main as cli_main
    from repro.core import lower_bound_instance
    from repro.solvers import KINDS, SolverResult, get_solver, list_solvers

    failures = 0

    def check(label, ok, detail=""):
        global failures
        status = "ok" if ok else "FAIL"
        failures += status == "FAIL"
        print(f"{label:>20}: {status}  {detail}".rstrip())

    # 1. machine-readable registry listing, exactly as CI consumes it
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        exit_code = cli_main(["solvers", "--json"])
    payload = json.loads(buffer.getvalue())
    specs = payload["solvers"]
    check(
        "solvers --json",
        exit_code == 0 and payload["schema"] == "repro-solvers/1",
        f"schema={payload.get('schema')}",
    )
    check("registry size", payload["count"] == len(specs) >= 10, f"count={payload['count']}")
    spec_keys = {
        "name", "kind", "capabilities", "summary", "anchor",
        "options", "required", "factor", "wraps",
    }
    check(
        "spec completeness",
        all(
            spec_keys <= set(spec)
            and spec["kind"] in KINDS
            and spec["summary"]
            and spec["anchor"]
            and spec["wraps"]
            for spec in specs
        ),
    )

    # 2. every no-required-option solver runs on the gadget it supports
    instance = lower_bound_instance()
    ran, well_formed = 0, True
    for spec in list_solvers():
        if spec.required:
            continue
        solver = get_solver(spec.name)
        if not solver.supports(instance):
            continue
        result = solver(instance)
        ran += 1
        well_formed = well_formed and (
            isinstance(result, SolverResult)
            and result.solver == spec.name
            and result.kind == spec.kind
            and result.wall_time_s > 0
        )
    check("solver sweep", well_formed and ran >= 8, f"ran={ran}")

    # 3. the §4.3 gadget pins the exact/heuristic pair
    optimal = get_solver("exact")(instance)
    plan = get_solver("heuristic")(instance)
    check(
        "gadget values",
        optimal.expected_paging == Fraction(317, 49)
        and plan.expected_paging == Fraction(320, 49),
        f"exact={optimal.expected_paging} heuristic={plan.expected_paging}",
    )

    if failures:
        print(f"solvers-smoke: {failures} check(s) failed", file=sys.stderr)
        raise SystemExit(1)
    print("solvers-smoke: registry contract holds")
