# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test docs-test lint lint-deep bench bench-json bench-diff faults-smoke solvers-smoke report save-report examples all clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

# Every ```python block in README.md and docs/*.md must execute green,
# and the modules the docs reference must pass the lint rules.
docs-test:
	$(PYTHON) -m pytest tests/test_docs.py tests/test_readme.py -q
	$(PYTHON) -m repro.lint src

lint:
	$(PYTHON) -m repro.lint src tests benchmarks scripts

# Adds the whole-program dataflow pass (RPL008 exactness taint, RPL009
# seed flow, RPL010 shared-state safety) on top of the per-file rules.
lint-deep:
	$(PYTHON) -m repro.lint --deep src tests benchmarks scripts

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) -m repro.bench --profile full

# Compare the two newest BENCH_<n>.json snapshots; exits non-zero on a
# >20% regression, so CI runs it as a non-fatal report step.
bench-diff:
	$(PYTHON) scripts/bench_diff.py $$(ls BENCH_*.json | sort -V | tail -2 | head -1)

# Tiny fault-matrix scenario: zero-fault bypass, reproducibility under
# faults, and the delay-budget cap (docs/robustness.md); CI runs this.
faults-smoke:
	$(PYTHON) scripts/faults_smoke.py

# Registry contract: `repro solvers --json` schema, the no-required-option
# solver sweep, and the §4.3 gadget pins (docs/architecture.md); CI runs this.
solvers-smoke:
	$(PYTHON) scripts/solvers_smoke.py

report:
	$(PYTHON) -m repro.experiments.runner

save-report:
	$(PYTHON) -c "from repro.experiments import save_report; print('\n'.join(save_report('reports')))"

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script; \
		echo; \
	done

all: lint test bench report

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results reports src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
