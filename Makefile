# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test lint bench bench-json report save-report examples all clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m repro.lint src tests benchmarks scripts

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) -m repro.bench --profile full

report:
	$(PYTHON) -m repro.experiments.runner

save-report:
	$(PYTHON) -c "from repro.experiments import save_report; print('\n'.join(save_report('reports')))"

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script; \
		echo; \
	done

all: lint test bench report

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results reports src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
