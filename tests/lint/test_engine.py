"""Engine-level tests: discovery, config, suppressions, output, exit codes."""

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    LintConfig,
    load_config,
    main as lint_main,
    run_lint,
)
from repro.lint.engine import _parse_toml_subset, find_project_root

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


class TestCleanTree:
    def test_repo_lints_clean_with_project_config(self):
        """The acceptance gate: `repro lint src tests` exits 0."""
        config = load_config(REPO_ROOT)
        result = run_lint(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
            config=config,
            root=REPO_ROOT,
        )
        assert result.clean, "\n".join(v.render() for v in result.violations)
        assert result.exit_code == EXIT_CLEAN
        assert result.files_checked > 100

    def test_fixtures_fail_without_the_config_exclusion(self):
        result = run_lint([str(FIXTURES)], config=LintConfig(), root=REPO_ROOT)
        assert result.exit_code == EXIT_VIOLATIONS
        codes = set(result.counts())
        assert {"RPL001", "RPL002", "RPL003", "RPL006"} <= codes

    def test_project_config_excludes_fixtures(self):
        config = load_config(REPO_ROOT)
        result = run_lint([str(FIXTURES)], config=config, root=REPO_ROOT)
        assert result.files_checked == 0


class TestSuppressions:
    def test_inline_disable_silences_one_line(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "x = 1.5\n"
            "a = x == 0.3  # replint: disable=RPL001\n"
            "b = x == 0.3\n"
        )
        result = run_lint([str(path)], config=LintConfig(), root=tmp_path)
        assert [v.line for v in result.violations] == [3]

    def test_inline_disable_with_justification_text(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "x = 1.5\n"
            "a = x == 0.3  # replint: disable=RPL001 stored literal round trip\n"
        )
        result = run_lint([str(path)], config=LintConfig(), root=tmp_path)
        assert result.clean

    def test_file_level_disable(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "# replint: disable-file=RPL006\n"
            "def f(bucket=[]):\n"
            "    return bucket\n"
        )
        result = run_lint([str(path)], config=LintConfig(), root=tmp_path)
        assert result.clean

    def test_disable_all(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text("def f(bucket=[]):  # replint: disable=all\n    return 1\n")
        result = run_lint([str(path)], config=LintConfig(), root=tmp_path)
        assert result.clean


class TestConfig:
    def test_toml_subset_parser(self):
        tables = _parse_toml_subset(
            "[tool.replint]\n"
            "exclude = [\"a/b\", 'c']\n"
            "api_doc = \"docs/api.md\"\n"
            "flag = true\n"
            "count = 3\n"
            "multi = [\n"
            "    \"one\",\n"
            "    \"two\",\n"
            "]\n"
        )
        table = tables["tool.replint"]
        assert table["exclude"] == ["a/b", "c"]
        assert table["api_doc"] == "docs/api.md"
        assert table["flag"] is True
        assert table["count"] == 3
        assert table["multi"] == ["one", "two"]

    def test_load_config_reads_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.replint]\n"
            "exclude = [\"generated\"]\n"
            "ignore = [\"RPL005\"]\n"
            "api_doc = \"docs/public.md\"\n"
        )
        config = load_config(tmp_path)
        assert config.exclude == ("generated",)
        assert config.ignore == ("RPL005",)
        assert config.api_doc == "docs/public.md"
        # unset keys keep their defaults
        assert config.api_init == "src/repro/__init__.py"

    def test_excluded_paths_are_skipped(self, tmp_path):
        (tmp_path / "generated").mkdir()
        (tmp_path / "generated" / "module.py").write_text("def f(x=[]):\n    pass\n")
        config = LintConfig(exclude=("generated",))
        result = run_lint([str(tmp_path)], config=config, root=tmp_path)
        assert result.files_checked == 0

    def test_find_project_root(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path
        assert find_project_root(REPO_ROOT / "src" / "repro") == REPO_ROOT


class TestCliAndOutput:
    def test_main_exit_one_on_fixtures(self):
        code = lint_main(
            ["--no-config", "--select", "RPL001", str(FIXTURES / "rpl001_bad.py")]
        )
        assert code == EXIT_VIOLATIONS

    def test_main_exit_zero_on_clean_file(self):
        code = lint_main(
            ["--no-config", "--select", "RPL001", str(FIXTURES / "rpl001_ok.py")]
        )
        assert code == EXIT_CLEAN

    def test_missing_target_is_usage_error(self, capsys):
        code = lint_main(["--no-config", "does/not/exist.py"])
        assert code == EXIT_USAGE
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_rule_code_is_usage_error(self, capsys):
        code = lint_main(["--no-config", "--select", "RPL999", str(FIXTURES)])
        assert code == EXIT_USAGE
        assert "unknown rule code" in capsys.readouterr().err

    def test_json_output_shape(self, capsys):
        lint_main(
            ["--no-config", "--json", "--select", "RPL002",
             str(FIXTURES / "rpl002_bad.py")]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "replint"
        assert payload["clean"] is False
        assert payload["counts"] == {"RPL002": 5}
        first = payload["violations"][0]
        assert {"path", "line", "col", "code", "message"} <= set(first)

    def test_human_output_renders_path_line_col(self, capsys):
        lint_main(
            ["--no-config", "--select", "RPL006", str(FIXTURES / "rpl006_bad.py")]
        )
        out = capsys.readouterr().out
        assert "rpl006_bad.py:5:" in out
        assert "RPL006" in out
        assert "2 violations" in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in (
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006", "RPL007",
        ):
            assert code in out

    def test_repro_cli_subcommand(self, capsys):
        code = cli_main(
            ["lint", "--no-config", "--select", "RPL001",
             str(FIXTURES / "rpl001_bad.py")]
        )
        assert code == EXIT_VIOLATIONS
        assert "RPL001" in capsys.readouterr().out

    def test_ignore_flag_drops_rule(self):
        code = lint_main(
            ["--no-config", "--ignore", "RPL001", str(FIXTURES / "rpl001_bad.py")]
        )
        assert code == EXIT_CLEAN


class TestSyntaxErrors:
    def test_unparsable_file_reports_rpl000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        result = run_lint([str(path)], config=LintConfig(), root=tmp_path)
        assert result.exit_code == EXIT_VIOLATIONS
        assert result.violations[0].code == "RPL000"
        assert "syntax error" in result.violations[0].message
