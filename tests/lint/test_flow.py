"""Tests for the whole-program dataflow pass (:mod:`repro.lint.flow`).

The fixture corpus under ``tests/lint/fixtures/flow/`` is the acceptance
contract for RPL008-RPL010: every ``taint_*`` case must produce at least
one finding of its rule (zero false negatives) and every ``clean_*`` case
must produce none (false positives).  Cross-module cases are directories
(``taint_xmod/``) linted as a unit.
"""

import json
from pathlib import Path

import pytest

from repro.lint import (
    DEEP_CODES,
    EXIT_CLEAN,
    EXIT_VIOLATIONS,
    LintConfig,
    ProjectGraph,
    run_lint,
    write_baseline,
)
from repro.lint.flow import registry_exact_sinks, sarif_payload

REPO_ROOT = Path(__file__).resolve().parents[2]
FLOW_FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures" / "flow"


def _corpus(rule_dir: str):
    """(case-path, expect-finding) pairs for one rule's fixture corpus."""
    cases = []
    for entry in sorted((FLOW_FIXTURES / rule_dir).iterdir()):
        if entry.name == "__init__.py" or (
            entry.is_file() and entry.suffix != ".py"
        ):
            continue
        cases.append(
            pytest.param(
                entry,
                entry.name.startswith("taint"),
                id=f"{rule_dir}/{entry.name}",
            )
        )
    return cases


def _deep_findings(target: Path, code: str):
    result = run_lint(
        [str(target)],
        config=LintConfig(),
        root=REPO_ROOT,
        deep=True,
        deep_cache=False,
    )
    return [v for v in result.violations if v.code == code]


class TestFixtureCorpus:
    """Zero false negatives, zero false positives, per rule."""

    @pytest.mark.parametrize("case,expect", _corpus("rpl008"))
    def test_rpl008(self, case, expect):
        findings = _deep_findings(case, "RPL008")
        if expect:
            assert findings, f"false negative: {case.name}"
        else:
            assert not findings, "false positive: " + "\n".join(
                v.render() for v in findings
            )

    @pytest.mark.parametrize("case,expect", _corpus("rpl009"))
    def test_rpl009(self, case, expect):
        findings = _deep_findings(case, "RPL009")
        if expect:
            assert findings, f"false negative: {case.name}"
        else:
            assert not findings, "false positive: " + "\n".join(
                v.render() for v in findings
            )

    @pytest.mark.parametrize("case,expect", _corpus("rpl010"))
    def test_rpl010(self, case, expect):
        findings = _deep_findings(case, "RPL010")
        if expect:
            assert findings, f"false negative: {case.name}"
        else:
            assert not findings, "false positive: " + "\n".join(
                v.render() for v in findings
            )

    def test_corpus_is_large_enough(self):
        """The acceptance floor: >=10 taint and >=10 clean cases per rule."""
        for rule_dir in ("rpl008", "rpl009", "rpl010"):
            names = [
                entry.name
                for entry in (FLOW_FIXTURES / rule_dir).iterdir()
                if entry.name != "__init__.py"
            ]
            taint = [n for n in names if n.startswith("taint")]
            clean = [n for n in names if n.startswith("clean")]
            assert len(taint) >= 10, f"{rule_dir}: only {len(taint)} taint cases"
            assert len(clean) >= 10, f"{rule_dir}: only {len(clean)} clean cases"


class TestDeepOnRepo:
    def test_src_tree_is_deep_clean(self):
        """The PR gate: the shipped sources carry no deep findings."""
        result = run_lint(
            [str(REPO_ROOT / "src")],
            root=REPO_ROOT,
            deep=True,
            deep_cache=False,
        )
        deep = [v for v in result.violations if v.code in DEEP_CODES]
        assert not deep, "\n".join(v.render() for v in deep)

    def test_deep_stats_surface(self):
        result = run_lint(
            [str(REPO_ROOT / "src" / "repro" / "lint")],
            root=REPO_ROOT,
            deep=True,
            deep_cache=False,
        )
        stats = result.deep_stats
        assert stats is not None
        assert stats["files"] > 0
        assert stats["call_graph_edges"] > 0
        assert stats["taint_steps"] > 0
        assert stats["cache_hit"] is False
        payload = result.to_json()
        assert payload["deep"]["files"] == stats["files"]

    def test_registry_sinks_feed_the_analysis(self):
        sinks = registry_exact_sinks()
        assert sinks, "solver registry exports no exact sinks"
        assert all(s.startswith("repro.") for s in sinks)


class TestEngineEdgeCases:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("")
        result = run_lint(
            [str(path)], config=LintConfig(), root=tmp_path,
            deep=True, deep_cache=False,
        )
        assert result.files_checked == 1
        assert result.exit_code == EXIT_CLEAN

    def test_syntax_error_reports_rpl000_without_crashing_deep(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        good = tmp_path / "good.py"
        good.write_text("from fractions import Fraction\nx = Fraction(0.25)\n")
        result = run_lint(
            [str(tmp_path)], config=LintConfig(), root=tmp_path,
            deep=True, deep_cache=False,
        )
        codes = {v.code for v in result.violations}
        assert "RPL000" in codes
        # the parseable sibling still goes through the deep pass
        assert "RPL008" in codes
        assert result.exit_code == EXIT_VIOLATIONS

    def test_bom_file_parses_and_flows(self, tmp_path):
        path = tmp_path / "bom.py"
        source = "from fractions import Fraction\nvalue = 0.5\nx = Fraction(value)\n"
        path.write_bytes(b"\xef\xbb\xbf" + source.encode("utf-8"))
        result = run_lint(
            [str(path)], config=LintConfig(), root=tmp_path,
            deep=True, deep_cache=False,
        )
        assert "RPL000" not in {v.code for v in result.violations}
        assert any(v.code == "RPL008" for v in result.violations)


class TestDecoratorSuppression:
    """`# replint: disable=` on a decorator line covers the decorated def."""

    def test_disable_on_decorator_line_suppresses_def_finding(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "import functools\n"
            "\n"
            "\n"
            "@functools.lru_cache(maxsize=None)  # replint: disable=RPL006\n"
            "def collect(bucket=[]):\n"
            "    return bucket\n"
        )
        result = run_lint([str(path)], config=LintConfig(), root=tmp_path)
        assert not any(v.code == "RPL006" for v in result.violations)

    def test_disable_covers_stacked_decorators(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "import functools\n"
            "\n"
            "\n"
            "@functools.wraps(print)  # replint: disable=RPL006\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def collect(bucket=[]):\n"
            "    return bucket\n"
        )
        result = run_lint([str(path)], config=LintConfig(), root=tmp_path)
        assert not any(v.code == "RPL006" for v in result.violations)

    def test_without_comment_the_finding_survives(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "import functools\n"
            "\n"
            "\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def collect(bucket=[]):\n"
            "    return bucket\n"
        )
        result = run_lint([str(path)], config=LintConfig(), root=tmp_path)
        assert any(v.code == "RPL006" for v in result.violations)

    def test_inline_suppression_applies_to_deep_findings(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "from fractions import Fraction\n"
            "value = 0.5\n"
            "x = Fraction(value)  # replint: disable=RPL008 audited\n"
        )
        result = run_lint(
            [str(path)], config=LintConfig(), root=tmp_path,
            deep=True, deep_cache=False,
        )
        assert not any(v.code == "RPL008" for v in result.violations)


class TestDeepCache:
    def _workspace(self, tmp_path):
        pkg = tmp_path / "pkg.py"
        pkg.write_text(
            "from fractions import Fraction\n"
            "value = 0.5\n"
            "x = Fraction(value)\n"
        )
        return pkg

    def test_second_run_hits_the_cache_with_same_findings(self, tmp_path):
        pkg = self._workspace(tmp_path)
        first = run_lint([str(pkg)], config=LintConfig(), root=tmp_path, deep=True)
        assert first.deep_stats["cache_hit"] is False
        assert (tmp_path / ".replint-deep-cache.json").is_file()
        second = run_lint([str(pkg)], config=LintConfig(), root=tmp_path, deep=True)
        assert second.deep_stats["cache_hit"] is True
        assert [v.render() for v in first.violations] == [
            v.render() for v in second.violations
        ]

    def test_edit_invalidates_the_cache(self, tmp_path):
        pkg = self._workspace(tmp_path)
        run_lint([str(pkg)], config=LintConfig(), root=tmp_path, deep=True)
        pkg.write_text(
            "from fractions import Fraction\n"
            "x = Fraction(1, 3)\n"
        )
        result = run_lint([str(pkg)], config=LintConfig(), root=tmp_path, deep=True)
        assert result.deep_stats["cache_hit"] is False
        assert not any(v.code == "RPL008" for v in result.violations)


class TestSarifAndBaseline:
    def test_sarif_payload_shape(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "from fractions import Fraction\n"
            "value = 0.5\n"
            "x = Fraction(value)\n"
        )
        result = run_lint(
            [str(path)], config=LintConfig(), root=tmp_path,
            deep=True, deep_cache=False,
        )
        sarif = result.to_sarif()
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RPL008", "RPL009", "RPL010"} <= rule_ids
        results = run["results"]
        assert any(r["ruleId"] == "RPL008" for r in results)
        json.dumps(sarif)  # must be serializable as-is

    def test_sarif_payload_helper_matches_engine(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text("from fractions import Fraction\nx = Fraction(0.5)\n")
        result = run_lint(
            [str(path)], config=LintConfig(), root=tmp_path,
            deep=True, deep_cache=False,
        )
        payload = sarif_payload(result.violations, [])
        assert payload["runs"][0]["results"]

    def test_baseline_round_trip(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "from fractions import Fraction\n"
            "value = 0.5\n"
            "x = Fraction(value)\n"
        )
        kwargs = dict(
            config=LintConfig(), root=tmp_path, deep=True, deep_cache=False
        )
        dirty = run_lint([str(path)], **kwargs)
        assert dirty.exit_code == EXIT_VIOLATIONS
        baseline_path = tmp_path / "baseline.json"
        written = write_baseline(dirty.violations, baseline_path)
        assert written == len(dirty.violations)
        clean = run_lint([str(path)], baseline=baseline_path, **kwargs)
        assert clean.exit_code == EXIT_CLEAN
        assert clean.baseline_suppressed == written

    def test_baseline_survives_line_shifts(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "from fractions import Fraction\n"
            "value = 0.5\n"
            "x = Fraction(value)\n"
        )
        kwargs = dict(
            config=LintConfig(), root=tmp_path, deep=True, deep_cache=False
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(run_lint([str(path)], **kwargs).violations, baseline_path)
        path.write_text(
            "from fractions import Fraction\n"
            "\n"
            "\n"
            "value = 0.5\n"
            "x = Fraction(value)\n"
        )
        shifted = run_lint([str(path)], baseline=baseline_path, **kwargs)
        assert not any(v.code == "RPL008" for v in shifted.violations)


class TestObservability:
    def test_deep_pass_emits_span_and_counters(self, tmp_path):
        from repro.obs import tracing

        path = tmp_path / "module.py"
        path.write_text(
            "from fractions import Fraction\n"
            "value = 0.5\n"
            "x = Fraction(value)\n"
        )
        with tracing(close=False) as tracer:
            run_lint(
                [str(path)], config=LintConfig(), root=tmp_path,
                deep=True, deep_cache=False,
            )
        tracer.flush()  # counters aggregate until flushed
        events = tracer.sink.events
        spans = [
            e for e in events
            if e.get("event") == "span" and e.get("name") == "lint.deep"
        ]
        assert spans, "no lint.deep span emitted"
        assert spans[0]["attrs"]["files"] == 1
        counters = {
            e["name"] for e in events if e.get("event") == "counter"
        }
        assert "lint.deep.files" in counters
        assert "lint.deep.findings" in counters


class TestProjectGraph:
    def test_graph_builds_over_src(self):
        import ast

        files = []
        for path in sorted((REPO_ROOT / "src" / "repro" / "lint").rglob("*.py")):
            relpath = str(path.relative_to(REPO_ROOT))
            files.append((relpath, ast.parse(path.read_text()), path))
        graph = ProjectGraph.build(files)
        assert graph.edge_count > 0
        assert any(
            info.module == "repro.lint.flow" for info in graph.functions.values()
        )
