"""Per-rule tests: every RPL code fires exactly where the fixtures say.

Each rule has one ``*_bad.py`` fixture (known violations at known lines)
and one ``*_ok.py`` fixture (the compliant spelling of the same code).
"""

from pathlib import Path

from repro.lint import LintConfig, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


def lint_fixture(name, code, **config_kwargs):
    config = LintConfig(select=(code,), **config_kwargs)
    result = run_lint([str(FIXTURES / name)], config=config, root=REPO_ROOT)
    return result


def fired_lines(result, path_suffix=None):
    return [
        violation.line
        for violation in result.violations
        if path_suffix is None or violation.path.endswith(path_suffix)
    ]


class TestRPL001FloatEquality:
    def test_bad_fixture_fires_per_line(self):
        result = lint_fixture("rpl001_bad.py", "RPL001")
        assert fired_lines(result) == [5, 6, 7]
        assert all(v.code == "RPL001" for v in result.violations)

    def test_ok_fixture_is_clean(self):
        result = lint_fixture("rpl001_ok.py", "RPL001")
        assert result.clean, result.violations


class TestRPL002UnseededRandomness:
    def test_bad_fixture_fires_per_line(self):
        result = lint_fixture("rpl002_bad.py", "RPL002")
        assert fired_lines(result) == [9, 10, 11, 12, 13]

    def test_ok_fixture_is_clean(self):
        result = lint_fixture("rpl002_ok.py", "RPL002")
        assert result.clean, result.violations


class TestRPL003Exactness:
    def test_bad_fixture_fires_per_line(self):
        result = lint_fixture("rpl003_bad.py", "RPL003")
        assert fired_lines(result) == [12, 13, 14]

    def test_fraction_of_float_message(self):
        result = lint_fixture("rpl003_bad.py", "RPL003")
        assert "Fraction(<float>)" in result.violations[0].message

    def test_ok_fixture_is_clean(self):
        result = lint_fixture("rpl003_ok.py", "RPL003")
        assert result.clean, result.violations


class TestRPL004ApiDrift:
    def _run(self, flavour):
        config = LintConfig(
            select=("RPL004",),
            api_init=f"tests/lint/fixtures/rpl004/{flavour}_pkg/__init__.py",
            api_doc=f"tests/lint/fixtures/rpl004/{flavour}_api.md",
        )
        return run_lint(
            [str(FIXTURES / "rpl004" / f"{flavour}_pkg")],
            config=config,
            root=REPO_ROOT,
        )

    def test_bad_fixture_reports_every_drift(self):
        result = self._run("bad")
        messages = [violation.message for violation in result.violations]
        assert any("'missing_fn' does not resolve" in m for m in messages)
        assert any("'undocumented_fn' is not documented" in m for m in messages)
        assert any("'extra_fn' is imported" in m for m in messages)
        assert any("repro.impl.ghost_fn" in m for m in messages)
        assert any("repro.phantom_module.thing" in m for m in messages)
        assert len(result.violations) == 5

    def test_doc_violations_point_into_the_doc(self):
        result = self._run("bad")
        doc_lines = fired_lines(result, path_suffix="bad_api.md")
        assert doc_lines == [7, 8]

    def test_ok_fixture_is_clean(self):
        result = self._run("ok")
        assert result.clean, result.violations


class TestRPL005PaperTraceability:
    def test_bad_fixture_fires(self):
        result = lint_fixture(
            "rpl005_bad.py", "RPL005",
            traceability_paths=("tests/lint/fixtures",),
        )
        assert fired_lines(result) == [1]
        assert "paper anchor" in result.violations[0].message

    def test_ok_fixture_is_clean(self):
        result = lint_fixture(
            "rpl005_ok.py", "RPL005",
            traceability_paths=("tests/lint/fixtures",),
        )
        assert result.clean, result.violations

    def test_rule_only_applies_to_configured_paths(self):
        # default config: fixtures are outside core/analysis/hardness
        result = lint_fixture("rpl005_bad.py", "RPL005")
        assert result.clean


class TestRPL007SolverRegistration:
    def _run(self, flavour):
        config = LintConfig(
            select=("RPL007",),
            solver_adapters=f"tests/lint/fixtures/rpl007/{flavour}_adapters.py",
            solver_mark_paths=(f"tests/lint/fixtures/rpl007/{flavour}_core",),
        )
        return run_lint(
            [str(FIXTURES / "rpl007" / f"{flavour}_core")],
            config=config,
            root=REPO_ROOT,
        )

    def test_bad_fixture_reports_unregistered_solver_and_missing_anchor(self):
        result = self._run("bad")
        assert fired_lines(result, path_suffix="solverlib.py") == [1, 4]
        messages = [violation.message for violation in result.violations]
        assert any("'forgotten_solver'" in m and "never imported" in m for m in messages)
        assert any("no paper anchor" in m for m in messages)
        assert all(v.code == "RPL007" for v in result.violations)

    def test_unmarked_functions_are_ignored(self):
        result = self._run("bad")
        assert not any("plain_helper" in v.message for v in result.violations)

    def test_ok_fixture_is_clean(self):
        result = self._run("ok")
        assert result.clean, result.violations

    def test_rule_is_noop_without_an_adapters_module(self):
        config = LintConfig(
            select=("RPL007",),
            solver_adapters="tests/lint/fixtures/rpl007/missing_adapters.py",
            solver_mark_paths=("tests/lint/fixtures/rpl007/bad_core",),
        )
        result = run_lint(
            [str(FIXTURES / "rpl007" / "bad_core")], config=config, root=REPO_ROOT
        )
        assert result.clean, result.violations

    def test_real_tree_satisfies_the_default_contract(self):
        """Every marked solver in src/repro/core is wrapped by the adapters."""
        result = run_lint(
            [str(REPO_ROOT / "src")],
            config=LintConfig(select=("RPL007",)),
            root=REPO_ROOT,
        )
        assert result.clean, result.violations


class TestRPL006Hygiene:
    def test_mutable_defaults_fire(self):
        result = lint_fixture("rpl006_bad.py", "RPL006")
        assert fired_lines(result) == [5, 10]

    def test_future_import_required_under_configured_paths(self):
        result = lint_fixture(
            "rpl006_bad.py", "RPL006",
            future_import_paths=("tests/lint/fixtures",),
        )
        assert fired_lines(result) == [1, 5, 10]

    def test_ok_fixture_is_clean_even_under_configured_paths(self):
        result = lint_fixture(
            "rpl006_ok.py", "RPL006",
            future_import_paths=("tests/lint/fixtures",),
        )
        assert result.clean, result.violations
