"""A module with prose but no anchor to any numbered paper statement."""

VALUE = 1
