"""Implements the Lemma 2.1 closed form for expected paging."""

VALUE = 1
