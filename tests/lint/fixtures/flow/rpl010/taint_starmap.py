"""A starmapped worker appends to a module-level list."""

import multiprocessing

PAIRS = []


def combine(left, right):
    PAIRS.append((left, right))


with multiprocessing.Pool() as pool:
    pool.starmap(combine, [(1, 2)])
