"""Mutating a module-level dict outside any worker is fine."""

CACHE = {}


def memoize(key, value):
    CACHE[key] = value


memoize("a", 1)
