"""appendleft on a module-level deque from an async-applied worker."""

import multiprocessing
from collections import deque

QUEUE = deque()


def enqueue(item):
    QUEUE.appendleft(item)


with multiprocessing.Pool() as pool:
    pool.apply_async(enqueue, (5,))
