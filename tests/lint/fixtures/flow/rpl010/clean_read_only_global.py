"""Reading module-level state in a worker is fine."""

from concurrent.futures import ThreadPoolExecutor

LIMITS = {"max": 10}


def work(item):
    return min(item, LIMITS["max"])


pool = ThreadPoolExecutor()
pool.submit(work, 5)
