"""A worker mutating a closure-captured list shares state."""


def launch(pool, items):
    results = []

    def work(item):
        """replint: worker"""
        results.append(item)

    for item in items:
        pool.submit(work, item)
    return results
