"""functools.partial does not hide the dispatched function."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial

TOTALS = []


def accumulate(base, item):
    TOTALS.append(base + item)


pool = ProcessPoolExecutor()
pool.submit(partial(accumulate, 10), 1)
