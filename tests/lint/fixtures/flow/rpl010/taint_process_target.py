"""A Process target writes into a module-level dict."""

import multiprocessing

STATE = {"runs": 0}


def worker():
    STATE["runs"] = STATE["runs"] + 1


proc = multiprocessing.Process(target=worker)
