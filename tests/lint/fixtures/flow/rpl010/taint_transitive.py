"""The mutation hides one call level below the dispatched worker."""

from concurrent.futures import ThreadPoolExecutor

CACHE = {}


def helper(key, value):
    CACHE[key] = value


def work(item):
    helper(item, item * 2)


pool = ThreadPoolExecutor()
pool.submit(work, 3)
