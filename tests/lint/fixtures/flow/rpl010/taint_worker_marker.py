"""The docstring marker declares the function a worker."""

SEEN = set()


def dedupe(item):
    """Collect unique items.

    replint: worker
    """
    SEEN.add(item)
