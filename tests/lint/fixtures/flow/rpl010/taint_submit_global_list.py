"""A submitted worker appends to a module-level list."""

from concurrent.futures import ThreadPoolExecutor

RESULTS = []


def work(item):
    RESULTS.append(item)


pool = ThreadPoolExecutor()
pool.submit(work, 1)
