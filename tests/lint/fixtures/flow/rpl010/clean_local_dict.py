"""A dict created inside the worker is not shared."""


def work(pairs):
    """replint: worker"""
    index = {}
    for key, value in pairs:
        index[key] = value
    return index
