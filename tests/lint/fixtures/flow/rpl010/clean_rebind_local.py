"""Binding a fresh local from a global read is not a mutation."""

from concurrent.futures import ThreadPoolExecutor

TOTAL = 100


def work(item):
    total = TOTAL + item
    return total


pool = ThreadPoolExecutor()
pool.submit(work, 2)
