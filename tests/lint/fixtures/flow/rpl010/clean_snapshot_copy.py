"""Copying shared state into a local before mutating it is safe."""

BASE = [1, 2, 3]


def work():
    """replint: worker"""
    snapshot = list(BASE)
    snapshot.append(4)
    return snapshot
