"""Workers may build and return their own containers."""

from concurrent.futures import ThreadPoolExecutor


def work(items):
    out = []
    for item in items:
        out.append(item * 2)
    return out


pool = ThreadPoolExecutor()
pool.submit(work, [1, 2])
