"""A submitted worker rebinds a module-level counter."""

from concurrent.futures import ThreadPoolExecutor

COUNT = 0


def bump():
    global COUNT
    COUNT += 1


pool = ThreadPoolExecutor()
pool.submit(bump)
