"""A worker rebinding a closure variable shares state."""


def launch():
    total = 0

    def work(item):
        """replint: worker"""
        nonlocal total
        total += item

    return work
