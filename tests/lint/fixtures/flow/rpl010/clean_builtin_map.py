"""The builtin map() is sequential; its callee is not a worker."""

TOTALS = []


def bump(item):
    TOTALS.append(item)


results = list(map(bump, [1, 2, 3]))
