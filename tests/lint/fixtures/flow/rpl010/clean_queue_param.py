"""Queues are the sanctioned cross-worker channel."""

import queue
from concurrent.futures import ThreadPoolExecutor

jobs = queue.Queue()


def work(channel, item):
    channel.put(item)


pool = ThreadPoolExecutor()
pool.submit(work, jobs, 1)
