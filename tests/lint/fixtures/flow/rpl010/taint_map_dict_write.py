"""A mapped worker writes into a module-level dict."""

from concurrent.futures import ThreadPoolExecutor

INDEX = {}


def record(pair):
    key, value = pair
    INDEX[key] = value


with ThreadPoolExecutor() as pool:
    pool.map(record, [(1, 2)])
