"""Per-instance state behind self is not shared module state."""


class Task:
    def __init__(self):
        self.items = []

    def run(self, item):
        """replint: worker"""
        self.items.append(item)
        return self.items
