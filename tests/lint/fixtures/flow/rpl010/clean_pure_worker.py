"""A pure computation is safe to dispatch."""

from concurrent.futures import ThreadPoolExecutor


def work(item):
    return item ** 2


pool = ThreadPoolExecutor()
future = pool.submit(work, 3)
