"""A Thread target appends to a module-level list."""

import threading

LOG = []


def worker():
    LOG.append("tick")


thread = threading.Thread(target=worker)
