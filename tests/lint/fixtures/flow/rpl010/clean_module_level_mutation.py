"""Module import time runs once; mutation there is fine."""

from concurrent.futures import ThreadPoolExecutor

REGISTRY = {}
REGISTRY["init"] = True


def work(item):
    return REGISTRY.get(item, 0)


pool = ThreadPoolExecutor()
pool.submit(work, "init")
