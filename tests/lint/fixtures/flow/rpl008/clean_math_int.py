"""math.ceil returns int in Python 3 — a sanitizer, not a source."""

import math
from fractions import Fraction

cells = math.ceil(17 / 4)
exact_cells = Fraction(cells)
