"""Taint flows through two helper layers into the exact sink."""


def base_rate():
    return 0.125


def scaled_rate(factor):
    return factor * base_rate()


def exact_rate(rate):
    return rate


result = exact_rate(scaled_rate(2))
