"""Pure integer arithmetic stays exact."""

from fractions import Fraction

total = 3 * 4 + 1
exact_total = Fraction(total)
