"""Float literal flows into Fraction() through a variable."""

from fractions import Fraction

weight = 0.1
as_exact = Fraction(weight)
