"""True division of plain ints is a float source."""

from fractions import Fraction

share = 7 / 3
exact_share = Fraction(share)
