"""Floats that never reach an exact sink are fine."""

from fractions import Fraction

ratio = Fraction(5, 8)
display = float(ratio)
message = "value: " + str(display)
