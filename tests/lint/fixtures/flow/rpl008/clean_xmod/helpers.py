"""Cross-module exact source."""

from fractions import Fraction


def exact_rate():
    return Fraction(3, 10)
