"""Cross-module: the sibling helper returns a provably exact value."""

from fractions import Fraction

from .helpers import exact_rate

doubled = Fraction(2) * exact_rate()
