"""Single-argument round() returns int."""

from fractions import Fraction

count = round(6.9)
exact_count = Fraction(count)
