"""Float literals reach an exact-marked helper (name contains 'exact')."""


def exact_total(values):
    total = 0
    for value in values:
        total = total + value
    return total


result = exact_total([0.25, 0.5])
