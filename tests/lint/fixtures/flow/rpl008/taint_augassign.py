"""Augmented assignment unions float taint into the total."""

from fractions import Fraction

total = 1
total += 0.5
exact_total = Fraction(total)
