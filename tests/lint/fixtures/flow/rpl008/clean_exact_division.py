"""Division between provably exact values stays exact."""

from fractions import Fraction

third = Fraction(1, 3)
sixth = third / 2
exact_result = Fraction(sixth)
