"""Only the payload argument of an exact sink must stay exact."""

from fractions import Fraction


def solve_exact(probabilities, tolerance=1e-9):
    return min(probabilities)


result = solve_exact([Fraction(1, 3), Fraction(2, 3)], tolerance=0.5)
