"""Formatting a float for display does not taint the string."""

from fractions import Fraction

rate = 0.35
label = f"rate={rate}"
width = len(label)
exact_width = Fraction(width)
