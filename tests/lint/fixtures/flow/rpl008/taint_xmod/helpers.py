"""Cross-module float source."""


def hot_rate():
    return 0.3
