"""Cross-module: the float source lives in a sibling module."""

from fractions import Fraction

from .helpers import hot_rate

exact_rate = Fraction(hot_rate())
