"""Integer-ratio construction is the sanctioned exact form."""

from fractions import Fraction

ratio = Fraction(1, 3)
total = ratio + Fraction(2, 3)
