"""Taint survives a helper-function round trip."""

from fractions import Fraction


def halve(value):
    return value / 2


portion = halve(0.5)
exact_portion = Fraction(portion)
