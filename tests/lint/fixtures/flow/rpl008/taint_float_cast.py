"""float() casts re-enter binary floating point."""

from fractions import Fraction

count = float(12)
exact_count = Fraction(count)
