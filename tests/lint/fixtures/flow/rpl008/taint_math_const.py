"""math.pi is a float constant."""

import math
from fractions import Fraction

turn = Fraction(math.pi)
