"""A docstring-marked exact function is a sink too."""


def accumulate(values):
    """Sum a sequence without rounding.

    replint: exact
    """
    total = 0
    for value in values:
        total = total + value
    return total


result = accumulate([1, 2, 0.75])
