"""limit_denominator is the sanctioned float quantization."""

import math
from fractions import Fraction

approx_pi = Fraction(math.pi).limit_denominator(1000)
