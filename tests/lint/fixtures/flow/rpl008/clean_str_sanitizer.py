"""Fraction(str(x)) is the sanctioned float sanitizer."""

from fractions import Fraction

measured = 0.1
exact = Fraction(str(measured))
