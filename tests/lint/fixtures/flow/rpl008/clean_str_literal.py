"""String construction carries no binary rounding error."""

from fractions import Fraction

tenth = Fraction("0.1")
