"""math.sqrt returns a binary float."""

import math
from fractions import Fraction

diagonal = math.sqrt(2)
exact_diagonal = Fraction(diagonal)
