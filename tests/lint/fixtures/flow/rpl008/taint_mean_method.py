"""A .mean() result is a float statistic."""

from fractions import Fraction

samples = load_samples()
center = samples.mean()
exact_center = Fraction(center)
