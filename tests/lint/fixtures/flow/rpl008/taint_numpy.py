"""numpy.mean returns a float."""

import numpy as np
from fractions import Fraction

center = np.mean([1, 2, 3])
exact_center = Fraction(center)
