"""A helper fed only ints returns an untainted value."""

from fractions import Fraction


def double(value):
    return value * 2


exact_total = Fraction(double(21))
