"""Wall-clock values may flow anywhere except into a seed.

replint: seed-domain
"""

import time

start = time.perf_counter()
duration = time.perf_counter() - start
