"""A seeded bit generator wrapped in Generator.

replint: seed-domain
"""

from numpy.random import Generator, PCG64

bitgen = PCG64(1234)
rng = Generator(bitgen)
