"""Accepting a generator parameter imposes seeding on the caller.

replint: seed-domain
"""


def run_trial(rng):
    return rng.integers(0, 10)
