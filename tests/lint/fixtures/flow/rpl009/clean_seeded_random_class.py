"""A seeded stdlib Random instance is reproducible.

replint: seed-domain
"""

import random

gen = random.Random(99)
