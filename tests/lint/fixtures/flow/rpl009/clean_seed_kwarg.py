"""Seeding through the keyword form.

replint: seed-domain
"""

import numpy as np

rng = np.random.default_rng(seed=7)
