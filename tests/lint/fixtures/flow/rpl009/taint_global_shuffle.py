"""random.shuffle draws from hidden module state.

replint: seed-domain
"""

import random

items = [1, 2, 3]
random.shuffle(items)
