"""secrets-derived seeds are nondeterministic by design.

replint: seed-domain
"""

import secrets

import numpy as np

rng = np.random.default_rng(secrets.randbits(64))
