"""Module-level random state inside the seeded domain.

replint: seed-domain
"""

import random

value = random.random()
