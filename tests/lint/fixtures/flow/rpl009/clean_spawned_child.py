"""Children spawned from a seeded sequence stay reproducible.

replint: seed-domain
"""

from numpy.random import SeedSequence, default_rng

child = SeedSequence(7).spawn(2)[0]
rng = default_rng(child)
