"""The SeedSequence spawning discipline.

replint: seed-domain
"""

from numpy.random import SeedSequence, default_rng

seq = SeedSequence(2002)
rng = default_rng(seq)
