"""default_rng(None) is an explicit request for OS entropy.

replint: seed-domain
"""

import numpy as np

rng = np.random.default_rng(None)
