"""Outside the seeded domain an unseeded generator is allowed."""

import numpy as np

rng = np.random.default_rng()
