"""Unseeded generator created inside the seeded domain.

replint: seed-domain
"""

import numpy as np

rng = np.random.default_rng()
