"""A FaultInjector that derives its generator from the given seed."""

from numpy.random import default_rng


class FaultInjector:
    def __init__(self, seed):
        self.rng = default_rng(seed)
