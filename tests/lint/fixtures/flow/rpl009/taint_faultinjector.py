"""FaultInjector methods are in the seeded domain by class name."""

import numpy as np


class FaultInjector:
    def arm(self):
        self.rng = np.random.default_rng()
        return self.rng
