"""Seeds derived from constants and parameters are reproducible.

replint: seed-domain
"""

from numpy.random import default_rng

BASE_SEED = 2002


def trial_rng(index):
    return default_rng(BASE_SEED + index)
