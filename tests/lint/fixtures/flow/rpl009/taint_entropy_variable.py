"""Entropy stored in a variable still reaches the seed.

replint: seed-domain
"""

import time

from numpy.random import default_rng

stamp = time.time_ns()
rng = default_rng(stamp)
