"""Seeding from the wall clock is as irreproducible as no seed.

replint: seed-domain
"""

import time

import numpy as np

rng = np.random.default_rng(int(time.time()))
