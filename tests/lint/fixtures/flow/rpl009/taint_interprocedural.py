"""The unseeded generator is created in a helper.

replint: seed-domain
"""

import numpy as np


def make_generator():
    return np.random.default_rng()


def run_trial(rng):
    return rng


trial = run_trial(make_generator())
