"""A literal seed is reproducible.

replint: seed-domain
"""

import numpy as np

rng = np.random.default_rng(12345)
