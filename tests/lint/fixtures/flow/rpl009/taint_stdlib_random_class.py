"""An unseeded stdlib Random instance.

replint: seed-domain
"""

import random

gen = random.Random()
