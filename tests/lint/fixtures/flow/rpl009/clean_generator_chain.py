"""Deriving a child seed from a seeded generator is reproducible.

replint: seed-domain
"""

from numpy.random import default_rng

rng = default_rng(42)
child = default_rng(rng.integers(0, 2**31))
