"""The legacy numpy.random module API has hidden global state.

replint: seed-domain
"""

import numpy as np

draws = np.random.rand(3)
