"""OS entropy as a seed breaks replay.

replint: seed-domain
"""

import os

import numpy as np

seed = os.urandom(8)
rng = np.random.default_rng(seed)
