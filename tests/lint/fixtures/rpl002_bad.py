"""Fixture: RPL002 must fire on every unseeded-randomness pattern below."""

import random

import numpy as np


def draw():
    rng = np.random.default_rng()  # line 9: no seed
    a = np.random.uniform(0.0, 1.0)  # line 10: legacy global numpy RNG
    b = random.random()  # line 11: stdlib global RNG
    c = random.Random()  # line 12: no seed
    np.random.seed(7)  # line 13: global seeding
    return rng, a, b, c
