"""Solver entry points whose module docstring cites no paper anchor."""


def forgotten_solver(instance):
    """Plan a call without ever being registered.

    replint: solver
    """
    return instance


def registered_solver(instance):
    """Plan a call; the adapters fixture does import this one.

    replint: solver
    """
    return instance


def plain_helper(instance):
    """No marker — RPL007 must ignore this function entirely."""
    return instance
