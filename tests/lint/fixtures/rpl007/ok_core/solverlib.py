"""Solver entry points for the compliant fixture (Theorem 4.8)."""


def forgotten_solver(instance):
    """Plan a call; the compliant adapters fixture imports it.

    replint: solver
    """
    return instance


def registered_solver(instance):
    """Plan a call another way.

    replint: solver
    """
    return instance
