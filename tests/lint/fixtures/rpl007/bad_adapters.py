"""Adapters fixture that forgets one marked entry point."""

from .bad_core.solverlib import registered_solver

WRAPPED = (registered_solver,)
