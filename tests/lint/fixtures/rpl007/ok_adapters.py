"""Adapters fixture wrapping every marked entry point."""

from .ok_core.solverlib import forgotten_solver, registered_solver

WRAPPED = (forgotten_solver, registered_solver)
