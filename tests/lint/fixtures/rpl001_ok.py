"""Fixture: tolerant or exact comparisons RPL001 must accept."""

import math
from fractions import Fraction


def compare(ep, other, approx):
    a = math.isclose(float(ep), float(other))
    b = ep == Fraction(3, 10)  # exact arithmetic comparison
    c = ep == 6.0  # integral literal is exactly representable
    d = float(ep) == approx(1.5)  # pytest.approx-style tolerant comparator
    e = ep == 0.25  # 0.25 is exactly representable in binary
    f = float(ep) == 0.3  # replint: disable=RPL001 cross-check of a stored literal
    return a, b, c, d, e, f
