"""Fixture: RPL003 must fire on float contamination of exact paths."""

from fractions import Fraction


def exact_lower_bound(value):
    """Exact Section 4.3 style bound."""
    return Fraction(320, 317) * value


def evaluate():
    poisoned = Fraction(0.1)  # line 12: captures binary rounding error
    cast = Fraction(float("0.5"))  # line 13: float() into Fraction
    bound = exact_lower_bound(1.5)  # line 14: float literal into exact fn
    return poisoned, cast, bound
