"""Fixture: exact-arithmetic constructions RPL003 must accept."""

from fractions import Fraction


def exact_lower_bound(value):
    """Exact Section 4.3 style bound."""
    return Fraction(320, 317) * value


def evaluate():
    ratio = Fraction(1, 10)
    parsed = Fraction("0.5")  # string parsing is exact
    bound = exact_lower_bound(Fraction(3, 2))
    return ratio, parsed, bound
