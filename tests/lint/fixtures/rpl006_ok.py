"""Fixture: RPL006-clean defaults and future import present."""

from __future__ import annotations


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
