"""Fixture: RPL006 must fire on mutable defaults (and, when this file is
placed under a configured future-import path, on the missing import)."""


def collect(item, bucket=[]):  # line 5: mutable default
    bucket.append(item)
    return bucket


def tally(key, counts={}):  # line 10: mutable default
    counts[key] = counts.get(key, 0) + 1
    return counts
