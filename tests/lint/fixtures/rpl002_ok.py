"""Fixture: seeded / passed-in randomness RPL002 must accept."""

import random

import numpy as np


def draw(rng: np.random.Generator):
    seeded = np.random.default_rng(2002)
    spawned = np.random.default_rng(seeded.integers(1 << 31))
    local = random.Random(7)
    return rng.uniform(0.0, 1.0), seeded, spawned, local.random()
