"""Fixture: RPL001 must fire on each bare float equality below."""


def compare(ep, other):
    a = float(ep) == float(other)  # line 5: float() == float()
    b = ep == 0.3  # line 6: inexact float literal
    c = ep != other * 0.1  # line 7: float arithmetic operand
    return a, b, c
