"""Implementation module for the clean RPL004 fixture."""


def documented_fn():
    return 1
