"""Fixture package whose public API and documentation agree."""

from .impl import documented_fn

__all__ = ["documented_fn"]
