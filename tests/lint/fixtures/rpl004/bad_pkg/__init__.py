"""Fixture package whose public API drifted from its documentation."""

from .impl import documented_fn, extra_fn, undocumented_fn

__all__ = [
    "missing_fn",  # not bound anywhere -> does not resolve
    "documented_fn",  # bound and documented -> clean
    "undocumented_fn",  # bound but absent from the doc -> drift
]
