"""Implementation module for the RPL004 fixtures."""


def documented_fn():
    return 1


def undocumented_fn():
    return 2


def extra_fn():
    return 3
