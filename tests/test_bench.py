"""Tests for the benchmark trajectory (:mod:`repro.bench`)."""

import json

import pytest

from repro import bench
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def smoke_payload():
    return bench.run_benchmarks("smoke")


class TestRunBenchmarks:
    def test_smoke_profile_produces_valid_payload(self, smoke_payload):
        assert bench.validate_payload(smoke_payload) == []
        assert smoke_payload["schema"] == bench.SCHEMA
        assert smoke_payload["profile"] == "smoke"
        names = [entry["name"] for entry in smoke_payload["benchmarks"]]
        assert "monte_carlo_scalar" in names
        assert "monte_carlo_fast" in names
        assert "planner_reference" in names
        assert "runner_parallel" in names

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            bench.run_benchmarks("huge")

    def test_derived_speedups_positive(self, smoke_payload):
        for value in smoke_payload["derived"].values():
            assert value > 0


class TestTrajectoryFiles:
    def test_index_increments(self, tmp_path, smoke_payload):
        assert bench.next_bench_index(tmp_path) == 0
        first = bench.write_trajectory(smoke_payload, root=tmp_path)
        assert first.name == "BENCH_0.json"
        assert bench.next_bench_index(tmp_path) == 1
        second = bench.write_trajectory(smoke_payload, root=tmp_path)
        assert second.name == "BENCH_1.json"
        payload = json.loads(second.read_text())
        assert payload["index"] == 1
        assert bench.validate_payload(payload) == []

    def test_explicit_out_path(self, tmp_path, smoke_payload):
        target = tmp_path / "custom.json"
        written = bench.write_trajectory(smoke_payload, path=target)
        assert written == target
        assert bench.validate_payload(json.loads(target.read_text())) == []


class TestValidatePayload:
    def test_rejects_non_object(self):
        assert bench.validate_payload([1, 2]) != []

    def test_rejects_wrong_schema(self, smoke_payload):
        broken = dict(smoke_payload)
        broken["schema"] = "other/9"
        assert any("schema" in problem for problem in bench.validate_payload(broken))

    def test_rejects_inconsistent_stats(self, smoke_payload):
        broken = json.loads(json.dumps(smoke_payload))
        broken["benchmarks"][0]["min_s"] = -1.0
        assert any("min_s" in problem for problem in bench.validate_payload(broken))

    def test_rejects_empty_benchmarks(self, smoke_payload):
        broken = dict(smoke_payload)
        broken["benchmarks"] = []
        assert bench.validate_payload(broken) != []


class TestCli:
    def test_bench_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "BENCH_0.json"
        assert cli_main(["bench", "--profile", "smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "trajectory written" in stdout
        assert cli_main(["bench", "--validate", str(out)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert cli_main(["bench", "--validate", str(bad)]) == 1
        capsys.readouterr()

    def test_validate_missing_file(self, tmp_path, capsys):
        assert cli_main(["bench", "--validate", str(tmp_path / "none.json")]) == 2
        capsys.readouterr()
